"""Profile a recovery and find out where the time went.

Runs the same 64 MB recovery through SR3's star and line mechanisms with
tracing on, then builds a RecoveryReport: per-recovery critical path,
blame attribution (detection / transfer / merge / control / queueing),
and the selection model's predicted-vs-observed error. Also drops
flamegraph artifacts next to this script for flamegraph.pl / speedscope.

Usage: python examples/recovery_profile.py
"""

import os

from repro.bench.harness import build_scenario, saved_state, timed_recovery
from repro.obs import Tracer, build_report, write_flamegraph, write_speedscope
from repro.recovery.line import LineRecovery
from repro.recovery.star import StarRecovery
from repro.util.sizes import MB

STATE_MB = 64


def traced_recovery(name, mechanism):
    tracer = Tracer(name)
    scenario = build_scenario(num_nodes=64, seed=1, tracer=tracer)
    saved_state(scenario, "app/state", STATE_MB * MB)
    timed_recovery(scenario, mechanism, "app/state")
    return tracer


def main() -> None:
    tracers = [
        traced_recovery("star", StarRecovery(fanout_bits=2)),
        traced_recovery("line", LineRecovery(path_length=8)),
    ]

    report = build_report(tracers)
    print(f"profiling a {STATE_MB} MB recovery:\n")
    print(report.format_table())

    for profile in report.profiles:
        print(f"\n[{profile.mechanism}] makespan {profile.makespan:.2f}s, "
              f"dominant blame: {profile.dominant_blame}")
        for category in sorted(profile.blame_fractions):
            fraction = profile.blame_fractions[category]
            if fraction > 0:
                print(f"  {category:<10} {fraction:6.1%}")
        if profile.explanation is not None:
            error = profile.explanation.model_error(profile.mechanism)
            if error is not None:
                print(f"  selection model error: {error:+.1%}")

    # Artifacts land under out/ (ignored by git) so they never drift at
    # the repo root.
    out_dir = os.path.join(os.getcwd(), "out")
    os.makedirs(out_dir, exist_ok=True)
    flame = os.path.join(out_dir, "recovery_profile.folded")
    scope = os.path.join(out_dir, "recovery_profile.speedscope.json")
    write_flamegraph(flame, tracers)
    write_speedscope(scope, tracers)
    print(f"\nwrote {flame}")
    print(f"wrote {scope}  (open at https://www.speedscope.app)")


if __name__ == "__main__":
    main()
