"""Micro-promotion (Fig. 1, top): top-k clicked products with SR3 recovery.

A click-stream topology counts product clicks and maintains the live
top-k ranking (the products to discount). Mid-stream, the worker running
the ranking task crashes; SR3 recovers its state from the DHT overlay and
processing resumes — the final ranking is identical to a failure-free run.

Usage: python examples/micro_promotion.py
"""

import random

from repro.dht.overlay import Overlay
from repro.recovery.manager import RecoveryManager
from repro.recovery.model import RecoveryContext
from repro.sim.kernel import Simulator
from repro.sim.network import Network
from repro.streaming.backend import SR3StateBackend
from repro.streaming.cluster import LocalCluster
from repro.workloads.clicks import build_micro_promotion_topology

NUM_EVENTS = 6_000


def run_without_failure() -> list:
    cluster = LocalCluster(build_micro_promotion_topology(NUM_EVENTS, seed=42))
    cluster.run()
    return cluster.task("topk").top_k()


def run_with_failure_and_recovery() -> list:
    # SR3 substrate: a 64-node DHT overlay on a simulated network.
    sim = Simulator()
    network = Network(sim)
    overlay = Overlay(sim, network, rng=random.Random(9))
    overlay.build(64)
    backend = SR3StateBackend(
        RecoveryManager(RecoveryContext(sim, network, overlay)),
        num_shards=4,
        num_replicas=2,
    )

    cluster = LocalCluster(
        build_micro_promotion_topology(NUM_EVENTS, seed=42), backend=backend
    )
    cluster.protect_stateful_tasks()

    # Process the first half of the stream, then checkpoint into the ring.
    cluster.run(max_emissions=NUM_EVENTS // 2)
    cluster.checkpoint()
    print("checkpointed the ranking state into the overlay")

    # The worker dies; its in-memory hashtable is gone.
    cluster.kill_task("topk")
    print("killed the topk task (state lost)")

    # SR3 pulls the shards back from the leaf set and rebuilds the store.
    cluster.recover_task("topk")
    print(f"recovered; resuming the remaining {NUM_EVENTS // 2} events")

    cluster.run()
    return cluster.task("topk").top_k()


def main() -> None:
    expected = run_without_failure()
    recovered = run_with_failure_and_recovery()
    print("\ntop-5 most-clicked products (after crash + SR3 recovery):")
    for product, clicks in recovered:
        print(f"  {product}: {clicks} clicks")
    assert recovered == expected, "recovery must not change the result"
    print("\nranking matches the failure-free run exactly")


if __name__ == "__main__":
    main()
