"""Incremental click/buy join with SR3 protection and straggler speculation.

Two streams — page clicks and purchases — join incrementally per user
("which page view led to which purchase"). The join's buffered rows are
its state: losing them drops every future match against past clicks. This
example crashes the join task, recovers it through SR3, and additionally
demonstrates the speculative recovery extension (Sec. 6 future work) when
one shard provider turns into a straggler.

Usage: python examples/clickstream_join.py
"""

import random

from repro.dht.overlay import Overlay
from repro.recovery.manager import RecoveryManager
from repro.recovery.model import RecoveryContext
from repro.recovery.speculation import SpeculativeStarRecovery
from repro.sim.kernel import Simulator
from repro.sim.network import Network
from repro.streaming.backend import SR3StateBackend
from repro.streaming.cluster import LocalCluster
from repro.streaming.component import IteratorSpout
from repro.streaming.groupings import FieldsGrouping
from repro.streaming.join import IncrementalJoinBolt
from repro.streaming.topology import TopologyBuilder
from repro.util.sizes import mbit_per_s

NUM_USERS = 50
NUM_CLICKS = 600
NUM_BUYS = 200


def generate_streams(seed=0):
    rng = random.Random(seed)
    clicks = [
        (f"user-{rng.randrange(NUM_USERS)}", f"page-{rng.randrange(40)}")
        for _ in range(NUM_CLICKS)
    ]
    buys = [
        (f"user-{rng.randrange(NUM_USERS)}", f"item-{rng.randrange(25)}")
        for _ in range(NUM_BUYS)
    ]
    return clicks, buys


def build_topology():
    clicks, buys = generate_streams()
    builder = TopologyBuilder("click-buy-join")
    builder.set_spout("clicks", IteratorSpout(iter(clicks), ["user", "page"]))
    builder.set_spout("buys", IteratorSpout(iter(buys), ["user", "item"]))
    builder.set_bolt(
        "join",
        IncrementalJoinBolt(
            "user", "clicks", "buys", ("page",), ("item",), max_rows_per_key=32
        ),
        [("clicks", FieldsGrouping(["user"])), ("buys", FieldsGrouping(["user"]))],
    )
    return builder.build()


def main() -> None:
    # Ground truth from an uninterrupted run.
    baseline = LocalCluster(build_topology())
    baseline.run()
    expected = {
        (t["user"], t["page"], t["item"]) for t in baseline.outputs["join"]
    }

    # SR3-protected run with a mid-stream crash.
    sim = Simulator()
    network = Network(sim)
    overlay = Overlay(sim, network, rng=random.Random(13))
    overlay.build(
        64,
        host_factory=lambda n: network.add_host(
            n, up_bw=mbit_per_s(1000), down_bw=mbit_per_s(1000)
        ),
    )
    manager = RecoveryManager(RecoveryContext(sim, network, overlay))
    backend = SR3StateBackend(manager, num_shards=4, num_replicas=2)
    cluster = LocalCluster(build_topology(), backend=backend)
    task_id = cluster.protect_stateful_tasks()[0]

    cluster.run(max_emissions=400)
    cluster.checkpoint()
    print(f"checkpointed join state after 400 emissions")

    # One shard provider becomes a straggler (1 Mb/s uplink); recover the
    # crashed join task with the speculative mechanism.
    registered = manager.states[backend.protected_tasks()[task_id].store.name]
    straggler = registered.plan.providers_for(0)[0].node
    straggler.host.up_bw = mbit_per_s(1)
    print(f"throttled provider {straggler.name} to 1 Mb/s")

    cluster.kill_task("join")
    cluster.recover_task("join", mechanism=SpeculativeStarRecovery())
    print("join task recovered through speculative star recovery")

    cluster.run()
    got = {(t["user"], t["page"], t["item"]) for t in cluster.outputs["join"]}
    assert got == expected, "join results must match the failure-free run"
    print(f"{len(got)} click->purchase matches, identical to the baseline run")


if __name__ == "__main__":
    main()
