"""Quickstart: protect a state with SR3 and recover it after a failure.

Runs the full SR3 pipeline on a 64-node simulated overlay:

1. build a deployment (`SR3.create`),
2. split a state into shards with replicas (`state_split`, Table 2's
   ``StateSplit``),
3. save the replicas into the DHT ring (``Save``),
4. crash the owner node,
5. recover the state through the heuristic-selected mechanism
   (``Selection`` + ``Recover``), and verify the contents survived,
6. export the span timeline of the whole run as a Chrome trace.

Usage: python examples/quickstart.py
"""

import os

from repro import SR3
from repro.obs import Tracer


def main() -> None:
    sr3 = SR3.create(num_nodes=64, seed=7, tracer=Tracer("quickstart"))
    owner = sr3.overlay.nodes[0]

    # The operator's in-memory hashtable state: product -> click count.
    state = {f"product-{i}": (i * 37) % 250 for i in range(500)}
    shards = sr3.state_split(state, "shop/clicks", num_shards=4, num_replicas=2)
    save = sr3.save(owner, shards)
    print(
        f"saved {save.replicas_written} shard replicas "
        f"({save.bytes_transferred / 1024:.0f} KB) in {save.duration:.2f}s "
        f"of simulated time"
    )

    # Let the selection heuristic pick the mechanism for this application.
    choice = sr3.selection(
        "shop/clicks",
        requirement="latency-sensitive",
        state_size=sum(s.size_bytes for s in shards),
        network_bw_mbit=1000,
    )
    print(f"selection heuristic chose: {choice.value} (knobs: {choice.knobs})")

    # Crash the owner. The overlay repairs itself; the numerically closest
    # surviving node takes over the failed node's key range.
    sr3.overlay.fail_node(owner)
    snapshot, result = sr3.recover("shop/clicks", app_name="shop/clicks")

    assert snapshot.as_dict() == state, "recovered state must match exactly"
    print(
        f"recovered {len(snapshot)} entries via {result.mechanism} recovery "
        f"onto {result.replacement} in {result.duration:.2f}s, "
        f"involving {result.nodes_involved} nodes"
    )

    # Every save and recovery above produced hierarchical spans on the
    # simulation's virtual clock; dump them for chrome://tracing. Artifacts
    # land under out/ (ignored by git) so they never drift at the repo root.
    os.makedirs("out", exist_ok=True)
    path = sr3.export_trace(os.path.join("out", "quickstart-trace.json"))
    spans = len(sr3.tracer.spans)
    print(f"wrote {spans} spans to {path}")


if __name__ == "__main__":
    main()
