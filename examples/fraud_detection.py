"""Click-fraud detection (Fig. 1, bottom): Bloom-filter state under SR3.

The fraud detector memorizes (ip, product) click fingerprints in a Bloom
filter — a probabilistic structure that cannot be rebuilt from recent
input alone, so losing it silently un-flags every past clicker. This
example crashes the detector mid-stream and shows that SR3 restores the
filter bits exactly: the same duplicates keep being flagged afterwards.

Usage: python examples/fraud_detection.py
"""

import random

from repro.dht.overlay import Overlay
from repro.recovery.manager import RecoveryManager
from repro.recovery.model import RecoveryContext
from repro.sim.kernel import Simulator
from repro.sim.network import Network
from repro.streaming.backend import SR3StateBackend
from repro.streaming.cluster import LocalCluster
from repro.workloads.clicks import build_fraud_detection_topology

NUM_EVENTS = 5_000


def build_backend(seed: int) -> SR3StateBackend:
    sim = Simulator()
    network = Network(sim)
    overlay = Overlay(sim, network, rng=random.Random(seed))
    overlay.build(64)
    manager = RecoveryManager(RecoveryContext(sim, network, overlay))
    return SR3StateBackend(manager, num_shards=4, num_replicas=2)


def main() -> None:
    # Ground truth: the flags produced by an uninterrupted run.
    baseline = LocalCluster(build_fraud_detection_topology(NUM_EVENTS, seed=3))
    baseline.run()
    expected_flags = [(t["ip"], t["product"]) for t in baseline.outputs["fraud"]]

    # The monitored run: crash after 60% of the stream, recover, finish.
    cluster = LocalCluster(
        build_fraud_detection_topology(NUM_EVENTS, seed=3),
        backend=build_backend(seed=11),
    )
    cluster.protect_stateful_tasks()
    cluster.run(max_emissions=int(NUM_EVENTS * 0.6))
    cluster.checkpoint()
    flags_before = len(cluster.outputs["fraud"])
    print(f"{flags_before} fraudulent clicks flagged before the crash")

    cluster.kill_task("fraud")
    cluster.recover_task("fraud")
    bolt = cluster.task("fraud")
    print(
        "recovered Bloom filter: "
        f"{len(bolt._filter())} fingerprints memorized, "
        f"fill ratio {bolt._filter().fill_ratio:.3f}"
    )

    cluster.run()
    recovered_flags = [(t["ip"], t["product"]) for t in cluster.outputs["fraud"]]
    print(f"{len(recovered_flags)} total flags after recovery")

    assert recovered_flags == expected_flags, (
        "the recovered filter must flag exactly the same duplicates"
    )
    print("flags identical to the failure-free run — no fraud slipped through")


if __name__ == "__main__":
    main()
