"""Live-traffic recovery: a flash crowd, a mid-stream kill, user-felt latency.

Drives the word-count topology with a flash-crowd rate curve (300 ev/s
baseline spiking to 1,200 ev/s), mirrors the offered load into the
network as app flows so recovery transfers contend with ingest traffic,
checkpoints, kills the first count task's owner right as the crowd
peaks, and lets SR3 recover the state while the backlog builds. The
report segments per-tuple end-to-end latency percentiles into
before/during/after the recovery window and shows replay lag, catch-up
throughput, and time-to-drain.

Usage: python examples/live_recovery.py
"""

from repro.live import FlashCrowd, LoadDriver, build_live_cell
from repro.recovery.star import StarRecovery


def main() -> None:
    cell = build_live_cell(num_nodes=16, seed=7)
    rate = FlashCrowd(base=300.0, peak=1_200.0, at=8.0, ramp=2.0, hold=8.0, decay=5.0)
    driver = LoadDriver(
        cell,
        rate,
        duration=30.0,
        service_rate=3_000.0,
        checkpoint_at=(5.0,),
        kill_at=10.0,
        mechanism=StarRecovery(fanout_bits=2),
        bulk_state_mb=32.0,
    )
    print("playing flash crowd; killing the count[0] owner at t=10s ...")
    report = driver.run()
    print()
    print(report.format())
    print()
    if report.catchup_events_per_s is not None:
        print(
            f"caught up at {report.catchup_events_per_s:,.0f} events/s "
            f"(offered peak {rate.peak:,.0f} events/s)"
        )
    window = report.recovery_window
    if window is not None:
        print(f"recovery window on the simulated clock: {window[0]:.2f}s - {window[1]:.2f}s")


if __name__ == "__main__":
    main()
