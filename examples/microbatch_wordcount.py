"""The second computation model: synchronous micro-batches (Spark-style).

SR3's stated goal is serving applications with *diverse execution models*
(Sec. 3.1): Storm's record-at-a-time dataflow and Spark Streaming's
synchronous mini-batches. This example runs word count on the micro-batch
engine, protects its ``update_state_by_key`` (``mapWithState``) store with
SR3, and compares the two recovery paths after a driver crash:

- DStream lineage recomputation — replay every batch since the start
  (slow when the lineage is long), versus
- SR3 shard recovery from the DHT overlay — fetch and merge, independent
  of how long the computation has been running.

Usage: python examples/microbatch_wordcount.py
"""

import random

from repro.dht.overlay import Overlay
from repro.recovery.manager import RecoveryManager
from repro.recovery.model import RecoveryContext, run_handles
from repro.sim.kernel import Simulator
from repro.sim.network import Network
from repro.state.partitioner import merge_shards, partition_snapshot
from repro.state.store import StateStore
from repro.streaming.microbatch import MicroBatchEngine, MicroBatchJob
from repro.workloads.wordcount import SentenceGenerator

NUM_SENTENCES = 3_000
BATCH_SIZE = 100


def build_job() -> MicroBatchJob:
    job = MicroBatchJob("wordcount", batch_size=BATCH_SIZE)
    (
        job.source(SentenceGenerator(NUM_SENTENCES, seed=8))
        .flat_map(str.split)
        .map(lambda word: (word, 1))
        .update_state_by_key("counts", lambda old, values: (old or 0) + sum(values))
    )
    return job


def main() -> None:
    # SR3 substrate.
    sim = Simulator()
    network = Network(sim)
    overlay = Overlay(sim, network, rng=random.Random(17))
    overlay.build(64)
    manager = RecoveryManager(RecoveryContext(sim, network, overlay))

    engine = MicroBatchEngine(build_job())
    engine.run(max_batches=20)
    store = engine.state_store("counts")
    print(
        f"processed {engine.batches_processed} batches; "
        f"{len(store)} distinct words tracked"
    )

    # Protect the mapWithState store through SR3.
    owner = overlay.nodes[0]
    shards = partition_snapshot(store.snapshot(sim.now), 4)
    manager.register(owner, shards, num_replicas=2)
    manager.save(store.name)
    sim.run_until_idle()
    print("state saved into the DHT ring")

    # The driver node dies. Option A: lineage recomputation (Spark).
    replayed = engine.recompute_from_lineage()
    print(
        f"lineage recovery: re-executed {replayed.batches_processed} batches "
        f"to rebuild the state"
    )

    # Option B: SR3 shard recovery — no re-execution at all.
    overlay.fail_node(owner)
    handle = manager.recover(store.name)
    result = run_handles(sim, [handle])[0]
    plan = manager.states[store.name].plan
    recovered = merge_shards(plan.available_shards())
    print(
        f"SR3 recovery: {result.mechanism} mechanism, "
        f"{result.duration:.2f}s simulated, zero batches re-executed"
    )

    # Both paths produce the identical state; resume from batch 20.
    assert recovered.as_dict() == dict(
        replayed.state_store("counts").items()
    )
    fresh_store = StateStore(store.name)
    fresh_store.restore(recovered)
    resumed = MicroBatchEngine(build_job())
    resumed.attach_state("counts", fresh_store)
    resumed.batches_processed = engine.batches_processed
    resumed.run()
    top = sorted(
        resumed.state_store("counts").items(), key=lambda kv: -kv[1]
    )[:5]
    print("\ntop words after resuming to the end of the stream:")
    for word, count in top:
        print(f"  {word}: {count}")


if __name__ == "__main__":
    main()
