"""SLO-triggered recovery with a telemetry dashboard.

Builds a live word-count cell instrumented with the continuous telemetry
pipeline, an SLO burn-rate engine (the backlog must stay under 200
queued tuples), and an anomaly detector watching throughput. A flash
crowd ramps the ingest rate, the count[0] owner is killed at t=10s, and
— crucially — the driver does *not* recover on its own: the only policy
rule maps ``slo-burning`` to ``recover-degraded``, so recovery starts
when the burn-rate alert fires, not when any component reads ground
truth. The run ends by printing the alert timeline and writing a fully
self-contained ``dashboard.html`` (inline SVG sparklines, SLO status,
alert timeline, remediation table).

Usage: python examples/slo_dashboard.py
"""

from repro.control import (
    ControlConfig,
    Controller,
    ControlPlane,
    PolicyRule,
    PolicyTable,
)
from repro.live import FlashCrowd, LoadDriver, build_live_cell
from repro.obs import (
    SLO,
    AnomalyDetector,
    BurnWindow,
    SLOEngine,
    TelemetryConfig,
    TelemetryPipeline,
    write_dashboard,
)

OUT = "dashboard.html"


def main() -> None:
    cell = build_live_cell(num_nodes=16, seed=7)
    pipeline = TelemetryPipeline(cell.sim, TelemetryConfig(interval=0.1))
    engine = SLOEngine(pipeline)
    engine.add(
        SLO(
            name="backlog-drains",
            series="live.backlog",
            objective="le",
            threshold=200.0,
            budget=0.1,
            windows=(BurnWindow(long_s=3.0, short_s=1.0, burn_rate=4.0),),
            description="queued tuples stay below 200",
        )
    )
    anomalies = AnomalyDetector(
        pipeline, series=("live.throughput",), z_threshold=6.0
    )
    world = ControlPlane(
        sim=cell.sim,
        network=cell.network,
        overlay=cell.overlay,
        manager=cell.manager,
    )
    policy = PolicyTable(
        rules=[
            PolicyRule(
                condition="slo-burning",
                action="recover-degraded",
                params=(("mechanism", "star"),),
            )
        ]
    )
    controller = Controller(
        world,
        policy=policy,
        config=ControlConfig(verify_invariants=False),
        slo_engine=engine,
        anomalies=anomalies,
    )
    rate = FlashCrowd(base=300.0, peak=1_200.0, at=8.0, ramp=2.0, hold=8.0, decay=5.0)
    driver = LoadDriver(
        cell,
        rate,
        duration=30.0,
        service_rate=3_000.0,
        checkpoint_at=(5.0,),
        kill_at=10.0,
        telemetry=pipeline,
        controller=controller,
    )
    print("flash crowd + kill at t=10s; only an SLO alert can start recovery ...")
    report = driver.run()
    controller.sweep()
    print()
    print("alert timeline:")
    timeline = [
        (a.at, f"slo-burning  {a.slo} ({a.severity}, burn {a.burn_long:.2f})")
        for a in engine.alerts
    ] + [
        (a.at, f"anomaly      {a.kind} on {a.series} (score {a.score:.1f})")
        for a in anomalies.anomalies
    ]
    for at, line in sorted(timeline):
        print(f"  t={at:6.2f}s  {line}")
    print()
    if report.killed_at is not None and report.recovered_at is not None:
        print(
            f"killed at t={report.killed_at:.2f}s, alert-triggered recovery "
            f"landed {report.recovered_at - report.killed_at:.2f}s later"
        )
    for record in controller.records:
        if record.verified and record.mttr_s is not None:
            print(
                f"remediation {record.action!r} verified, "
                f"MTTR {record.mttr_s:.3f}s from the alert"
            )
    write_dashboard(
        OUT,
        pipeline,
        slo_engine=engine,
        anomalies=anomalies,
        controller=controller,
        title="SR3 telemetry — SLO-triggered recovery",
    )
    print(f"dashboard written to {OUT}")


if __name__ == "__main__":
    main()
