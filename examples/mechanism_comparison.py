"""Compare all recovery approaches on one failure (a miniature Fig. 8).

Recovers the same 64 MB state through SR3's three mechanisms and all four
baselines, in both the unconstrained-GbE and 100 Mb/s-constrained network
regimes, and prints the resulting latency table.

Usage: python examples/mechanism_comparison.py
"""

from repro.bench.experiments import baseline_matrix
from repro.bench.harness import build_scenario, saved_state, timed_recovery
from repro.bench.reporting import format_result
from repro.recovery.line import LineRecovery
from repro.recovery.star import StarRecovery
from repro.recovery.tree import TreeRecovery
from repro.util.sizes import MB

STATE_MB = 64


def sr3_times(link_mbit):
    times = {}
    for name, mechanism in (
        ("star", StarRecovery(fanout_bits=2)),
        ("line", LineRecovery(path_length=8)),
        ("tree", TreeRecovery(fanout_bits=1, sub_shards=8)),
    ):
        scenario = build_scenario(
            num_nodes=64, seed=1, uplink_mbit=link_mbit, downlink_mbit=link_mbit
        )
        saved_state(scenario, "app/state", STATE_MB * MB)
        times[name] = timed_recovery(scenario, mechanism, "app/state").duration
    return times


def main() -> None:
    print(f"recovering a {STATE_MB} MB state:\n")
    for label, link in (("unconstrained GbE", None), ("100 Mb/s constrained", 100)):
        times = sr3_times(link)
        ranked = sorted(times.items(), key=lambda kv: kv[1])
        print(f"[{label}]")
        for name, seconds in ranked:
            print(f"  SR3 {name:<5} {seconds:6.2f}s")
        print(f"  -> fastest: {ranked[0][0]}\n")

    print("all approaches side by side (unconstrained):")
    print(format_result(baseline_matrix(state_mb=STATE_MB)))


if __name__ == "__main__":
    main()
