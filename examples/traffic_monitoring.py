"""Traffic monitoring (Dublin-Bus-style): multiple simultaneous failures.

Per-route delay statistics run on two parallel stateful tasks. Both tasks'
DHT nodes crash at the same time — the multi-failure scenario SR3 is
designed for (Sec. 1, Challenge 1). The recovery manager restores every
lost state in parallel; each recovery picks its mechanism through the
Fig. 7 heuristic.

Usage: python examples/traffic_monitoring.py
"""

import random

from repro.dht.overlay import Overlay
from repro.recovery.manager import RecoveryManager
from repro.recovery.model import RecoveryContext
from repro.sim.kernel import Simulator
from repro.sim.network import Network
from repro.streaming.backend import SR3StateBackend
from repro.streaming.cluster import LocalCluster
from repro.workloads.traffic import build_traffic_topology

NUM_EVENTS = 8_000


def main() -> None:
    sim = Simulator()
    network = Network(sim)
    overlay = Overlay(sim, network, rng=random.Random(23))
    overlay.build(96)
    manager = RecoveryManager(RecoveryContext(sim, network, overlay))
    backend = SR3StateBackend(manager, num_shards=4, num_replicas=2)

    cluster = LocalCluster(
        build_traffic_topology(NUM_EVENTS, seed=5, parallelism=2),
        backend=backend,
    )
    protected = cluster.protect_stateful_tasks()
    print(f"protected tasks: {protected}")

    cluster.run(max_emissions=NUM_EVENTS // 2)
    cluster.checkpoint()
    states_before = {
        key: dict(bolt.state.items())
        for key, bolt in cluster.stateful_tasks().items()
    }

    # Both monitor tasks' DHT nodes fail simultaneously (e.g. a rack-level
    # power event); their in-memory route statistics are lost.
    failed_nodes = [
        backend.protected_tasks()[task_id].node for task_id in protected
    ]
    for node in failed_nodes:
        overlay.fail_node(node)
    cluster.kill_task("monitor", 0)
    cluster.kill_task("monitor", 1)
    print(f"simultaneously crashed {len(failed_nodes)} nodes + their tasks")

    # SR3 recovers each state onto the node taking over the failed range.
    cluster.recover_task("monitor", 0)
    cluster.recover_task("monitor", 1)
    for key, bolt in cluster.stateful_tasks().items():
        assert dict(bolt.state.items()) == states_before[key]
    print("both route-statistics states recovered exactly")

    cluster.run()
    alerts = cluster.outputs["monitor"]
    print(f"\n{len(alerts)} congestion alerts over the full stream; last 5:")
    for alert in alerts[-5:]:
        print(
            f"  {alert['route']}: window avg delay {alert['window_avg']}s "
            f"(lifetime {alert['lifetime_avg']}s)"
        )


if __name__ == "__main__":
    main()
