"""The high-level SR3 API (Table 2).

A batteries-included façade over the overlay, state layer, and recovery
mechanisms, mirroring the paper's user-facing functions: ``StateSplit``,
``Save``, ``StarDefine`` / ``LineDefine`` / ``TreeDefine``, ``Selection``
and ``Recover`` — with Pythonic names. It owns a simulation, an overlay,
and a recovery manager, and drives the event loop internally, so a user
can protect and recover a state in a few lines:

>>> sr3 = SR3.create(num_nodes=64, seed=7)
>>> owner = sr3.overlay.nodes[0]
>>> shards = sr3.state_split({"k1": "v1", "k2": "v2"}, "app/state",
...                          num_shards=2, num_replicas=2)
>>> sr3.save(owner, shards)                         # doctest: +ELLIPSIS
SaveResult(...)
>>> sr3.overlay.fail_node(owner)
>>> snapshot, result = sr3.recover("app/state")
>>> sorted(snapshot.as_dict())
['k1', 'k2']
"""

from __future__ import annotations

import random
import warnings
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Tuple, Union

from repro.dht.node import DhtNode
from repro.dht.overlay import Overlay
from repro.errors import RecoveryError, StateError
from repro.obs.export import write_trace
from repro.obs.tracer import Tracer
from repro.recovery.line import LineRecovery
from repro.recovery.manager import MechanismImpl, RecoveryManager
from repro.recovery.model import CostModel, RecoveryContext, RecoveryResult
from repro.recovery.save import SaveResult
from repro.recovery.selection import (
    Mechanism,
    SelectionInputs,
    recommended_path_length,
    recommended_tree_fanout_bits,
    select_mechanism,
)
from repro.recovery.standby import StandbyRecovery
from repro.recovery.star import StarRecovery
from repro.recovery.tree import TreeRecovery
from repro.sim.kernel import Simulator
from repro.sim.network import Network
from repro.state.partitioner import partition_snapshot, partition_synthetic
from repro.state.shard import Shard
from repro.state.store import StateSnapshot, StateStore
from repro.util.sizes import mbit_per_s


@dataclass
class _AppPolicy:
    """Per-application mechanism overrides (Star/Line/TreeDefine)."""

    mechanism: Optional[MechanismImpl] = None


@dataclass(frozen=True)
class SplitResult:
    """Outcome of :meth:`SR3.state_split`: the shards plus the replication
    factor they were split for.

    Behaves like the plain list of shards earlier versions returned
    (iterable, indexable, sized), so existing code keeps working, while
    :meth:`SR3.save` can read the replication factor directly instead of
    relying on a hidden side channel.
    """

    shards: List[Shard]
    num_replicas: int

    @property
    def state_name(self) -> str:
        return self.shards[0].state_name

    def __iter__(self) -> Iterator[Shard]:
        return iter(self.shards)

    def __len__(self) -> int:
        return len(self.shards)

    def __getitem__(self, index):
        return self.shards[index]


@dataclass(frozen=True)
class SelectionResult:
    """Outcome of :meth:`SR3.selection`: the chosen mechanism and the knob
    values the heuristic pinned for the application.

    Compares equal to the bare :class:`Mechanism` member *and* to its
    string value, so ``result == Mechanism.STAR`` and ``result == "star"``
    both keep working — and hashes to match both, so a result is found in
    sets and dicts keyed either way (``Mechanism`` hashes by value for the
    same reason).
    """

    mechanism: Mechanism
    knobs: Dict[str, int] = field(default_factory=dict)

    @property
    def value(self) -> str:
        return self.mechanism.value

    @property
    def name(self) -> str:
        return self.mechanism.name

    def __eq__(self, other: object) -> bool:
        if isinstance(other, SelectionResult):
            return (self.mechanism, self.knobs) == (other.mechanism, other.knobs)
        if isinstance(other, Mechanism):
            return self.mechanism is other
        if isinstance(other, str):
            return self.mechanism.value == other
        return NotImplemented

    def __hash__(self) -> int:
        # Must collide with hash(self.mechanism) AND hash(self.value) —
        # anything equal must hash equal. Mechanism.__hash__ is value-based.
        return hash(self.mechanism.value)


# Mechanism-specific knob aliases accepted by :meth:`SR3.define`, mapped
# to the constructor parameters of the implementation classes.
_KNOB_ALIASES = {
    Mechanism.STAR: {"star_fanout": "fanout_bits", "fanout_bits": "fanout_bits"},
    Mechanism.LINE: {"length_of_path": "path_length", "path_length": "path_length"},
    Mechanism.TREE: {
        "fanout": "fanout_bits",
        "fanout_bits": "fanout_bits",
        "branch_depth": "branch_depth",
        "sub_shards": "sub_shards",
    },
    Mechanism.STANDBY: {"fetch_window": "fetch_window"},
}

_MECHANISM_CLASSES = {
    Mechanism.STAR: StarRecovery,
    Mechanism.LINE: LineRecovery,
    Mechanism.TREE: TreeRecovery,
    Mechanism.STANDBY: StandbyRecovery,
}


class SR3:
    """The customizable state recovery framework, end to end."""

    def __init__(self, ctx: RecoveryContext, num_replicas: int = 2) -> None:
        self.ctx = ctx
        self.overlay = ctx.overlay
        self.manager = RecoveryManager(ctx)
        self.num_replicas = num_replicas
        self._policies: Dict[str, _AppPolicy] = {}
        self._controller = None

    # -------------------------------------------------------------- creation

    @classmethod
    def create(
        cls,
        num_nodes: int = 64,
        seed: int = 0,
        uplink_mbit: Optional[float] = None,
        downlink_mbit: Optional[float] = None,
        leaf_set_size: int = 24,
        cost_model: Optional[CostModel] = None,
        tracer: Optional[Tracer] = None,
    ) -> "SR3":
        """Build a self-contained SR3 deployment on a fresh simulation.

        ``uplink_mbit``/``downlink_mbit`` shape every node's link (None
        means unconstrained, the paper's GbE baseline). Pass a
        :class:`~repro.obs.Tracer` to capture a span timeline of every
        save and recovery; export it with :meth:`export_trace`.
        """
        sim = Simulator(tracer=tracer)
        network = Network(sim)
        up = mbit_per_s(uplink_mbit) if uplink_mbit else float("inf")
        down = mbit_per_s(downlink_mbit) if downlink_mbit else float("inf")
        overlay = Overlay(
            sim, network, leaf_set_size=leaf_set_size, rng=random.Random(seed)
        )
        overlay.build(
            num_nodes,
            host_factory=lambda name: network.add_host(name, up_bw=up, down_bw=down),
        )
        ctx = RecoveryContext(sim, network, overlay, cost_model or CostModel())
        return cls(ctx)

    # ----------------------------------------------------- Table 2: StateSplit

    def state_split(
        self,
        state: Union[Dict[Any, Any], StateStore, StateSnapshot, int],
        state_name: str,
        num_shards: int,
        num_replicas: Optional[int] = None,
    ) -> SplitResult:
        """``StateSplit``: partition a state into shards (and set replicas).

        ``state`` may be a dict, a :class:`StateStore`, a snapshot, or an
        integer byte size (synthetic state for capacity experiments).
        Returns a :class:`SplitResult` carrying the shards and the
        replication factor; it iterates and indexes like a plain shard
        list.
        """
        replicas = num_replicas or self.num_replicas
        if isinstance(state, int):
            shards = partition_synthetic(
                state_name, state, num_shards,
                version=self._next_version(state_name),
            )
        else:
            if isinstance(state, dict):
                store = StateStore(state_name)
                for key, value in state.items():
                    store.put(key, value)
                snapshot = store.snapshot(self.ctx.sim.now)
            elif isinstance(state, StateStore):
                snapshot = state.snapshot(self.ctx.sim.now)
            else:
                snapshot = state
            if snapshot.name != state_name:
                raise StateError(
                    f"snapshot is named {snapshot.name!r}, expected {state_name!r}"
                )
            shards = partition_snapshot(snapshot, num_shards)
        return SplitResult(shards=shards, num_replicas=replicas)

    def _next_version(self, state_name: str):
        from repro.state.version import StateVersion

        registered = self.manager.states.get(state_name)
        sequence = 1
        if registered is not None and registered.shards:
            sequence = registered.shards[0].version.sequence + 1
        return StateVersion(self.ctx.sim.now, sequence)

    # ----------------------------------------------------------- Table 2: Save

    def save(
        self,
        owner: DhtNode,
        shards: Union[SplitResult, List[Shard]],
        num_replicas: Optional[int] = None,
        serial: bool = True,
    ) -> SaveResult:
        """``Save``: write the shard replicas into the overlay (blocking).

        ``shards`` is normally the :class:`SplitResult` from
        :meth:`state_split`, whose replication factor is used unless
        ``num_replicas`` overrides it; a bare shard list falls back to the
        framework default.
        """
        if isinstance(shards, SplitResult):
            replicas = num_replicas or shards.num_replicas
            shards = shards.shards
        else:
            replicas = num_replicas or self.num_replicas
        if not shards:
            raise StateError("cannot save zero shards")
        name = shards[0].state_name
        if name not in self.manager.states:
            self.manager.register(owner, shards, replicas)
        else:
            self.manager.refresh_shards(name, shards)
        handle = self.manager.save(name, serial=serial)
        self.ctx.sim.run_until_idle()
        return handle.result

    # ----------------------------------- Table 2: Star/Line/TreeDefine

    def define(
        self,
        app_name: str,
        mechanism: Union[str, Mechanism, MechanismImpl],
        **knobs,
    ) -> MechanismImpl:
        """Pin ``app_name`` to a recovery mechanism with explicit knobs.

        The single entry point behind the paper's ``StarDefine`` /
        ``LineDefine`` / ``TreeDefine``. ``mechanism`` may be:

        - a name (``"star"``, ``"line"``, ``"tree"``, ``"standby"``),
        - a :class:`Mechanism` enum member, or
        - an already-configured implementation instance (knobs must then
          be empty).

        Knob aliases follow the paper's parameter names: ``star_fanout``
        (star), ``length_of_path`` (line), ``fanout`` and ``branch_depth``
        (tree); the implementation-native names (``fanout_bits``,
        ``path_length``, ``sub_shards``) are accepted too. Returns the
        configured mechanism instance.
        """
        if isinstance(
            mechanism, (StarRecovery, LineRecovery, TreeRecovery, StandbyRecovery)
        ):
            if knobs:
                raise RecoveryError(
                    "knobs cannot be combined with a pre-built mechanism instance"
                )
            impl = mechanism
        else:
            if isinstance(mechanism, str):
                try:
                    member = Mechanism(mechanism.lower())
                except ValueError:
                    raise RecoveryError(
                        f"unknown mechanism {mechanism!r}; "
                        f"expected 'star', 'line', 'tree' or 'standby'"
                    ) from None
            else:
                member = mechanism
            if member not in _MECHANISM_CLASSES:
                raise RecoveryError(
                    f"mechanism {member.value!r} cannot be pinned to an app"
                )
            aliases = _KNOB_ALIASES[member]
            kwargs = {}
            for knob, value in knobs.items():
                try:
                    kwargs[aliases[knob]] = value
                except KeyError:
                    raise RecoveryError(
                        f"unknown knob {knob!r} for {member.value} recovery; "
                        f"expected one of {sorted(set(aliases))}"
                    ) from None
            impl = _MECHANISM_CLASSES[member](**kwargs)
        self._policies[app_name] = _AppPolicy(impl)
        return impl

    @staticmethod
    def _deprecated_define(old: str, new: str) -> None:
        warnings.warn(
            f"SR3.{old} is deprecated; use SR3.define({new}) instead",
            DeprecationWarning,
            stacklevel=3,
        )

    def star_define(self, app_name: str, star_fanout: int = 2) -> None:
        """``StarDefine``: deprecated alias for :meth:`define` with star."""
        self._deprecated_define("star_define", "app, 'star', star_fanout=...")
        self.define(app_name, Mechanism.STAR, star_fanout=star_fanout)

    def line_define(self, app_name: str, length_of_path: int = 8) -> None:
        """``LineDefine``: deprecated alias for :meth:`define` with line."""
        self._deprecated_define("line_define", "app, 'line', length_of_path=...")
        self.define(app_name, Mechanism.LINE, length_of_path=length_of_path)

    def tree_define(
        self, app_name: str, fanout: int = 1, branch_depth: Optional[int] = None
    ) -> None:
        """``TreeDefine``: deprecated alias for :meth:`define` with tree."""
        self._deprecated_define("tree_define", "app, 'tree', fanout=...")
        self.define(app_name, Mechanism.TREE, fanout=fanout, branch_depth=branch_depth)

    # ------------------------------------------------------ Table 2: Selection

    def selection(
        self,
        app_name: str,
        requirement: str,
        state_size: float,
        network_bw_mbit: Optional[float] = None,
    ) -> SelectionResult:
        """``Selection``: run the Fig. 7 heuristic and pin the result.

        ``requirement`` is ``"latency-sensitive"`` or
        ``"latency-insensitive"``; ``network_bw_mbit`` below 1000 counts
        as a bandwidth-constrained environment. Returns a
        :class:`SelectionResult` whose ``knobs`` are the parameter values
        the heuristic pinned for the app (it compares equal to the bare
        :class:`Mechanism` member).
        """
        requirement = requirement.lower()
        if requirement not in ("latency-sensitive", "latency-insensitive"):
            raise RecoveryError(
                "requirement must be 'latency-sensitive' or 'latency-insensitive'"
            )
        latency_sensitive = requirement == "latency-sensitive"
        constrained = network_bw_mbit is not None and network_bw_mbit < 1000
        choice = select_mechanism(
            SelectionInputs(
                state_bytes=state_size,
                latency_sensitive=latency_sensitive,
                bandwidth_constrained=constrained,
            )
        )
        knobs: Dict[str, int] = {}
        if choice is Mechanism.STAR:
            knobs["star_fanout"] = 2
            self.define(app_name, choice, **knobs)
        elif choice is Mechanism.LINE:
            knobs["length_of_path"] = recommended_path_length(
                state_size, latency_sensitive
            )
            self.define(app_name, choice, **knobs)
        elif choice is Mechanism.TREE:
            knobs["fanout"] = recommended_tree_fanout_bits(state_size)
            self.define(app_name, choice, **knobs)
        return SelectionResult(mechanism=choice, knobs=knobs)

    # -------------------------------------------------------- Table 2: Recover

    def recover(
        self,
        state_name: str,
        replacement: Optional[DhtNode] = None,
        mechanism: Optional[MechanismImpl] = None,
        app_name: Optional[str] = None,
    ) -> Tuple[StateSnapshot, RecoveryResult]:
        """``Recover``: rebuild a lost state (blocking).

        Returns the reconstructed snapshot plus the timed
        :class:`RecoveryResult`. Mechanism precedence: explicit argument,
        then the app's pinned policy, then the selection heuristic.
        """
        if mechanism is None:
            policy = self._policies.get(app_name or state_name)
            if policy is not None:
                mechanism = policy.mechanism
        registered = self.manager.states.get(state_name)
        if registered is None:
            raise RecoveryError(f"unknown state {state_name!r}")
        if replacement is None and registered.owner.alive:
            replacement = registered.owner
        handle = self.manager.recover(state_name, replacement, mechanism)
        result = self.manager.run([handle])[0]
        # Chain-aware reconstruction: base-then-deltas when the state's
        # plan is a version chain, plain shard merge otherwise.
        snapshot = self.manager.recovered_snapshot(state_name)
        return snapshot, result

    # --------------------------------------------------- control plane (SR3+)

    @property
    def controller(self):
        """The attached remediation controller, or ``None``."""
        return self._controller

    def attach_controller(self, policy=None, config=None, detector=None):
        """Attach a closed-loop auto-remediation controller.

        ``policy`` is a :class:`~repro.control.PolicyTable` (default: the
        shipped :func:`~repro.control.default_policy`); ``config`` a
        :class:`~repro.control.ControlConfig`; ``detector`` an optional
        running :class:`~repro.dht.failure_detector.FailureDetector` whose
        declarations feed the controller's event log (and date its MTTR
        measurements). Returns the :class:`~repro.control.Controller` —
        call :meth:`remediate` (or ``controller.run()``) after faults.
        """
        from repro.control import ControlPlane, Controller

        if self._controller is not None:
            raise RecoveryError(
                "a controller is already attached; detach_controller() first"
            )
        world = ControlPlane.from_sr3(self, detector=detector)
        self._controller = Controller(world, policy=policy, config=config)
        return self._controller

    def detach_controller(self):
        """Detach and return the current controller (``None`` if none)."""
        controller, self._controller = self._controller, None
        return controller

    def remediate(self, max_rounds: Optional[int] = None):
        """Run the attached controller's loop until the world is clean.

        Returns the list of :class:`~repro.control.RemediationRecord`\\ s
        the sweep produced. Requires :meth:`attach_controller` first.
        """
        if self._controller is None:
            raise RecoveryError(
                "no controller attached; call attach_controller() first"
            )
        return self._controller.run(max_rounds)

    # --------------------------------------------------------- observability

    @property
    def tracer(self):
        """The simulation's span tracer (a no-op one unless enabled)."""
        return self.ctx.sim.tracer

    @property
    def metrics(self):
        """The simulation's metrics registry."""
        return self.ctx.sim.metrics

    def export_trace(self, path: str, chrome: bool = True) -> str:
        """Write the captured span timeline to ``path`` as JSON.

        ``chrome=True`` emits the Chrome ``trace_event`` format (open it
        in ``chrome://tracing`` or Perfetto); ``chrome=False`` emits the
        plain sr3-trace dict. Returns ``path``.
        """
        return write_trace(path, [self.ctx.sim.tracer], chrome=chrome)

    # ----------------------------------------------------------------- misc

    def protected_states(self) -> List[str]:
        return sorted(self.manager.states)

    def state_bytes(self, state_name: str) -> float:
        registered = self.manager.states.get(state_name)
        if registered is None:
            raise RecoveryError(f"unknown state {state_name!r}")
        return registered.state_bytes
