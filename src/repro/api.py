"""The high-level SR3 API (Table 2).

A batteries-included façade over the overlay, state layer, and recovery
mechanisms, mirroring the paper's user-facing functions: ``StateSplit``,
``Save``, ``StarDefine`` / ``LineDefine`` / ``TreeDefine``, ``Selection``
and ``Recover`` — with Pythonic names. It owns a simulation, an overlay,
and a recovery manager, and drives the event loop internally, so a user
can protect and recover a state in a few lines:

>>> sr3 = SR3.create(num_nodes=64, seed=7)
>>> owner = sr3.overlay.nodes[0]
>>> shards = sr3.state_split({"k1": "v1", "k2": "v2"}, "app/state",
...                          num_shards=2, num_replicas=2)
>>> sr3.save(owner, shards)                         # doctest: +ELLIPSIS
SaveResult(...)
>>> sr3.overlay.fail_node(owner)
>>> snapshot, result = sr3.recover("app/state")
>>> sorted(snapshot.as_dict())
['k1', 'k2']
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.dht.node import DhtNode
from repro.dht.overlay import Overlay
from repro.errors import RecoveryError, StateError
from repro.recovery.line import LineRecovery
from repro.recovery.manager import MechanismImpl, RecoveryManager
from repro.recovery.model import CostModel, RecoveryContext, RecoveryResult
from repro.recovery.save import SaveResult
from repro.recovery.selection import (
    Mechanism,
    SelectionInputs,
    recommended_path_length,
    recommended_tree_fanout_bits,
    select_mechanism,
)
from repro.recovery.star import StarRecovery
from repro.recovery.tree import TreeRecovery
from repro.sim.kernel import Simulator
from repro.sim.network import Network
from repro.state.partitioner import merge_shards, partition_snapshot, partition_synthetic
from repro.state.placement import LeafSetPlacement
from repro.state.shard import Shard
from repro.state.store import StateSnapshot, StateStore
from repro.util.sizes import MB, mbit_per_s


@dataclass
class _AppPolicy:
    """Per-application mechanism overrides (Star/Line/TreeDefine)."""

    mechanism: Optional[MechanismImpl] = None


class SR3:
    """The customizable state recovery framework, end to end."""

    def __init__(self, ctx: RecoveryContext, num_replicas: int = 2) -> None:
        self.ctx = ctx
        self.overlay = ctx.overlay
        self.manager = RecoveryManager(ctx)
        self.num_replicas = num_replicas
        self._policies: Dict[str, _AppPolicy] = {}

    # -------------------------------------------------------------- creation

    @classmethod
    def create(
        cls,
        num_nodes: int = 64,
        seed: int = 0,
        uplink_mbit: Optional[float] = None,
        downlink_mbit: Optional[float] = None,
        leaf_set_size: int = 24,
        cost_model: Optional[CostModel] = None,
    ) -> "SR3":
        """Build a self-contained SR3 deployment on a fresh simulation.

        ``uplink_mbit``/``downlink_mbit`` shape every node's link (None
        means unconstrained, the paper's GbE baseline).
        """
        sim = Simulator()
        network = Network(sim)
        up = mbit_per_s(uplink_mbit) if uplink_mbit else float("inf")
        down = mbit_per_s(downlink_mbit) if downlink_mbit else float("inf")
        overlay = Overlay(
            sim, network, leaf_set_size=leaf_set_size, rng=random.Random(seed)
        )
        overlay.build(
            num_nodes,
            host_factory=lambda name: network.add_host(name, up_bw=up, down_bw=down),
        )
        ctx = RecoveryContext(sim, network, overlay, cost_model or CostModel())
        return cls(ctx)

    # ----------------------------------------------------- Table 2: StateSplit

    def state_split(
        self,
        state: Union[Dict[Any, Any], StateStore, StateSnapshot, int],
        state_name: str,
        num_shards: int,
        num_replicas: Optional[int] = None,
    ) -> List[Shard]:
        """``StateSplit``: partition a state into shards (and set replicas).

        ``state`` may be a dict, a :class:`StateStore`, a snapshot, or an
        integer byte size (synthetic state for capacity experiments).
        """
        replicas = num_replicas or self.num_replicas
        if isinstance(state, int):
            shards = partition_synthetic(
                state_name, state, num_shards,
                version=self._next_version(state_name),
            )
        else:
            if isinstance(state, dict):
                store = StateStore(state_name)
                for key, value in state.items():
                    store.put(key, value)
                snapshot = store.snapshot(self.ctx.sim.now)
            elif isinstance(state, StateStore):
                snapshot = state.snapshot(self.ctx.sim.now)
            else:
                snapshot = state
            if snapshot.name != state_name:
                raise StateError(
                    f"snapshot is named {snapshot.name!r}, expected {state_name!r}"
                )
            shards = partition_snapshot(snapshot, num_shards)
        self._pending_replicas = replicas
        return shards

    def _next_version(self, state_name: str):
        from repro.state.version import StateVersion

        registered = self.manager.states.get(state_name)
        sequence = 1
        if registered is not None and registered.shards:
            sequence = registered.shards[0].version.sequence + 1
        return StateVersion(self.ctx.sim.now, sequence)

    # ----------------------------------------------------------- Table 2: Save

    def save(
        self,
        owner: DhtNode,
        shards: List[Shard],
        num_replicas: Optional[int] = None,
        serial: bool = True,
    ) -> SaveResult:
        """``Save``: write the shard replicas into the overlay (blocking)."""
        if not shards:
            raise StateError("cannot save zero shards")
        name = shards[0].state_name
        replicas = num_replicas or getattr(self, "_pending_replicas", self.num_replicas)
        if name not in self.manager.states:
            self.manager.register(owner, shards, replicas)
        else:
            self.manager.refresh_shards(name, shards)
        handle = self.manager.save(name, serial=serial)
        self.ctx.sim.run_until_idle()
        return handle.result

    # ----------------------------------- Table 2: Star/Line/TreeDefine

    def star_define(self, app_name: str, star_fanout: int = 2) -> None:
        """``StarDefine``: pin the app to star recovery with this fan-out."""
        self._policies[app_name] = _AppPolicy(StarRecovery(fanout_bits=star_fanout))

    def line_define(self, app_name: str, length_of_path: int = 8) -> None:
        """``LineDefine``: pin the app to line recovery with this path."""
        self._policies[app_name] = _AppPolicy(LineRecovery(path_length=length_of_path))

    def tree_define(
        self, app_name: str, fanout: int = 1, branch_depth: Optional[int] = None
    ) -> None:
        """``TreeDefine``: pin the app to tree recovery with these knobs."""
        self._policies[app_name] = _AppPolicy(
            TreeRecovery(fanout_bits=fanout, branch_depth=branch_depth)
        )

    # ------------------------------------------------------ Table 2: Selection

    def selection(
        self,
        app_name: str,
        requirement: str,
        state_size: float,
        network_bw_mbit: Optional[float] = None,
    ) -> Mechanism:
        """``Selection``: run the Fig. 7 heuristic and pin the result.

        ``requirement`` is ``"latency-sensitive"`` or
        ``"latency-insensitive"``; ``network_bw_mbit`` below 1000 counts
        as a bandwidth-constrained environment.
        """
        requirement = requirement.lower()
        if requirement not in ("latency-sensitive", "latency-insensitive"):
            raise RecoveryError(
                "requirement must be 'latency-sensitive' or 'latency-insensitive'"
            )
        latency_sensitive = requirement == "latency-sensitive"
        constrained = network_bw_mbit is not None and network_bw_mbit < 1000
        choice = select_mechanism(
            SelectionInputs(
                state_bytes=state_size,
                latency_sensitive=latency_sensitive,
                bandwidth_constrained=constrained,
            )
        )
        if choice is Mechanism.STAR:
            self.star_define(app_name)
        elif choice is Mechanism.LINE:
            self.line_define(
                app_name, recommended_path_length(state_size, latency_sensitive)
            )
        elif choice is Mechanism.TREE:
            self.tree_define(
                app_name, recommended_tree_fanout_bits(state_size)
            )
        return choice

    # -------------------------------------------------------- Table 2: Recover

    def recover(
        self,
        state_name: str,
        replacement: Optional[DhtNode] = None,
        mechanism: Optional[MechanismImpl] = None,
        app_name: Optional[str] = None,
    ) -> Tuple[StateSnapshot, RecoveryResult]:
        """``Recover``: rebuild a lost state (blocking).

        Returns the reconstructed snapshot plus the timed
        :class:`RecoveryResult`. Mechanism precedence: explicit argument,
        then the app's pinned policy, then the selection heuristic.
        """
        if mechanism is None:
            policy = self._policies.get(app_name or state_name)
            if policy is not None:
                mechanism = policy.mechanism
        registered = self.manager.states.get(state_name)
        if registered is None:
            raise RecoveryError(f"unknown state {state_name!r}")
        if replacement is None and registered.owner.alive:
            replacement = registered.owner
        handle = self.manager.recover(state_name, replacement, mechanism)
        result = self.manager.run([handle])[0]
        snapshot = merge_shards(registered.plan.available_shards())
        return snapshot, result

    # ----------------------------------------------------------------- misc

    def protected_states(self) -> List[str]:
        return sorted(self.manager.states)

    def state_bytes(self, state_name: str) -> float:
        registered = self.manager.states.get(state_name)
        if registered is None:
            raise RecoveryError(f"unknown state {state_name!r}")
        return registered.state_bytes
