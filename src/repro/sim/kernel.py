"""Discrete-event simulation kernel.

A minimal, deterministic event loop: events are (time, sequence) ordered,
callbacks run with the virtual clock already advanced to their firing time.
Everything in the reproduction that needs time — network transfers, merge
CPU costs, DHT maintenance pings, failure injection — is scheduled here, so
experiment latencies are exact simulated seconds rather than noisy wall
time.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, List, Optional

from repro.errors import SimulationError
from repro.obs.registry import MetricsRegistry, default_registry
from repro.obs.tracer import default_tracer


class Event:
    """A scheduled callback. Cancel via :meth:`Simulator.cancel`."""

    __slots__ = ("time", "seq", "callback", "args", "cancelled")

    def __init__(self, time: float, seq: int, callback: Callable[..., None], args: tuple) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:
        name = getattr(self.callback, "__name__", repr(self.callback))
        return f"Event(t={self.time:.6f}, {name}, cancelled={self.cancelled})"


class Simulator:
    """The virtual clock and event queue.

    Determinism: ties in firing time break by scheduling order, and the
    kernel itself never consults wall-clock time or global randomness.
    """

    def __init__(self, tracer=None, metrics: Optional[MetricsRegistry] = None) -> None:
        self._now = 0.0
        self._queue: List[Event] = []
        self._seq = itertools.count()
        self._running = False
        self._processed = 0
        # Observability: the tracer defaults to the process-wide setting
        # (a no-op unless tracing was enabled), the metrics registry is
        # always real — counters are cheap and every layer shares this one.
        self.tracer = tracer if tracer is not None else default_tracer()
        self.tracer.bind_clock(lambda: self._now)
        self.metrics = metrics if metrics is not None else default_registry("sim")
        # Opt-in firehose: emit one instant trace event per executed
        # callback. Off by default even with tracing on — event volume
        # dwarfs the spans the components themselves emit.
        self.trace_events = False

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Total callbacks executed so far (for overhead accounting)."""
        return self._processed

    @property
    def pending(self) -> int:
        """Number of live (non-cancelled) events still queued."""
        return sum(1 for e in self._queue if not e.cancelled)

    def schedule(self, delay: float, callback: Callable[..., None], *args: Any) -> Event:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        event = Event(self._now + delay, next(self._seq), callback, args)
        heapq.heappush(self._queue, event)
        return event

    def schedule_at(self, time: float, callback: Callable[..., None], *args: Any) -> Event:
        """Schedule ``callback(*args)`` at absolute virtual time ``time``."""
        return self.schedule(time - self._now, callback, *args)

    def cancel(self, event: Optional[Event]) -> None:
        """Cancel a pending event; cancelling None or twice is harmless."""
        if event is not None:
            event.cancelled = True

    def run(self, until: Optional[float] = None, max_events: int = 10_000_000) -> float:
        """Run events in order until the queue drains or ``until`` is reached.

        Returns the virtual time at which the loop stopped. ``max_events``
        guards against accidental infinite self-rescheduling loops.
        """
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        trace_events = self.trace_events and self.tracer.enabled
        try:
            executed = 0
            while self._queue:
                event = self._queue[0]
                if event.cancelled:
                    heapq.heappop(self._queue)
                    continue
                if until is not None and event.time > until:
                    self._now = until
                    break
                heapq.heappop(self._queue)
                if event.time < self._now - 1e-9:
                    raise SimulationError(
                        f"event queue corrupted: event at {event.time} < now {self._now}"
                    )
                self._now = max(self._now, event.time)
                if trace_events:
                    self.tracer.instant(
                        getattr(event.callback, "__name__", "callback"),
                        category="sim.event",
                    )
                event.callback(*event.args)
                self._processed += 1
                executed += 1
                if executed >= max_events:
                    raise SimulationError(f"exceeded max_events={max_events}; likely a loop")
            else:
                if until is not None and until > self._now:
                    self._now = until
        finally:
            self._running = False
            self.metrics.gauge("sim.events_processed").set(self._processed)
            self.metrics.gauge("sim.pending_events").set(self.pending)
        return self._now

    def run_until_idle(self, max_events: int = 10_000_000) -> float:
        """Drain every pending event; returns final virtual time."""
        return self.run(until=None, max_events=max_events)
