"""Discrete-event simulation kernel.

A minimal, deterministic event loop: events are (time, sequence) ordered,
callbacks run with the virtual clock already advanced to their firing time.
Everything in the reproduction that needs time — network transfers, merge
CPU costs, DHT maintenance pings, failure injection — is scheduled here, so
experiment latencies are exact simulated seconds rather than noisy wall
time.

Scale fast paths (all exactly order-preserving):

* ``pending`` is a live counter maintained on schedule/cancel/pop instead
  of an O(queue) scan — it sits on the ``run()`` epilogue and telemetry.
* Zero-delay events (the network's coalesced "settle" events, completion
  ticks of unconstrained flows) go to a FIFO batch instead of the heap.
  Because the clock is monotonic and sequence numbers only grow, the batch
  is always (time, seq)-sorted, so merging it with the heap head preserves
  the exact global event order while skipping two O(log n) heap moves per
  event.
* Cancelled events (the network cancels its completion timer on every
  reallocation) are compacted out lazily once they outnumber live ones,
  keeping heap pops O(log live) instead of O(log lifetime).
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from typing import Any, Callable, List, Optional

from repro.errors import SimulationError
from repro.obs.registry import MetricsRegistry, default_registry
from repro.obs.tracer import default_tracer

# Compact the queues once cancelled events outnumber live ones and there is
# enough garbage for the O(n) sweep to pay for itself.
_COMPACT_MIN_CANCELLED = 64


class Event:
    """A scheduled callback. Cancel via :meth:`Simulator.cancel`."""

    __slots__ = ("time", "seq", "callback", "args", "cancelled", "done")

    def __init__(self, time: float, seq: int, callback: Callable[..., None], args: tuple) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        # Set once the event leaves the queue (executed or swept); a cancel
        # arriving after that must not touch the live-event counter.
        self.done = False

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:
        name = getattr(self.callback, "__name__", repr(self.callback))
        return f"Event(t={self.time:.6f}, {name}, cancelled={self.cancelled})"


class Simulator:
    """The virtual clock and event queue.

    Determinism: ties in firing time break by scheduling order, and the
    kernel itself never consults wall-clock time or global randomness.
    """

    def __init__(self, tracer=None, metrics: Optional[MetricsRegistry] = None) -> None:
        self._now = 0.0
        self._queue: List[Event] = []
        self._batch: deque = deque()  # zero-delay events, (time, seq)-sorted
        self._seq = itertools.count()
        self._running = False
        self._processed = 0
        self._live = 0  # non-cancelled events still queued (O(1) `pending`)
        self._cancelled_queued = 0  # cancelled events not yet swept out
        # Observability: the tracer defaults to the process-wide setting
        # (a no-op unless tracing was enabled), the metrics registry is
        # always real — counters are cheap and every layer shares this one.
        self.tracer = tracer if tracer is not None else default_tracer()
        self.tracer.bind_clock(lambda: self._now)
        self.metrics = metrics if metrics is not None else default_registry("sim")
        self.metrics.bind_clock(lambda: self._now)
        # Opt-in firehose: emit one instant trace event per executed
        # callback. Off by default even with tracing on — event volume
        # dwarfs the spans the components themselves emit.
        self.trace_events = False

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Total callbacks executed so far (for overhead accounting)."""
        return self._processed

    @property
    def pending(self) -> int:
        """Number of live (non-cancelled) events still queued."""
        return self._live

    def schedule(self, delay: float, callback: Callable[..., None], *args: Any) -> Event:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        event = Event(self._now + delay, next(self._seq), callback, args)
        self._live += 1
        if delay == 0.0:
            # Same-instant events land behind every queued event at this
            # time (their seq is the largest so far), so a FIFO preserves
            # the (time, seq) order without heap churn.
            self._batch.append(event)
        else:
            heapq.heappush(self._queue, event)
        return event

    def schedule_at(self, time: float, callback: Callable[..., None], *args: Any) -> Event:
        """Schedule ``callback(*args)`` at absolute virtual time ``time``."""
        return self.schedule(time - self._now, callback, *args)

    def cancel(self, event: Optional[Event]) -> None:
        """Cancel a pending event; cancelling None or twice is harmless."""
        if event is None or event.cancelled or event.done:
            return
        event.cancelled = True
        self._live -= 1
        self._cancelled_queued += 1
        if (
            self._cancelled_queued > _COMPACT_MIN_CANCELLED
            and self._cancelled_queued * 2 > len(self._queue) + len(self._batch)
        ):
            self._compact()

    def _compact(self) -> None:
        """Sweep cancelled events out of both queues (order-preserving)."""
        for event in self._queue:
            if event.cancelled:
                event.done = True
        for event in self._batch:
            if event.cancelled:
                event.done = True
        self._queue = [e for e in self._queue if not e.cancelled]
        heapq.heapify(self._queue)
        self._batch = deque(e for e in self._batch if not e.cancelled)
        self._cancelled_queued = 0

    def _pop_next(self) -> Optional[Event]:
        """Remove and return the earliest queued event, skipping cancelled.

        Returns None when both queues are drained. The zero-delay batch is
        FIFO and the heap is (time, seq)-ordered; comparing their heads
        yields the globally earliest event.
        """
        queue = self._queue
        batch = self._batch
        while queue or batch:
            if batch and (not queue or batch[0] < queue[0]):
                event = batch.popleft()
            else:
                event = heapq.heappop(queue)
            if event.cancelled:
                self._cancelled_queued -= 1
                event.done = True
                continue
            return event
        return None

    def _peek_next(self) -> Optional[Event]:
        """The earliest live queued event without removing it."""
        queue = self._queue
        batch = self._batch
        while queue and queue[0].cancelled:
            self._cancelled_queued -= 1
            heapq.heappop(queue).done = True
        while batch and batch[0].cancelled:
            self._cancelled_queued -= 1
            batch.popleft().done = True
        if batch and (not queue or batch[0] < queue[0]):
            return batch[0]
        if queue:
            return queue[0]
        return None

    def run(self, until: Optional[float] = None, max_events: int = 10_000_000) -> float:
        """Run events in order until the queue drains or ``until`` is reached.

        Returns the virtual time at which the loop stopped. ``max_events``
        guards against accidental infinite self-rescheduling loops.
        """
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        trace_events = self.trace_events and self.tracer.enabled
        try:
            executed = 0
            while True:
                event = self._peek_next()
                if event is None:
                    if until is not None and until > self._now:
                        self._now = until
                    break
                if until is not None and event.time > until:
                    self._now = until
                    break
                self._pop_next()
                if event.time < self._now - 1e-9:
                    raise SimulationError(
                        f"event queue corrupted: event at {event.time} < now {self._now}"
                    )
                event.done = True
                self._live -= 1
                self._now = max(self._now, event.time)
                if trace_events:
                    self.tracer.instant(
                        getattr(event.callback, "__name__", "callback"),
                        category="sim.event",
                    )
                event.callback(*event.args)
                self._processed += 1
                executed += 1
                if executed >= max_events:
                    raise SimulationError(f"exceeded max_events={max_events}; likely a loop")
        finally:
            self._running = False
            self.metrics.gauge("sim.events_processed").set(self._processed)
            self.metrics.gauge("sim.pending_events").set(self.pending)
        return self._now

    def run_until_idle(self, max_events: int = 10_000_000) -> float:
        """Drain every pending event; returns final virtual time."""
        return self.run(until=None, max_events=max_events)
