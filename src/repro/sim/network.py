"""Flow-level network model with max-min fair bandwidth sharing.

Every host has independent upload and download capacities (bytes/second),
mirroring the bandwidth asymmetry of cloud environments that the paper's
tree-structured mechanism is designed around (Sec. 3.6). A bulk transfer is
a *flow*; at any instant each flow receives its max-min fair share of the
source's upload capacity and the destination's download capacity, computed
by progressive water-filling and recomputed whenever a flow starts or
finishes.

Small control messages (DHT maintenance pings, routing messages) bypass the
flow machinery through :meth:`Network.send_control`: they are charged to
byte counters and delivered after one propagation latency, which is how the
paper measures the pure maintenance overhead of Fig. 12c.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Optional, Set

from repro.errors import NetworkError
from repro.obs.tracer import NULL_SPAN
from repro.sim.kernel import Event, Simulator

_EPSILON_BYTES = 1e-6


class Host:
    """A simulated machine with asymmetric network capacity.

    ``up_bw``/``down_bw`` are in bytes per second; ``math.inf`` means the
    direction is unconstrained (the paper's "no bandwidth constraint"
    configuration of Fig. 8a).
    """

    def __init__(
        self,
        name: str,
        up_bw: float = math.inf,
        down_bw: float = math.inf,
        latency: float = 0.0005,
    ) -> None:
        if up_bw <= 0 or down_bw <= 0:
            raise NetworkError(f"host {name}: bandwidth must be positive")
        if latency < 0:
            raise NetworkError(f"host {name}: latency must be non-negative")
        self.name = name
        self.up_bw = up_bw
        self.down_bw = down_bw
        self.latency = latency
        self.alive = True
        self.bytes_sent = 0.0
        self.bytes_received = 0.0
        self.control_bytes_sent = 0.0
        self.control_bytes_received = 0.0
        self.active_out: Set["Flow"] = set()
        self.active_in: Set["Flow"] = set()

    def __repr__(self) -> str:
        return f"Host({self.name})"


class Flow:
    """One bulk transfer in flight between two hosts."""

    __slots__ = (
        "seq",
        "src",
        "dst",
        "size",
        "remaining",
        "rate",
        "on_complete",
        "on_abort",
        "tag",
        "started_at",
        "admitted_at",
        "completed_at",
        "aborted",
        "span",
        "_last_update",
    )

    def __init__(
        self,
        src: Host,
        dst: Host,
        size: float,
        on_complete: Optional[Callable[["Flow"], None]],
        on_abort: Optional[Callable[["Flow"], None]],
        tag: Optional[str],
        started_at: float,
        seq: int = 0,
    ) -> None:
        # Admission order within the network. Flows live in identity-hashed
        # sets; every place where iteration order can leak into float
        # accumulation or callback order sorts by this instead.
        self.seq = seq
        self.src = src
        self.dst = dst
        self.size = size
        self.remaining = float(size)
        self.rate = 0.0
        self.on_complete = on_complete
        self.on_abort = on_abort
        self.tag = tag
        self.started_at = started_at
        self.admitted_at: Optional[float] = None
        self.completed_at: Optional[float] = None
        self.aborted = False
        self.span = NULL_SPAN
        self._last_update = started_at

    @property
    def done(self) -> bool:
        return self.completed_at is not None

    def __repr__(self) -> str:
        return (
            f"Flow({self.src.name}->{self.dst.name}, {self.size:.0f}B, "
            f"remaining={self.remaining:.0f}B, rate={self.rate:.0f}B/s)"
        )


class Network:
    """The shared network connecting all hosts of one simulation."""

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self.hosts: Dict[str, Host] = {}
        self._flows: Set[Flow] = set()
        self._completion_event: Optional[Event] = None
        self.total_bytes = 0.0
        self.total_control_bytes = 0.0
        self.completed_flows = 0
        self.started_flows = 0
        # A partition is one side of a network cut: hosts whose names are in
        # the set cannot exchange traffic with hosts outside it (and vice
        # versa) until the partition heals.
        self._partition: Optional[frozenset] = None
        # Cached registry handles: these sit on per-byte/per-flow paths.
        self._flow_bytes_counter = sim.metrics.counter("net.flow_bytes")
        self._control_bytes_counter = sim.metrics.counter("net.control_bytes")
        self._flows_started_counter = sim.metrics.counter("net.flows_started")
        self._flows_completed_counter = sim.metrics.counter("net.flows_completed")
        self._flows_aborted_counter = sim.metrics.counter("net.flows_aborted")
        self._control_dropped_counter = sim.metrics.counter("net.control_dropped")
        # Telemetry timelines: the per-link evidence behind blame
        # attribution. Every max-min reallocation appends one point per
        # involved host to its utilization/flow-count series, so the
        # profiler can answer "was the bottleneck the provider's uplink or
        # the replacement's downlink" post hoc.
        self._flows_active_series = sim.metrics.series("net.flows_active")
        self._queue_wait_hist = sim.metrics.histogram("net.flow_queue_wait")
        self._flow_stall_hist = sim.metrics.histogram("net.flow_stall_s")
        # Hosts whose allocation may just have dropped (flow removed or
        # bandwidth changed) and must record a fresh sample even if they
        # no longer carry any flow.
        self._telemetry_dirty: Set[Host] = set()

    def in_flight_flows(self) -> int:
        """Number of admitted flows still moving bytes (audit hook)."""
        return len(self._flows)

    # ------------------------------------------------------------------ hosts

    def add_host(
        self,
        name: str,
        up_bw: float = math.inf,
        down_bw: float = math.inf,
        latency: float = 0.0005,
    ) -> Host:
        """Register a host; names must be unique within the network."""
        if name in self.hosts:
            raise NetworkError(f"duplicate host name: {name}")
        host = Host(name, up_bw=up_bw, down_bw=down_bw, latency=latency)
        self.hosts[name] = host
        return host

    def fail_host(self, host: Host) -> None:
        """Crash a host: all flows touching it abort immediately."""
        host.alive = False
        victims = self._ordered(
            f for f in self._flows if f.src is host or f.dst is host
        )
        self._settle_progress()
        for flow in victims:
            self._remove_flow(flow)
            flow.aborted = True
            self._trace_abort(flow, reason="host_failed")
            if flow.on_abort is not None:
                flow.on_abort(flow)
        self._recompute_rates()

    def recover_host(self, host: Host) -> None:
        """Bring a crashed host back (replacement node taking its place)."""
        host.alive = True

    # ------------------------------------------------------- partitions & bw

    @property
    def partitioned(self) -> bool:
        return self._partition is not None

    def reachable(self, src: Host, dst: Host) -> bool:
        """Whether traffic can currently pass between two hosts."""
        if not src.alive or not dst.alive:
            return False
        if self._partition is None:
            return True
        return (src.name in self._partition) == (dst.name in self._partition)

    def partition(self, group) -> None:
        """Cut the network between ``group`` and everything else.

        In-flight flows crossing the cut abort immediately (their TCP
        connections stall and time out); control messages across the cut
        are dropped until :meth:`heal_partition`. Partitions replace each
        other — only one cut is active at a time, which is the classic
        two-sided split the chaos scenarios model.
        """
        names = frozenset(h.name if isinstance(h, Host) else str(h) for h in group)
        unknown = [n for n in names if n not in self.hosts]
        if unknown:
            raise NetworkError(f"cannot partition unknown hosts: {sorted(unknown)}")
        self._partition = names
        victims = self._ordered(
            f for f in self._flows if not self.reachable(f.src, f.dst)
        )
        self._settle_progress()
        for flow in victims:
            self._remove_flow(flow)
            flow.aborted = True
            self._trace_abort(flow, reason="partitioned")
            if flow.on_abort is not None:
                flow.on_abort(flow)
        self._recompute_rates()
        self.sim.tracer.instant(
            "network partitioned", category="net.partition", hosts=len(names)
        )
        self.sim.metrics.counter("net.partitions").add(1)

    def heal_partition(self) -> None:
        """Remove the active partition; healing twice is harmless."""
        if self._partition is None:
            return
        self._partition = None
        self.sim.tracer.instant("network healed", category="net.partition")
        self.sim.metrics.counter("net.heals").add(1)

    def set_host_bandwidth(self, host: Host, up_bw: float, down_bw: float) -> None:
        """Change a host's link capacity mid-run (degradation, flapping).

        Settles every flow's progress at the old rates first, then
        re-runs the max-min allocation so active transfers immediately
        see the new capacity.
        """
        if up_bw <= 0 or down_bw <= 0:
            raise NetworkError(f"host {host.name}: bandwidth must be positive")
        self._settle_progress()
        host.up_bw = up_bw
        host.down_bw = down_bw
        self._recompute_rates()

    # ------------------------------------------------------------------ flows

    def transfer(
        self,
        src: Host,
        dst: Host,
        nbytes: float,
        on_complete: Optional[Callable[[Flow], None]] = None,
        on_abort: Optional[Callable[[Flow], None]] = None,
        tag: Optional[str] = None,
        parent_span=None,
    ) -> Flow:
        """Start a bulk transfer of ``nbytes`` from ``src`` to ``dst``.

        The flow is admitted after one propagation latency and then shares
        bandwidth fairly with every concurrent flow. ``on_complete`` fires
        with the flow once the last byte arrives. ``parent_span`` nests the
        flow's trace span under the operation that started it.
        """
        if not src.alive or not dst.alive:
            raise NetworkError(f"transfer between dead hosts: {src.name}->{dst.name}")
        if nbytes < 0:
            raise NetworkError("transfer size must be non-negative")
        flow = Flow(
            src, dst, nbytes, on_complete, on_abort, tag, self.sim.now,
            seq=self.started_flows,
        )
        self.started_flows += 1
        self._flows_started_counter.add(1)
        flow.span = self.sim.tracer.start(
            f"flow {src.name}->{dst.name}",
            category="net.flow",
            parent=parent_span,
            bytes=float(nbytes),
            src=src.name,
            dst=dst.name,
            **({"tag": tag} if tag else {}),
        )
        propagation = src.latency + dst.latency
        self.sim.schedule(propagation, self._admit, flow)
        return flow

    def _admit(self, flow: Flow) -> None:
        if flow.aborted or not self.reachable(flow.src, flow.dst):
            alive = flow.src.alive and flow.dst.alive
            flow.aborted = True
            self._trace_abort(flow, reason="partitioned" if alive else "dead_endpoint")
            if flow.on_abort is not None:
                flow.on_abort(flow)
            return
        self._settle_progress()
        flow.admitted_at = self.sim.now
        flow._last_update = self.sim.now
        self._queue_wait_hist.observe(self.sim.now - flow.started_at)
        if flow.remaining <= _EPSILON_BYTES:
            self._finish_flow(flow)
            return
        self._flows.add(flow)
        flow.src.active_out.add(flow)
        flow.dst.active_in.add(flow)
        self._recompute_rates()

    def abort_flow(self, flow: Flow) -> None:
        """Cancel an in-flight (or not yet admitted) transfer."""
        if flow.done or flow.aborted:
            return
        self._settle_progress()
        if flow in self._flows:
            self._remove_flow(flow)
        flow.aborted = True
        self._trace_abort(flow, reason="cancelled")
        if flow.on_abort is not None:
            flow.on_abort(flow)
        self._recompute_rates()

    # ------------------------------------------------------------ control msgs

    def send_control(
        self,
        src: Host,
        dst: Host,
        nbytes: float,
        on_delivery: Optional[Callable[[], None]] = None,
    ) -> None:
        """Deliver a small control message after one propagation latency.

        Control traffic is excluded from bandwidth sharing (it is tiny) but
        fully accounted in the per-host and global control-byte counters
        used to reproduce the maintenance-overhead experiment (Fig. 12c).
        """
        if nbytes < 0:
            raise NetworkError("control message size must be non-negative")
        src.control_bytes_sent += nbytes
        dst.control_bytes_received += nbytes
        self.total_control_bytes += nbytes
        self._control_bytes_counter.add(nbytes)
        if self._partition is not None and not self.reachable(src, dst):
            # Dropped at the cut: the sender already paid the bytes.
            self._control_dropped_counter.add(1)
            return
        if on_delivery is not None:
            if not dst.alive:
                return
            self.sim.schedule(src.latency + dst.latency, lambda: on_delivery())

    # ---------------------------------------------------------------- internal

    @staticmethod
    def _ordered(flows) -> List[Flow]:
        """Flows in admission order — the deterministic iteration order."""
        return sorted(flows, key=lambda f: f.seq)

    def _settle_progress(self) -> None:
        """Advance every flow's remaining-byte count to the current instant."""
        now = self.sim.now
        for flow in self._ordered(self._flows):
            elapsed = now - flow._last_update
            if math.isinf(flow.rate):
                # Unconstrained path: the transfer completes instantly.
                moved = flow.remaining
            elif elapsed > 0 and flow.rate > 0:
                moved = min(flow.remaining, flow.rate * elapsed)
            else:
                moved = 0.0
            if moved > 0:
                flow.remaining -= moved
                flow.src.bytes_sent += moved
                flow.dst.bytes_received += moved
                self.total_bytes += moved
                self._flow_bytes_counter.add(moved)
            flow._last_update = now

    def _remove_flow(self, flow: Flow) -> None:
        self._flows.discard(flow)
        flow.src.active_out.discard(flow)
        flow.dst.active_in.discard(flow)
        # Their utilization may have just dropped to zero; make sure the
        # next telemetry sample closes out their timelines.
        self._telemetry_dirty.add(flow.src)
        self._telemetry_dirty.add(flow.dst)

    def _finish_flow(self, flow: Flow) -> None:
        flow.completed_at = self.sim.now
        flow.remaining = 0.0
        self.completed_flows += 1
        self._flows_completed_counter.add(1)
        if flow.admitted_at is not None:
            # Stall = time lost to bandwidth sharing: actual transfer time
            # minus what the flow's own bottleneck link would have taken.
            bottleneck = min(flow.src.up_bw, flow.dst.down_bw)
            ideal = 0.0 if math.isinf(bottleneck) else flow.size / bottleneck
            stall = (flow.completed_at - flow.admitted_at) - ideal
            self._flow_stall_hist.observe(max(0.0, stall))
        flow.span.finish()
        if flow.on_complete is not None:
            flow.on_complete(flow)

    def _trace_abort(self, flow: Flow, reason: str) -> None:
        self._flows_aborted_counter.add(1)
        flow.span.finish(aborted=True, reason=reason)

    def _recompute_rates(self) -> None:
        """Max-min fair allocation by progressive water-filling."""
        if self._completion_event is not None:
            self.sim.cancel(self._completion_event)
            self._completion_event = None
        if not self._flows:
            self._record_telemetry()
            return

        ordered_flows = self._ordered(self._flows)
        residual: Dict[tuple, float] = {}
        members: Dict[tuple, List[Flow]] = {}
        for flow in ordered_flows:
            up_key = ("up", flow.src.name)
            down_key = ("down", flow.dst.name)
            residual.setdefault(up_key, flow.src.up_bw)
            residual.setdefault(down_key, flow.dst.down_bw)
            members.setdefault(up_key, []).append(flow)
            members.setdefault(down_key, []).append(flow)

        unfixed = set(self._flows)
        rates: Dict[Flow, float] = {}
        while unfixed:
            bottleneck_share = math.inf
            for key, cap in residual.items():
                active = [f for f in members[key] if f in unfixed]
                if not active:
                    continue
                share = cap / len(active)
                if share < bottleneck_share:
                    bottleneck_share = share
            if math.isinf(bottleneck_share):
                for flow in unfixed:
                    rates[flow] = math.inf
                break
            newly_fixed = set()
            for key, cap in list(residual.items()):
                active = [f for f in members[key] if f in unfixed]
                if active and cap / len(active) <= bottleneck_share * (1 + 1e-12):
                    newly_fixed.update(active)
            if not newly_fixed:
                raise NetworkError("water-filling failed to make progress")
            # Subtract in admission order: residual capacities accumulate
            # float error, and a set-order walk would make the ulps depend
            # on object addresses rather than on the seed.
            for flow in self._ordered(newly_fixed):
                rates[flow] = bottleneck_share
                unfixed.discard(flow)
                residual[("up", flow.src.name)] -= bottleneck_share
                residual[("down", flow.dst.name)] -= bottleneck_share
            for key in residual:
                residual[key] = max(0.0, residual[key])

        next_completion = math.inf
        for flow in ordered_flows:
            flow.rate = rates.get(flow, 0.0)
            if flow.rate > 0:
                if math.isinf(flow.rate):
                    finish = self.sim.now
                else:
                    finish = self.sim.now + flow.remaining / flow.rate
                next_completion = min(next_completion, finish)
        if not math.isinf(next_completion):
            delay = max(0.0, next_completion - self.sim.now)
            self._completion_event = self.sim.schedule(delay, self._on_completion_tick)
        self._record_telemetry()

    @staticmethod
    def _direction_utilization(flows: Set[Flow], capacity: float) -> float:
        if not flows or math.isinf(capacity):
            return 0.0
        # fsum over sorted rates: exactly rounded and independent of set
        # iteration order, so same-seed runs serialize identical timelines.
        used = math.fsum(sorted(f.rate for f in flows if not math.isinf(f.rate)))
        return min(1.0, used / capacity)

    def _record_telemetry(self) -> None:
        """Sample per-host link utilization and flow counts after a reallocation."""
        now = self.sim.now
        self._flows_active_series.record(now, float(len(self._flows)))
        involved = {f.src for f in self._flows} | {f.dst for f in self._flows}
        involved |= self._telemetry_dirty
        self._telemetry_dirty.clear()
        series = self.sim.metrics.series
        for host in sorted(involved, key=lambda h: h.name):
            series(f"net.host.{host.name}.up_util").record(
                now, self._direction_utilization(host.active_out, host.up_bw)
            )
            series(f"net.host.{host.name}.down_util").record(
                now, self._direction_utilization(host.active_in, host.down_bw)
            )
            series(f"net.host.{host.name}.flows").record(
                now, float(len(host.active_out) + len(host.active_in))
            )

    def _on_completion_tick(self) -> None:
        self._completion_event = None
        self._settle_progress()
        finished = self._ordered(
            f for f in self._flows if f.remaining <= _EPSILON_BYTES
        )
        for flow in finished:
            self._remove_flow(flow)
        for flow in finished:
            self._finish_flow(flow)
        self._recompute_rates()


class RemoteStorage(Host):
    """A remote checkpoint store (HDFS/GFS/KV-store stand-in).

    Beyond link bandwidth, every read or write pays a fixed per-request
    overhead, modelling the two-orders-of-magnitude gap between in-memory
    message rates and remote key-value request rates cited in Sec. 2.1.
    """

    def __init__(
        self,
        name: str,
        up_bw: float,
        down_bw: float,
        request_overhead: float = 0.05,
        latency: float = 0.005,
    ) -> None:
        super().__init__(name, up_bw=up_bw, down_bw=down_bw, latency=latency)
        if request_overhead < 0:
            raise NetworkError("request_overhead must be non-negative")
        self.request_overhead = request_overhead
        self.requests_served = 0

    def charge_request(self) -> float:
        """Account one request; returns the overhead to add to its latency."""
        self.requests_served += 1
        return self.request_overhead
