"""Flow-level network model with max-min fair bandwidth sharing.

Every host has independent upload and download capacities (bytes/second),
mirroring the bandwidth asymmetry of cloud environments that the paper's
tree-structured mechanism is designed around (Sec. 3.6). A bulk transfer is
a *flow*; at any instant each flow receives its max-min fair share of the
source's upload capacity and the destination's download capacity, computed
by progressive water-filling and recomputed whenever a flow starts or
finishes.

Paper-scale fast paths (none may change a simulated result):

* **Incremental allocation.** The link-constraint graph — one ``("up",
  host)`` / ``("down", host)`` key per used direction — is maintained
  persistently. A flow admission/removal or bandwidth change only dirties
  its own links, and water-filling re-runs over the affected connected
  component; flows in untouched components keep their rates, which is
  bit-identical because each component's allocation is an independent
  subproblem. ``network.allocator = "global"`` is the escape hatch that
  forces the full solve every time (the equivalence tests run both and
  compare serialized output).
* **Event coalescing.** Mutations don't reallocate inline; they settle
  byte progress and schedule one zero-delay *settle event*, so N
  same-instant admissions/aborts trigger one recompute instead of N.
  Elapsed time between same-instant recomputes is zero, so no bytes can
  move differently — completion instants are preserved.
* **Cached admission order.** The live flow list is kept sorted by
  admission sequence (insert by bisection, not re-sorted per event); all
  float accumulation walks it in that fixed order.

Application traffic (the live-harness ingest/shuffle load) enters the same
allocator as *app flows* — infinite-size, never-completing flows capped at
a ``demand`` rate (:meth:`Network.open_app_flow`). Demand caps participate
in the progressive filling: a flow whose offered load sits below the
current fair share saturates at its demand and returns the remainder to
the pool (standard bounded-demand max-min). When no app flow exists the
demand branch never executes, so quiescent allocations remain
byte-identical to the historical solver.

Small control messages (DHT maintenance pings, routing messages) bypass the
flow machinery through :meth:`Network.send_control`: they are charged to
byte counters and delivered after one propagation latency, which is how the
paper measures the pure maintenance overhead of Fig. 12c.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.errors import NetworkError
from repro.obs.tracer import NULL_SPAN
from repro.sim import flowvec
from repro.sim.kernel import Event, Simulator

_EPSILON_BYTES = 1e-6

# A link-constraint key: ("up", host_name) or ("down", host_name).
_LinkKey = Tuple[str, str]


class Host:
    """A simulated machine with asymmetric network capacity.

    ``up_bw``/``down_bw`` are in bytes per second; ``math.inf`` means the
    direction is unconstrained (the paper's "no bandwidth constraint"
    configuration of Fig. 8a).
    """

    def __init__(
        self,
        name: str,
        up_bw: float = math.inf,
        down_bw: float = math.inf,
        latency: float = 0.0005,
    ) -> None:
        if up_bw <= 0 or down_bw <= 0:
            raise NetworkError(f"host {name}: bandwidth must be positive")
        if latency < 0:
            raise NetworkError(f"host {name}: latency must be non-negative")
        self.name = name
        self.up_bw = up_bw
        self.down_bw = down_bw
        # Provisioned capacity, frozen at construction. Runtime degradation
        # moves up_bw/down_bw; the nominal values are the yardstick that
        # tells a degraded link from a merely small one.
        self.nominal_up_bw = up_bw
        self.nominal_down_bw = down_bw
        self.latency = latency
        self.alive = True
        self._bytes_sent = 0.0
        self._bytes_received = 0.0
        # While the network runs in vectorized mode this points at
        # (FlowTable, slot): the table's arrays are then authoritative
        # for this host's flow-byte counters, and the properties below
        # read/write through so external accounting (tests, checkpoint
        # stores) stays transparent in either mode.
        self._flowvec = None
        self.control_bytes_sent = 0.0
        self.control_bytes_received = 0.0
        self.active_out: Set["Flow"] = set()
        self.active_in: Set["Flow"] = set()

    @property
    def bytes_sent(self) -> float:
        ref = self._flowvec
        if ref is not None:
            table, slot = ref
            return float(table.h_sent[slot])
        return self._bytes_sent

    @bytes_sent.setter
    def bytes_sent(self, value: float) -> None:
        ref = self._flowvec
        if ref is not None:
            table, slot = ref
            table.h_sent[slot] = value
        else:
            self._bytes_sent = value

    @property
    def bytes_received(self) -> float:
        ref = self._flowvec
        if ref is not None:
            table, slot = ref
            return float(table.h_recv[slot])
        return self._bytes_received

    @bytes_received.setter
    def bytes_received(self, value: float) -> None:
        ref = self._flowvec
        if ref is not None:
            table, slot = ref
            table.h_recv[slot] = value
        else:
            self._bytes_received = value

    def bw_fraction(self) -> float:
        """Current capacity as a fraction of nominal (the worse direction).

        An unconstrained direction that is still unconstrained counts as
        1.0; one that has been throttled to a finite rate counts as 0.0 —
        any finite number is negligible next to ``inf``.
        """

        def _ratio(current: float, nominal: float) -> float:
            if math.isinf(nominal):
                return 1.0 if math.isinf(current) else 0.0
            return min(current / nominal, 1.0)

        return min(
            _ratio(self.up_bw, self.nominal_up_bw),
            _ratio(self.down_bw, self.nominal_down_bw),
        )

    def __repr__(self) -> str:
        return f"Host({self.name})"


class Flow:
    """One bulk transfer in flight between two hosts."""

    __slots__ = (
        "seq",
        "src",
        "dst",
        "size",
        "remaining",
        "rate",
        "demand",
        "app",
        "on_complete",
        "on_abort",
        "tag",
        "started_at",
        "admitted_at",
        "completed_at",
        "aborted",
        "span",
        "_last_update",
    )

    def __init__(
        self,
        src: Host,
        dst: Host,
        size: float,
        on_complete: Optional[Callable[["Flow"], None]],
        on_abort: Optional[Callable[["Flow"], None]],
        tag: Optional[str],
        started_at: float,
        seq: int = 0,
        demand: float = math.inf,
        app: bool = False,
    ) -> None:
        # Admission order within the network. Flows live in identity-hashed
        # sets; every place where iteration order can leak into float
        # accumulation or callback order sorts by this instead.
        self.seq = seq
        self.src = src
        self.dst = dst
        self.size = size
        self.remaining = float(size)
        self.rate = 0.0
        # Offered load ceiling: max-min never allocates more than this.
        # Bulk transfers are elastic (demand = inf, the historical
        # behaviour); application ingest/shuffle flows carry the workload's
        # current event rate as a finite demand.
        self.demand = demand
        # Long-running application traffic: infinite size, never completes,
        # exists to contend with recovery/save transfers for link shares.
        self.app = app
        self.on_complete = on_complete
        self.on_abort = on_abort
        self.tag = tag
        self.started_at = started_at
        self.admitted_at: Optional[float] = None
        self.completed_at: Optional[float] = None
        self.aborted = False
        self.span = NULL_SPAN
        self._last_update = started_at

    @property
    def done(self) -> bool:
        return self.completed_at is not None

    def __repr__(self) -> str:
        return (
            f"Flow({self.src.name}->{self.dst.name}, {self.size:.0f}B, "
            f"remaining={self.remaining:.0f}B, rate={self.rate:.0f}B/s)"
        )


class Network:
    """The shared network connecting all hosts of one simulation."""

    def __init__(self, sim: Simulator, allocator: str = "incremental") -> None:
        if allocator not in ("incremental", "global"):
            raise NetworkError(f"unknown allocator: {allocator!r}")
        self.sim = sim
        # "incremental" re-solves only the dirty connected component;
        # "global" is the escape hatch that re-runs the full water-filling
        # on every reallocation (used by the equivalence tests).
        self.allocator = allocator
        self.hosts: Dict[str, Host] = {}
        self._flows: Set[Flow] = set()
        # Live flows sorted by admission sequence — the deterministic
        # iteration order for every float accumulation. Maintained by
        # bisection insert / remove instead of sorting per event.
        self._order_cache: List[Flow] = []
        self._completion_event: Optional[Event] = None
        self.total_bytes = 0.0
        self.total_control_bytes = 0.0
        self.completed_flows = 0
        self.started_flows = 0
        # A partition is one side of a network cut: hosts whose names are in
        # the set cannot exchange traffic with hosts outside it (and vice
        # versa) until the partition heals.
        self._partition: Optional[frozenset] = None
        # Persistent link-constraint graph: link key -> live flows crossing
        # it, in admission order (dict used as an ordered set). Mutations
        # mark the keys they touch dirty; the next recompute water-fills
        # only the connected component reachable from the dirty keys.
        self._members: Dict[_LinkKey, Dict[Flow, None]] = {}
        self._dirty_keys: Set[_LinkKey] = set()
        # One zero-delay settle event coalesces all same-instant mutations
        # into a single reallocation.
        self._recompute_pending = False
        # Settle bookkeeping: re-settling at the same instant moves zero
        # bytes, so it can be skipped — unless some flow runs at infinite
        # rate (its whole payload moves on settle regardless of elapsed).
        self._settled_at = -1.0
        self._inf_rates = False
        # Vectorized mirror of the live flow list (repro.sim.flowvec).
        # Attached when the flow population crosses VECTOR_ACTIVATE,
        # detached (with state written back to the objects) below
        # VECTOR_DEACTIVATE. None when numpy is unavailable or the
        # population is small — the scalar loops below then run as-is.
        self._vec: Optional["flowvec.FlowTable"] = None
        # Hosts with at least one live flow (endpoint refcounts) — the
        # telemetry "involved" set without scanning every flow per sample.
        self._active_refs: Dict[Host, int] = {}
        # Cached registry handles: these sit on per-byte/per-flow paths.
        self._flow_bytes_counter = sim.metrics.counter("net.flow_bytes")
        self._control_bytes_counter = sim.metrics.counter("net.control_bytes")
        self._flows_started_counter = sim.metrics.counter("net.flows_started")
        self._flows_completed_counter = sim.metrics.counter("net.flows_completed")
        self._flows_aborted_counter = sim.metrics.counter("net.flows_aborted")
        self._control_dropped_counter = sim.metrics.counter("net.control_dropped")
        # Telemetry timelines: the per-link evidence behind blame
        # attribution. Every max-min reallocation appends one point per
        # involved host to its utilization/flow-count series, so the
        # profiler can answer "was the bottleneck the provider's uplink or
        # the replacement's downlink" post hoc.
        self._flows_active_series = sim.metrics.series("net.flows_active")
        self._queue_wait_hist = sim.metrics.histogram("net.flow_queue_wait")
        self._flow_stall_hist = sim.metrics.histogram("net.flow_stall_s")
        self._host_series: Dict[str, tuple] = {}
        # Last recorded (up_util, down_util, flows) per host: a sample is
        # appended only when the value moved, so the timelines stay the
        # same step functions while sampling only the hosts a reallocation
        # touched. The dedupe is what keeps incremental and global
        # allocators serializing byte-identical series — the global solve
        # visits every host but unchanged values record nothing.
        self._host_last: Dict[str, List[float]] = {}
        # Hosts whose allocation may just have dropped (flow removed or
        # bandwidth changed) and must record a fresh sample even if they
        # no longer carry any flow.
        self._telemetry_dirty: Set[Host] = set()

    def in_flight_flows(self) -> int:
        """Number of admitted flows still moving bytes (audit hook)."""
        return len(self._flows)

    # ------------------------------------------------------------------ hosts

    def add_host(
        self,
        name: str,
        up_bw: float = math.inf,
        down_bw: float = math.inf,
        latency: float = 0.0005,
    ) -> Host:
        """Register a host; names must be unique within the network."""
        if name in self.hosts:
            raise NetworkError(f"duplicate host name: {name}")
        host = Host(name, up_bw=up_bw, down_bw=down_bw, latency=latency)
        self.hosts[name] = host
        return host

    def fail_host(self, host: Host) -> None:
        """Crash a host: all flows touching it abort immediately."""
        host.alive = False
        victims = self._ordered(host.active_out | host.active_in)
        self._settle_progress()
        for flow in victims:
            self._remove_flow(flow)
            flow.aborted = True
            self._trace_abort(flow, reason="host_failed")
            if flow.on_abort is not None:
                flow.on_abort(flow)
        self._request_recompute()

    def recover_host(self, host: Host) -> None:
        """Bring a crashed host back (replacement node taking its place)."""
        host.alive = True

    # ------------------------------------------------------- partitions & bw

    @property
    def partitioned(self) -> bool:
        return self._partition is not None

    def reachable(self, src: Host, dst: Host) -> bool:
        """Whether traffic can currently pass between two hosts."""
        if not src.alive or not dst.alive:
            return False
        if self._partition is None:
            return True
        return (src.name in self._partition) == (dst.name in self._partition)

    def partition(self, group) -> None:
        """Cut the network between ``group`` and everything else.

        In-flight flows crossing the cut abort immediately (their TCP
        connections stall and time out); control messages across the cut
        are dropped until :meth:`heal_partition`. Partitions replace each
        other — only one cut is active at a time, which is the classic
        two-sided split the chaos scenarios model.
        """
        names = frozenset(h.name if isinstance(h, Host) else str(h) for h in group)
        unknown = [n for n in names if n not in self.hosts]
        if unknown:
            raise NetworkError(f"cannot partition unknown hosts: {sorted(unknown)}")
        self._partition = names
        victims = [
            f for f in self._order_cache if not self.reachable(f.src, f.dst)
        ]
        self._settle_progress()
        for flow in victims:
            self._remove_flow(flow)
            flow.aborted = True
            self._trace_abort(flow, reason="partitioned")
            if flow.on_abort is not None:
                flow.on_abort(flow)
        self._request_recompute()
        self.sim.tracer.instant(
            "network partitioned", category="net.partition", hosts=len(names)
        )
        self.sim.metrics.counter("net.partitions").add(1)

    def heal_partition(self) -> None:
        """Remove the active partition; healing twice is harmless."""
        if self._partition is None:
            return
        self._partition = None
        self.sim.tracer.instant("network healed", category="net.partition")
        self.sim.metrics.counter("net.heals").add(1)

    def set_host_bandwidth(self, host: Host, up_bw: float, down_bw: float) -> None:
        """Change a host's link capacity mid-run (degradation, flapping).

        Settles every flow's progress at the old rates first, then
        re-runs the max-min allocation so active transfers immediately
        see the new capacity.
        """
        if up_bw <= 0 or down_bw <= 0:
            raise NetworkError(f"host {host.name}: bandwidth must be positive")
        self._settle_progress()
        host.up_bw = up_bw
        host.down_bw = down_bw
        if self._vec is not None:
            self._vec.update_host_bw(host)
        self._dirty_keys.add(("up", host.name))
        self._dirty_keys.add(("down", host.name))
        self._request_recompute()

    def degraded_hosts(self, fraction: float = 0.5) -> List[Tuple[Host, float]]:
        """Alive hosts running below ``fraction`` of their nominal capacity.

        Returns ``(host, current/nominal)`` pairs sorted by host name — the
        control plane's flaky-node signal.
        """
        out: List[Tuple[Host, float]] = []
        for name in sorted(self.hosts):
            host = self.hosts[name]
            if not host.alive:
                continue
            ratio = host.bw_fraction()
            if ratio < fraction:
                out.append((host, ratio))
        return out

    # ------------------------------------------------------------------ flows

    def transfer(
        self,
        src: Host,
        dst: Host,
        nbytes: float,
        on_complete: Optional[Callable[[Flow], None]] = None,
        on_abort: Optional[Callable[[Flow], None]] = None,
        tag: Optional[str] = None,
        parent_span=None,
    ) -> Flow:
        """Start a bulk transfer of ``nbytes`` from ``src`` to ``dst``.

        The flow is admitted after one propagation latency and then shares
        bandwidth fairly with every concurrent flow. ``on_complete`` fires
        with the flow once the last byte arrives. ``parent_span`` nests the
        flow's trace span under the operation that started it.
        """
        if not src.alive or not dst.alive:
            raise NetworkError(f"transfer between dead hosts: {src.name}->{dst.name}")
        if nbytes < 0:
            raise NetworkError("transfer size must be non-negative")
        flow = Flow(
            src, dst, nbytes, on_complete, on_abort, tag, self.sim.now,
            seq=self.started_flows,
        )
        self.started_flows += 1
        self._flows_started_counter.add(1)
        flow.span = self.sim.tracer.start(
            f"flow {src.name}->{dst.name}",
            category="net.flow",
            parent=parent_span,
            bytes=float(nbytes),
            src=src.name,
            dst=dst.name,
            **({"tag": tag} if tag else {}),
        )
        propagation = src.latency + dst.latency
        self.sim.schedule(propagation, self._admit, flow)
        return flow

    def _admit(self, flow: Flow) -> None:
        if flow.aborted or not self.reachable(flow.src, flow.dst):
            alive = flow.src.alive and flow.dst.alive
            flow.aborted = True
            self._trace_abort(flow, reason="partitioned" if alive else "dead_endpoint")
            if flow.on_abort is not None:
                flow.on_abort(flow)
            return
        self._settle_progress()
        flow.admitted_at = self.sim.now
        flow._last_update = self.sim.now
        self._queue_wait_hist.observe(self.sim.now - flow.started_at)
        if flow.remaining <= _EPSILON_BYTES:
            self._finish_flow(flow)
            return
        self._flows.add(flow)
        position = self._insert_ordered(flow)
        if self._vec is not None:
            self._vec.insert(position, flow)
        flow.src.active_out.add(flow)
        flow.dst.active_in.add(flow)
        up_key = ("up", flow.src.name)
        down_key = ("down", flow.dst.name)
        self._members.setdefault(up_key, {})[flow] = None
        self._members.setdefault(down_key, {})[flow] = None
        self._dirty_keys.add(up_key)
        self._dirty_keys.add(down_key)
        self._active_refs[flow.src] = self._active_refs.get(flow.src, 0) + 1
        self._active_refs[flow.dst] = self._active_refs.get(flow.dst, 0) + 1
        self._request_recompute()

    def abort_flow(self, flow: Flow) -> None:
        """Cancel an in-flight (or not yet admitted) transfer."""
        if flow.done or flow.aborted:
            return
        self._settle_progress()
        if flow in self._flows:
            self._remove_flow(flow)
        flow.aborted = True
        self._trace_abort(flow, reason="cancelled")
        if flow.on_abort is not None:
            flow.on_abort(flow)
        self._request_recompute()

    # -------------------------------------------------------------- app flows

    def open_app_flow(
        self,
        src: Host,
        dst: Host,
        demand: float = math.inf,
        on_abort: Optional[Callable[[Flow], None]] = None,
        tag: Optional[str] = None,
        parent_span=None,
    ) -> Flow:
        """Register long-running application traffic as a first-class flow.

        The flow has infinite size — it never completes on its own — and
        competes in the max-min allocation like any bulk transfer, capped
        at ``demand`` bytes/second (the workload's current offered load).
        Recovery and save transfers sharing a link with it get exactly the
        fair share that remains, which is how sustained ingest makes
        recovery measurably slower than the quiescent benchmarks.

        Close it with :meth:`close_app_flow`; adjust the offered load with
        :meth:`set_flow_demand`. A host failure or partition aborts it like
        any other flow (``on_abort`` fires so the workload can re-route).
        """
        if not src.alive or not dst.alive:
            raise NetworkError(
                f"app flow between dead hosts: {src.name}->{dst.name}"
            )
        if not demand > 0:
            raise NetworkError("app flow demand must be positive")
        if math.isinf(demand) and (math.isinf(src.up_bw) or math.isinf(dst.down_bw)):
            raise NetworkError(
                f"app flow {src.name}->{dst.name}: an unbounded demand on an "
                f"unconstrained link would absorb infinite bandwidth; give "
                f"the flow a finite demand or the hosts finite capacity"
            )
        flow = Flow(
            src, dst, math.inf, None, on_abort, tag, self.sim.now,
            seq=self.started_flows, demand=demand, app=True,
        )
        self.started_flows += 1
        self._flows_started_counter.add(1)
        self.sim.metrics.counter("net.app_flows_opened").add(1)
        flow.span = self.sim.tracer.start(
            f"app flow {src.name}->{dst.name}",
            category="net.app_flow",
            parent=parent_span,
            src=src.name,
            dst=dst.name,
            **({"tag": tag} if tag else {}),
        )
        propagation = src.latency + dst.latency
        self.sim.schedule(propagation, self._admit, flow)
        return flow

    def set_flow_demand(self, flow: Flow, demand: float) -> None:
        """Change an app flow's offered load (rate-curve tracking)."""
        if not flow.app:
            raise NetworkError("demand is only adjustable on app flows")
        if not demand > 0:
            raise NetworkError("app flow demand must be positive")
        if math.isinf(demand) and (
            math.isinf(flow.src.up_bw) or math.isinf(flow.dst.down_bw)
        ):
            raise NetworkError(
                "an unbounded app-flow demand needs finite link capacity"
            )
        if demand == flow.demand:
            return
        self._settle_progress()
        flow.demand = demand
        if flow in self._flows:
            if self._vec is not None:
                self._vec.demand[self._vec.pos_of(flow)] = demand
            self._dirty_keys.add(("up", flow.src.name))
            self._dirty_keys.add(("down", flow.dst.name))
            self._request_recompute()

    def close_app_flow(self, flow: Flow) -> None:
        """Retire an app flow (workload drained or re-routed).

        A deliberate close — unlike an abort, ``on_abort`` does not fire.
        Closing an already closed/aborted flow is harmless.
        """
        if not flow.app:
            raise NetworkError("close_app_flow only applies to app flows")
        if flow.done or flow.aborted:
            return
        self._settle_progress()
        if flow in self._flows:
            self._remove_flow(flow)
        flow.aborted = True
        self.sim.metrics.counter("net.app_flows_closed").add(1)
        flow.span.finish(closed=True)
        self._request_recompute()

    def app_flows(self) -> List[Flow]:
        """Live app flows in admission order (telemetry/audit hook)."""
        return [f for f in self._order_cache if f.app]

    # ------------------------------------------------------------ control msgs

    def send_control(
        self,
        src: Host,
        dst: Host,
        nbytes: float,
        on_delivery: Optional[Callable[[], None]] = None,
    ) -> None:
        """Deliver a small control message after one propagation latency.

        Control traffic is excluded from bandwidth sharing (it is tiny) but
        fully accounted in the per-host and global control-byte counters
        used to reproduce the maintenance-overhead experiment (Fig. 12c).
        """
        if nbytes < 0:
            raise NetworkError("control message size must be non-negative")
        src.control_bytes_sent += nbytes
        dst.control_bytes_received += nbytes
        self.total_control_bytes += nbytes
        self._control_bytes_counter.add(nbytes)
        if self._partition is not None and not self.reachable(src, dst):
            # Dropped at the cut: the sender already paid the bytes.
            self._control_dropped_counter.add(1)
            return
        if on_delivery is not None:
            if not dst.alive:
                return
            self.sim.schedule(src.latency + dst.latency, lambda: on_delivery())

    # ---------------------------------------------------------------- internal

    @staticmethod
    def _ordered(flows) -> List[Flow]:
        """Flows in admission order — the deterministic iteration order."""
        return sorted(flows, key=lambda f: f.seq)

    def _insert_ordered(self, flow: Flow) -> int:
        """Bisection insert into the admission-ordered live list.

        Returns the insertion position so the vectorized mirror can
        insert its row at the same index (differing propagation
        latencies admit flows out of sequence order, so the position is
        not always the end).
        """
        lst = self._order_cache
        seq = flow.seq
        lo, hi = 0, len(lst)
        while lo < hi:
            mid = (lo + hi) // 2
            if lst[mid].seq < seq:
                lo = mid + 1
            else:
                hi = mid
        lst.insert(lo, flow)
        return lo

    def _settle_progress(self) -> None:
        """Advance every flow's remaining-byte count to the current instant.

        Re-settling at an instant already settled moves zero bytes, so it
        short-circuits — except while an infinite-rate flow is live (its
        whole payload moves on settle regardless of elapsed time).
        """
        now = self.sim.now
        if now == self._settled_at and not self._inf_rates:
            return
        vec = self._vec
        if (
            vec is None
            and flowvec.HAVE_NUMPY
            and len(self._order_cache) >= flowvec.VECTOR_ACTIVATE
        ):
            # All live flows are settled as of _settled_at (the settle
            # invariant: every mutation settles first), so the array
            # snapshot taken here is coherent.
            vec = self._vec = flowvec.FlowTable(self._order_cache)
        if vec is not None:
            moved = vec.settle(now - self._settled_at)
            if moved is not None:
                self.total_bytes = flowvec.fold_total(self.total_bytes, moved)
                counter = self._flow_bytes_counter
                counter.total = flowvec.fold_total(counter.total, moved)
            self._settled_at = now
            if vec.n < flowvec.VECTOR_DEACTIVATE:
                self._deactivate_vector()
            return
        for flow in self._order_cache:
            elapsed = now - flow._last_update
            if math.isinf(flow.rate):
                if math.isinf(flow.remaining):
                    # An app flow on an unconstrained path: bytes moved are
                    # unbounded and meaningless — charge nothing rather
                    # than poison the byte counters with inf.
                    moved = 0.0
                else:
                    # Unconstrained path: the transfer completes instantly.
                    moved = flow.remaining
            elif elapsed > 0 and flow.rate > 0:
                moved = min(flow.remaining, flow.rate * elapsed)
            else:
                moved = 0.0
            if moved > 0:
                flow.remaining -= moved
                flow.src.bytes_sent += moved
                flow.dst.bytes_received += moved
                self.total_bytes += moved
                self._flow_bytes_counter.add(moved)
            flow._last_update = now
        self._settled_at = now

    def _deactivate_vector(self) -> None:
        """Write vector state back to the objects and drop the mirror.

        Callers guarantee the table is settled as of ``_settled_at``;
        surviving flows resume scalar settling from that instant.
        """
        vec = self._vec
        self._vec = None
        settled_at = self._settled_at
        for position, flow in enumerate(self._order_cache):
            flow.remaining = float(vec.remaining[position])
            flow._last_update = settled_at
        vec.detach()

    def _remove_flow(self, flow: Flow) -> None:
        self._flows.discard(flow)
        vec = self._vec
        if vec is not None:
            # Sync the authoritative remaining-byte count back before the
            # object leaves the table (completion/abort callbacks read it).
            position = vec.pos_of(flow)
            flow.remaining = float(vec.remaining[position])
            flow._last_update = self._settled_at
            vec.remove(position)
            del self._order_cache[position]
            if vec.n < flowvec.VECTOR_DEACTIVATE:
                self._deactivate_vector()
        else:
            self._order_cache.remove(flow)
        flow.src.active_out.discard(flow)
        flow.dst.active_in.discard(flow)
        up_key = ("up", flow.src.name)
        down_key = ("down", flow.dst.name)
        for key in (up_key, down_key):
            link = self._members.get(key)
            if link is not None:
                link.pop(flow, None)
                if not link:
                    del self._members[key]
            self._dirty_keys.add(key)
        for host in (flow.src, flow.dst):
            refs = self._active_refs.get(host, 0) - 1
            if refs > 0:
                self._active_refs[host] = refs
            else:
                self._active_refs.pop(host, None)
        # Their utilization may have just dropped to zero; make sure the
        # next telemetry sample closes out their timelines.
        self._telemetry_dirty.add(flow.src)
        self._telemetry_dirty.add(flow.dst)

    def _finish_flow(self, flow: Flow) -> None:
        flow.completed_at = self.sim.now
        flow.remaining = 0.0
        self.completed_flows += 1
        self._flows_completed_counter.add(1)
        if flow.admitted_at is not None:
            # Stall = time lost to bandwidth sharing: actual transfer time
            # minus what the flow's own bottleneck link would have taken.
            bottleneck = min(flow.src.up_bw, flow.dst.down_bw)
            ideal = 0.0 if math.isinf(bottleneck) else flow.size / bottleneck
            stall = (flow.completed_at - flow.admitted_at) - ideal
            self._flow_stall_hist.observe(max(0.0, stall))
        flow.span.finish()
        if flow.on_complete is not None:
            flow.on_complete(flow)

    def _trace_abort(self, flow: Flow, reason: str) -> None:
        self._flows_aborted_counter.add(1)
        flow.span.finish(aborted=True, reason=reason)

    def _request_recompute(self) -> None:
        """Coalesce same-instant reallocations behind one settle event."""
        if self._recompute_pending:
            return
        self._recompute_pending = True
        self.sim.schedule(0.0, self._settle_event)

    def _settle_event(self) -> None:
        self._recompute_pending = False
        self._recompute_rates()

    def _recompute_rates(self) -> None:
        """Max-min fair allocation by progressive water-filling.

        Under the incremental allocator only the connected component of
        the link graph reachable from dirty links is re-solved; rates of
        flows in untouched components are provably unchanged (their
        water-filling subproblem has identical inputs).
        """
        if self._completion_event is not None:
            self.sim.cancel(self._completion_event)
            self._completion_event = None
        dirty = self._dirty_keys
        if not self._flows:
            dirty.clear()
            self._inf_rates = False
            self._record_telemetry(set())
            return

        # Hosts whose allocation this pass may have changed — the only
        # ones worth re-sampling. None means "every active host" (the
        # full-solve paths re-rate everything).
        touched_hosts: Optional[Set[Host]] = set()
        if self.allocator == "global":
            dirty.clear()
            self._solve_full()
            touched_hosts = None
        elif dirty:
            component = self._dirty_component()
            dirty.clear()
            if 2 * len(component) >= len(self._order_cache):
                # Most flows are affected anyway — the restricted solve
                # would walk the same links as the full one.
                self._solve_full()
                touched_hosts = None
            elif component:
                affected = self._ordered(component)
                self._solve_component(affected)
                for flow in affected:
                    touched_hosts.add(flow.src)
                    touched_hosts.add(flow.dst)
        # else: nothing touching the link graph changed (e.g. an abort of
        # a not-yet-admitted flow) — every rate is still valid.

        now = self.sim.now
        if self._vec is not None:
            next_completion, inf_rates = self._vec.completion_scan(now)
        else:
            next_completion = math.inf
            inf_rates = False
            for flow in self._order_cache:
                rate = flow.rate
                if rate > 0:
                    if math.isinf(flow.remaining):
                        # Long-running app traffic never completes; an
                        # infinite rate on it moves no bytes either, so it
                        # must not keep scheduling zero-delay completion
                        # ticks.
                        continue
                    if math.isinf(rate):
                        finish = now
                        inf_rates = True
                    else:
                        finish = now + flow.remaining / rate
                    next_completion = min(next_completion, finish)
        self._inf_rates = inf_rates
        if not math.isinf(next_completion):
            delay = max(0.0, next_completion - now)
            self._completion_event = self.sim.schedule(delay, self._on_completion_tick)
        self._record_telemetry(touched_hosts)

    def _solve_full(self) -> None:
        """Re-rate every live flow (full solve), scalar or vectorized."""
        vec = self._vec
        if vec is not None and vec.n >= flowvec.WATERFILL_MIN:
            rates = flowvec.waterfill(vec, None)
            vec.rate[: vec.n] = rates
            # Object rates stay synced: telemetry and external readers
            # consume Flow.rate directly in either mode.
            for position, flow in enumerate(self._order_cache):
                flow.rate = float(rates[position])
            return
        rates = self._waterfill(self._order_cache)
        for flow in self._order_cache:
            flow.rate = rates.get(flow, 0.0)
        if vec is not None:
            vec.sync_rates(self._order_cache)

    def _solve_component(self, affected: List[Flow]) -> None:
        """Re-rate one dirty component (admission-ordered ``affected``)."""
        vec = self._vec
        if vec is not None and len(affected) >= flowvec.WATERFILL_MIN:
            positions = vec.positions_of(affected)
            rates = flowvec.waterfill(vec, positions)
            vec.rate[positions] = rates
            for index, flow in enumerate(affected):
                flow.rate = float(rates[index])
            return
        rates = self._waterfill(affected)
        for flow in affected:
            flow.rate = rates.get(flow, 0.0)
        if vec is not None:
            vec.sync_rates(affected)

    def _dirty_component(self) -> Set[Flow]:
        """Flows connected to a dirty link through shared constraints."""
        component: Set[Flow] = set()
        members = self._members
        stack = [key for key in self._dirty_keys if key in members]
        seen = set(stack)
        while stack:
            key = stack.pop()
            for flow in members[key]:
                if flow in component:
                    continue
                component.add(flow)
                for other in (("up", flow.src.name), ("down", flow.dst.name)):
                    if other not in seen and other in members:
                        seen.add(other)
                        stack.append(other)
        return component

    def _waterfill(self, flows: List[Flow]) -> Dict[Flow, float]:
        """Progressive water-filling over ``flows`` (admission-ordered).

        ``flows`` must be closed under constraint sharing: every flow that
        crosses a link used by a member is itself a member. Float-op order
        matches the historical global solve exactly — shares divide the
        same residuals, fixed flows subtract in admission order.
        """
        residual: Dict[_LinkKey, float] = {}
        members: Dict[_LinkKey, List[Flow]] = {}
        for flow in flows:
            up_key = ("up", flow.src.name)
            down_key = ("down", flow.dst.name)
            if up_key not in residual:
                residual[up_key] = flow.src.up_bw
                members[up_key] = []
            members[up_key].append(flow)
            if down_key not in residual:
                residual[down_key] = flow.dst.down_bw
                members[down_key] = []
            members[down_key].append(flow)
        unfixed_count = {key: len(flows) for key, flows in members.items()}
        # Demand caps only enter the solve when some member actually has
        # one — the historical all-elastic case must run the exact same
        # float-op sequence (byte-identical quiescent allocations).
        demand_capped = any(not math.isinf(f.demand) for f in flows)

        unfixed = set(flows)
        rates: Dict[Flow, float] = {}
        while unfixed:
            bottleneck_share = math.inf
            for key, cap in residual.items():
                count = unfixed_count[key]
                if not count:
                    continue
                share = cap / count
                if share < bottleneck_share:
                    bottleneck_share = share
            if math.isinf(bottleneck_share):
                # No remaining link constraint: elastic flows take inf,
                # demand-capped app flows saturate at their offered load.
                for flow in unfixed:
                    rates[flow] = flow.demand
                break
            if demand_capped:
                # Flows whose offered load sits at or below the current
                # fair share saturate first: they take exactly their
                # demand and release the rest of the share back into the
                # pool before any link fills up.
                saturated = [
                    f for f in self._ordered(unfixed)
                    if f.demand <= bottleneck_share
                ]
                if saturated:
                    touched = []
                    for flow in saturated:
                        rates[flow] = flow.demand
                        unfixed.discard(flow)
                        up_key = ("up", flow.src.name)
                        down_key = ("down", flow.dst.name)
                        residual[up_key] -= flow.demand
                        unfixed_count[up_key] -= 1
                        residual[down_key] -= flow.demand
                        unfixed_count[down_key] -= 1
                        touched.append(up_key)
                        touched.append(down_key)
                    for key in touched:
                        residual[key] = max(0.0, residual[key])
                    continue
            newly_fixed = set()
            for key, cap in residual.items():
                count = unfixed_count[key]
                if count and cap / count <= bottleneck_share * (1 + 1e-12):
                    newly_fixed.update(f for f in members[key] if f in unfixed)
            if not newly_fixed:
                raise NetworkError("water-filling failed to make progress")
            # Subtract in admission order: residual capacities accumulate
            # float error, and a set-order walk would make the ulps depend
            # on object addresses rather than on the seed.
            touched = []
            for flow in self._ordered(newly_fixed):
                rates[flow] = bottleneck_share
                unfixed.discard(flow)
                up_key = ("up", flow.src.name)
                down_key = ("down", flow.dst.name)
                residual[up_key] -= bottleneck_share
                unfixed_count[up_key] -= 1
                residual[down_key] -= bottleneck_share
                unfixed_count[down_key] -= 1
                touched.append(up_key)
                touched.append(down_key)
            for key in touched:
                residual[key] = max(0.0, residual[key])
        return rates

    @staticmethod
    def _direction_utilization(flows: Set[Flow], capacity: float) -> float:
        if not flows or math.isinf(capacity):
            return 0.0
        # fsum is exactly rounded, so the value is independent of the set
        # iteration order and same-seed runs serialize identical timelines.
        used = math.fsum(f.rate for f in flows if not math.isinf(f.rate))
        return min(1.0, used / capacity)

    def _record_telemetry(self, touched: Optional[Set[Host]]) -> None:
        """Sample per-host link utilization and flow counts after a reallocation.

        Only hosts the reallocation could have moved (``touched``, plus
        any whose last flow just left) are visited; ``None`` means every
        active host (a full solve). Each series appends a point only when
        the value changed, so the dumped timelines are identical whichever
        superset of changed hosts was visited.
        """
        now = self.sim.now
        self._flows_active_series.record(now, float(len(self._flows)))
        involved = set(self._active_refs) if touched is None else set(touched)
        involved |= self._telemetry_dirty
        self._telemetry_dirty.clear()
        for host in sorted(involved, key=lambda h: h.name):
            cached = self._host_series.get(host.name)
            if cached is None:
                series = self.sim.metrics.series
                cached = (
                    series(f"net.host.{host.name}.up_util"),
                    series(f"net.host.{host.name}.down_util"),
                    series(f"net.host.{host.name}.flows"),
                )
                self._host_series[host.name] = cached
                self._host_last[host.name] = [-1.0, -1.0, -1.0]
            up_series, down_series, flows_series = cached
            last = self._host_last[host.name]
            up = self._direction_utilization(host.active_out, host.up_bw)
            if up != last[0]:
                last[0] = up
                up_series.record(now, up)
            down = self._direction_utilization(host.active_in, host.down_bw)
            if down != last[1]:
                last[1] = down
                down_series.record(now, down)
            flows = float(len(host.active_out) + len(host.active_in))
            if flows != last[2]:
                last[2] = flows
                flows_series.record(now, flows)

    def _on_completion_tick(self) -> None:
        self._completion_event = None
        self._settle_progress()
        vec = self._vec
        if vec is not None:
            order = self._order_cache
            finished = [
                order[int(position)]
                for position in vec.finished_positions(_EPSILON_BYTES)
            ]
        else:
            finished = [
                f for f in self._order_cache if f.remaining <= _EPSILON_BYTES
            ]
        for flow in finished:
            self._remove_flow(flow)
        for flow in finished:
            self._finish_flow(flow)
        self._request_recompute()


class RemoteStorage(Host):
    """A remote checkpoint store (HDFS/GFS/KV-store stand-in).

    Beyond link bandwidth, every read or write pays a fixed per-request
    overhead, modelling the two-orders-of-magnitude gap between in-memory
    message rates and remote key-value request rates cited in Sec. 2.1.
    """

    def __init__(
        self,
        name: str,
        up_bw: float,
        down_bw: float,
        request_overhead: float = 0.05,
        latency: float = 0.005,
    ) -> None:
        super().__init__(name, up_bw=up_bw, down_bw=down_bw, latency=latency)
        if request_overhead < 0:
            raise NetworkError("request_overhead must be non-negative")
        self.request_overhead = request_overhead
        self.requests_served = 0

    def charge_request(self) -> float:
        """Account one request; returns the overhead to add to its latency."""
        self.requests_served += 1
        return self.request_overhead
