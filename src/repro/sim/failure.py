"""Failure injection: node crashes and shard loss.

The paper evaluates failure tolerance "with methods that use human
intervention ... we deliberately remove some shards of application's state
in some nodes" (Sec. 5.2, Fig. 10). This module reproduces both styles:
whole-node crashes (which abort in-flight transfers and trigger overlay
repair) and targeted shard removal (which exercises the recovery paths
without disturbing the overlay).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

from repro.errors import SimulationError
from repro.sim.kernel import Simulator
from repro.sim.network import Host, Network


@dataclass
class FailureRecord:
    """One injected failure, kept for post-run auditing."""

    time: float
    kind: str
    target: str
    detail: str = ""


@dataclass
class FailureInjector:
    """Schedules crashes and shard-loss events against a simulation.

    Victim selection is driven by ``seed`` so that failure timing and
    placement follow the same seed as the rest of the experiment; passing
    an explicit ``rng`` overrides it (the legacy interface). With neither,
    the injector stays deterministic at seed 0.
    """

    sim: Simulator
    network: Network
    seed: Optional[int] = None
    rng: Optional[random.Random] = None
    records: List[FailureRecord] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.rng is None:
            self.rng = random.Random(0 if self.seed is None else self.seed)

    def crash_at(
        self,
        time: float,
        host: Host,
        on_crash: Optional[Callable[[Host], None]] = None,
    ) -> None:
        """Crash ``host`` at absolute virtual time ``time``."""
        if time < self.sim.now:
            raise SimulationError("cannot schedule a crash in the past")

        def _do_crash() -> None:
            if not host.alive:
                return
            self.network.fail_host(host)
            self.records.append(FailureRecord(self.sim.now, "crash", host.name))
            if on_crash is not None:
                on_crash(host)

        self.sim.schedule_at(time, _do_crash)

    def crash_many_at(
        self,
        time: float,
        hosts: Sequence[Host],
        on_crash: Optional[Callable[[Host], None]] = None,
    ) -> None:
        """Crash several hosts simultaneously (the multi-failure scenario)."""
        for host in hosts:
            self.crash_at(time, host, on_crash)

    def pick_victims(self, candidates: Sequence[Host], count: int) -> List[Host]:
        """Choose ``count`` distinct crash victims uniformly at random."""
        alive = [h for h in candidates if h.alive]
        if count > len(alive):
            raise SimulationError(
                f"cannot pick {count} victims from {len(alive)} alive hosts"
            )
        return self.rng.sample(alive, count)

    def lose_shards_at(
        self,
        time: float,
        description: str,
        action: Callable[[], None],
    ) -> None:
        """Schedule a shard-loss event; ``action`` performs the removal.

        The state layer supplies the action (it knows which stores hold the
        shards); the injector only provides timing and the audit trail.
        """

        def _do_loss() -> None:
            action()
            self.records.append(
                FailureRecord(self.sim.now, "shard_loss", description)
            )

        self.sim.schedule_at(time, _do_loss)

    def crashes(self) -> List[FailureRecord]:
        return [r for r in self.records if r.kind == "crash"]

    def shard_losses(self) -> List[FailureRecord]:
        return [r for r in self.records if r.kind == "shard_loss"]
