"""Counters and time series for experiment instrumentation.

The primitives now live in :mod:`repro.obs.registry`, where the unified
per-simulation :class:`MetricsRegistry` also adds gauges and histograms;
this module re-exports them so historical ``repro.sim.metrics`` imports
keep working unchanged.
"""

from __future__ import annotations

from repro.obs.registry import Counter, Gauge, Histogram, MetricsRegistry, TimeSeries

__all__ = ["Counter", "TimeSeries", "Gauge", "Histogram", "MetricsRegistry"]
