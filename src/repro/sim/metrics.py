"""Counters and time series for experiment instrumentation."""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Tuple


class Counter:
    """A named monotonic counter with labelled sub-counts."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.total = 0.0
        self._by_label: Dict[str, float] = defaultdict(float)

    def add(self, amount: float, label: str = "") -> None:
        if amount < 0:
            raise ValueError("counters are monotonic; amount must be >= 0")
        self.total += amount
        if label:
            self._by_label[label] += amount

    def get(self, label: str) -> float:
        return self._by_label.get(label, 0.0)

    def labels(self) -> Dict[str, float]:
        return dict(self._by_label)

    def __repr__(self) -> str:
        return f"Counter({self.name}={self.total})"


class TimeSeries:
    """Append-only (time, value) series; points must arrive in time order."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._points: List[Tuple[float, float]] = []

    def record(self, time: float, value: float) -> None:
        if self._points and time < self._points[-1][0]:
            raise ValueError("time series points must be appended in order")
        self._points.append((time, value))

    def __len__(self) -> int:
        return len(self._points)

    @property
    def points(self) -> List[Tuple[float, float]]:
        return list(self._points)

    def values(self) -> List[float]:
        return [v for _, v in self._points]

    def times(self) -> List[float]:
        return [t for t, _ in self._points]

    def last(self) -> Tuple[float, float]:
        if not self._points:
            raise ValueError(f"time series {self.name} is empty")
        return self._points[-1]

    def value_at(self, time: float) -> float:
        """Step-function lookup: last value at or before ``time``."""
        best = None
        for t, v in self._points:
            if t <= time:
                best = v
            else:
                break
        if best is None:
            raise ValueError(f"no point at or before t={time} in {self.name}")
        return best


class MetricsRegistry:
    """A bag of counters and series keyed by name, one per experiment run."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._series: Dict[str, TimeSeries] = {}

    def counter(self, name: str) -> Counter:
        if name not in self._counters:
            self._counters[name] = Counter(name)
        return self._counters[name]

    def series(self, name: str) -> TimeSeries:
        if name not in self._series:
            self._series[name] = TimeSeries(name)
        return self._series[name]

    def counters(self) -> Dict[str, Counter]:
        return dict(self._counters)

    def all_series(self) -> Dict[str, TimeSeries]:
        return dict(self._series)
