"""Vectorized fast path for the flow-level network model.

When the live-flow population is large (paper-scale recovery pushes tens
of thousands of concurrent transfers), the per-flow Python loops in
:mod:`repro.sim.network` — settling byte progress, water-filling, and
completion scanning — dominate wall-clock. This module mirrors the live
flow list into aligned numpy arrays and runs those loops as array
kernels.

**Determinism contract: byte-identical results.** Every kernel performs
the exact same IEEE-754 operations, in the same per-accumulator order,
as the scalar code it replaces:

* Settling multiplies the same ``rate * elapsed`` products (the settle
  invariant guarantees one shared ``elapsed`` for all live flows) and
  folds per-host/total byte counters with ``np.add.at`` /
  ``np.add.accumulate``, which apply strictly in element order — the
  admission order the scalar loop walks.
* Water-filling subtracts fixed shares with ``np.subtract.at`` in
  admission order per link. Up-links and down-links are disjoint keys,
  so the two-pass (all up, then all down) subtraction hits each link
  with the identical operand sequence as the scalar interleaved loop.
* Completion scanning exploits that ``min(now + t_i) == now + min(t_i)``
  for rounded monotone addition over the same operands.

While a :class:`FlowTable` is attached, the arrays are authoritative for
``Flow.remaining`` and per-host byte counters; ``Host.bytes_sent`` /
``bytes_received`` are properties that read through to the table, and
``Flow.remaining`` is synced back on removal and on deactivation.

numpy is an optional dependency (``pip install repro[fast]``). Without
it ``HAVE_NUMPY`` is False and the network keeps the pure-Python path —
same results, just slower at scale.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, TYPE_CHECKING

try:  # pragma: no cover - exercised via the import-path fallback test
    import numpy as np
except ImportError:  # pragma: no cover
    np = None

if TYPE_CHECKING:  # pragma: no cover - type hints only
    from repro.sim.network import Flow, Host, Network

HAVE_NUMPY = np is not None

# Mode thresholds (module-level so tests can monkeypatch them). The
# vector table attaches when the live-flow count reaches ACTIVATE at a
# settle point and detaches when it falls below DEACTIVATE; the gap is
# hysteresis so a population oscillating around one boundary does not
# thrash O(n) attach/detach conversions.
VECTOR_ACTIVATE = 512
VECTOR_DEACTIVATE = 256
# Minimum solve size for the vectorized water-filling; smaller dirty
# components stay on the dict-based scalar solver (array setup overhead
# beats it below this).
WATERFILL_MIN = 192


class FlowTable:
    """Aligned array mirror of ``Network._order_cache``.

    Row ``i`` of every array describes ``network._order_cache[i]``; the
    alignment is maintained by inserting/removing rows at the exact list
    positions the network uses. Host state lives in slot arrays created
    lazily per host: absolute byte counters (seeded from the host at
    slot creation) and current link capacities, with link id ``2*slot``
    for the uplink and ``2*slot + 1`` for the downlink.
    """

    __slots__ = (
        "n",
        "seq",
        "rate",
        "remaining",
        "demand",
        "srci",
        "dsti",
        "hosts",
        "slot_of",
        "nslots",
        "link_bw",
        "h_sent",
        "h_recv",
    )

    def __init__(self, flows: List["Flow"]) -> None:
        cap = max(64, 2 * len(flows))
        self.n = 0
        self.seq = np.zeros(cap, dtype=np.int64)
        self.rate = np.zeros(cap, dtype=np.float64)
        self.remaining = np.zeros(cap, dtype=np.float64)
        self.demand = np.zeros(cap, dtype=np.float64)
        self.srci = np.zeros(cap, dtype=np.int64)
        self.dsti = np.zeros(cap, dtype=np.int64)
        self.hosts: List["Host"] = []
        self.slot_of: Dict["Host", int] = {}
        self.nslots = 0
        hcap = 64
        self.link_bw = np.zeros(2 * hcap, dtype=np.float64)
        self.h_sent = np.zeros(hcap, dtype=np.float64)
        self.h_recv = np.zeros(hcap, dtype=np.float64)
        for flow in flows:
            self.insert(self.n, flow)

    # ------------------------------------------------------------- host slots

    def _slot(self, host: "Host") -> int:
        slot = self.slot_of.get(host)
        if slot is not None:
            return slot
        slot = self.nslots
        if slot >= len(self.h_sent):
            grow = 2 * len(self.h_sent)
            self.h_sent = np.resize(self.h_sent, grow)
            self.h_recv = np.resize(self.h_recv, grow)
            self.link_bw = np.resize(self.link_bw, 2 * grow)
        # Seed the absolute counters from the host *before* linking the
        # slot (the property reads through to us once linked).
        self.h_sent[slot] = host.bytes_sent
        self.h_recv[slot] = host.bytes_received
        self.link_bw[2 * slot] = host.up_bw
        self.link_bw[2 * slot + 1] = host.down_bw
        self.slot_of[host] = slot
        self.hosts.append(host)
        self.nslots += 1
        host._flowvec = (self, slot)
        return slot

    def update_host_bw(self, host: "Host") -> None:
        slot = self.slot_of.get(host)
        if slot is not None:
            self.link_bw[2 * slot] = host.up_bw
            self.link_bw[2 * slot + 1] = host.down_bw

    def detach(self) -> None:
        """Write host byte counters back to the host objects."""
        for host in self.hosts:
            slot = self.slot_of[host]
            host._flowvec = None
            host._bytes_sent = float(self.h_sent[slot])
            host._bytes_received = float(self.h_recv[slot])

    # -------------------------------------------------------------- row edits

    def insert(self, pos: int, flow: "Flow") -> None:
        n = self.n
        if n == len(self.seq):
            grow = 2 * n
            for name in ("seq", "rate", "remaining", "demand", "srci", "dsti"):
                setattr(self, name, np.resize(getattr(self, name), grow))
        if pos != n:
            for name in ("seq", "rate", "remaining", "demand", "srci", "dsti"):
                arr = getattr(self, name)
                arr[pos + 1 : n + 1] = arr[pos:n]
        self.seq[pos] = flow.seq
        self.rate[pos] = flow.rate
        self.remaining[pos] = flow.remaining
        self.demand[pos] = flow.demand
        self.srci[pos] = self._slot(flow.src)
        self.dsti[pos] = self._slot(flow.dst)
        self.n = n + 1

    def remove(self, pos: int) -> None:
        n = self.n
        if pos != n - 1:
            for name in ("seq", "rate", "remaining", "demand", "srci", "dsti"):
                arr = getattr(self, name)
                arr[pos : n - 1] = arr[pos + 1 : n]
        self.n = n - 1

    def pos_of(self, flow: "Flow") -> int:
        return int(np.searchsorted(self.seq[: self.n], flow.seq))

    def positions_of(self, flows: List["Flow"]) -> "np.ndarray":
        """Positions of admission-ordered ``flows`` (vectorized bisect)."""
        want = np.fromiter((f.seq for f in flows), dtype=np.int64, count=len(flows))
        return np.searchsorted(self.seq[: self.n], want)

    def sync_rates(self, flows: List["Flow"]) -> None:
        """Copy object rates into the array (after a scalar solve)."""
        pos = self.positions_of(flows)
        self.rate[pos] = np.fromiter(
            (f.rate for f in flows), dtype=np.float64, count=len(flows)
        )

    # ---------------------------------------------------------------- kernels

    def settle(self, elapsed: float) -> Optional["np.ndarray"]:
        """Advance all rows by ``elapsed``; returns per-flow bytes moved.

        Returns None when nothing can have moved. Host byte counters are
        folded in admission order via ``np.add.at`` (sequential per
        element, matching the scalar loop's per-host accumulation
        sequence); the caller folds the returned vector into the global
        totals the same way.
        """
        n = self.n
        if n == 0:
            return None
        rate = self.rate[:n]
        rem = self.remaining[:n]
        if elapsed == 0.0:
            # Only infinite-rate flows move bytes in zero elapsed time
            # (their whole finite payload transfers on settle).
            mask = np.isinf(rate) & np.isfinite(rem)
            if not mask.any():
                return None
            moved = np.zeros(n, dtype=np.float64)
            moved[mask] = rem[mask]
        else:
            moved = rate * elapsed
            np.minimum(moved, rem, out=moved)
            # inf * elapsed on an infinite-remaining app flow: charge
            # nothing rather than poison the counters (scalar rule).
            inf_mask = np.isinf(moved)
            if inf_mask.any():
                moved[inf_mask] = 0.0
        rem -= moved
        np.add.at(self.h_sent, self.srci[:n], moved)
        np.add.at(self.h_recv, self.dsti[:n], moved)
        return moved

    def completion_scan(self, now: float) -> tuple:
        """(next completion instant, any-infinite-rate) over all rows."""
        n = self.n
        rate = self.rate[:n]
        rem = self.remaining[:n]
        active = (rate > 0) & np.isfinite(rem)
        if not active.any():
            return math.inf, False
        r = rate[active]
        if bool(np.isinf(r).any()):
            # An unconstrained flow finishes at `now`, which lower-bounds
            # every other candidate (now + nonnegative).
            return now, True
        t = rem[active] / r
        return float(now + t.min()), False

    def finished_positions(self, eps: float) -> "np.ndarray":
        return np.nonzero(self.remaining[: self.n] <= eps)[0]


def fold_total(start: float, moved: "np.ndarray") -> float:
    """Left fold ``start + m0 + m1 + ...`` with scalar rounding order.

    ``np.add.accumulate`` is a strictly sequential left fold (unlike
    ``np.sum``'s pairwise tree), so this reproduces the scalar loop's
    running-total ulps exactly.
    """
    acc = np.empty(len(moved) + 1, dtype=np.float64)
    acc[0] = start
    acc[1:] = moved
    return float(np.add.accumulate(acc)[-1])


def waterfill(table: FlowTable, pos: Optional["np.ndarray"]) -> "np.ndarray":
    """Progressive water-filling over the rows at ``pos`` (None = all).

    Array transliteration of ``Network._waterfill`` — same iteration
    structure (saturate demand-capped flows below the fair share first,
    then freeze the flows on bottleneck links), same float-op order per
    accumulator, same ``1 + 1e-12`` bottleneck tolerance and post-pass
    clamp. ``pos`` must be admission-ordered and closed under constraint
    sharing, exactly like the scalar solver's input.
    """
    if pos is None:
        k = table.n
        up_g = 2 * table.srci[:k]
        down_g = 2 * table.dsti[:k] + 1
        demand = table.demand[:k]
    else:
        k = len(pos)
        up_g = 2 * table.srci[pos]
        down_g = 2 * table.dsti[pos] + 1
        demand = table.demand[pos]
    links, inverse = np.unique(np.concatenate((up_g, down_g)), return_inverse=True)
    up_l = inverse[:k]
    down_l = inverse[k:]
    nlinks = len(links)
    residual = table.link_bw[links].copy()
    counts = (
        np.bincount(up_l, minlength=nlinks) + np.bincount(down_l, minlength=nlinks)
    ).astype(np.float64)
    demand_capped = bool(np.isfinite(demand).any())
    unfixed = np.ones(k, dtype=bool)
    rates = np.zeros(k, dtype=np.float64)
    while unfixed.any():
        share = np.divide(
            residual,
            counts,
            out=np.full(nlinks, math.inf, dtype=np.float64),
            where=counts > 0,
        )
        bottleneck_share = float(share.min())
        if math.isinf(bottleneck_share):
            # No remaining link constraint: elastic flows take inf,
            # demand-capped app flows saturate at their offered load.
            rates[unfixed] = demand[unfixed]
            break
        if demand_capped:
            saturated = unfixed & (demand <= bottleneck_share)
            if saturated.any():
                rates[saturated] = demand[saturated]
                unfixed &= ~saturated
                su = up_l[saturated]
                sd = down_l[saturated]
                sdem = demand[saturated]
                # Up-link and down-link ids are disjoint, so the two
                # passes subtract from each link in admission order —
                # the scalar loop's exact per-link operand sequence.
                np.subtract.at(residual, su, sdem)
                np.subtract.at(residual, sd, sdem)
                np.subtract.at(counts, su, 1.0)
                np.subtract.at(counts, sd, 1.0)
                touched = np.concatenate((su, sd))
                residual[touched] = np.maximum(residual[touched], 0.0)
                continue
        link_fixed = (counts > 0) & (share <= bottleneck_share * (1 + 1e-12))
        fix = unfixed & (link_fixed[up_l] | link_fixed[down_l])
        if not fix.any():
            from repro.errors import NetworkError

            raise NetworkError("water-filling failed to make progress")
        rates[fix] = bottleneck_share
        unfixed &= ~fix
        fu = up_l[fix]
        fd = down_l[fix]
        np.subtract.at(residual, fu, bottleneck_share)
        np.subtract.at(residual, fd, bottleneck_share)
        np.subtract.at(counts, fu, 1.0)
        np.subtract.at(counts, fd, 1.0)
        touched = np.concatenate((fu, fd))
        residual[touched] = np.maximum(residual[touched], 0.0)
    return rates
