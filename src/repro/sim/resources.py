"""Per-node CPU and memory accounting for the overhead experiments.

Fig. 12a/12b report per-node CPU utilization (%) and memory (MB) sampled
over a 50-second recovery window. Recovery mechanisms record piecewise
usage intervals here; the profile can then be sampled on a fixed grid to
produce the same time series the paper plots.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence


@dataclass(frozen=True)
class _Interval:
    start: float
    end: float
    amount: float

    def overlaps(self, t: float) -> bool:
        return self.start <= t < self.end


class ResourceProfile:
    """Accumulates piecewise-constant CPU and memory usage for one node.

    CPU is recorded as a utilization fraction in [0, 1] over an interval;
    overlapping intervals add up (and are clamped at 1.0 when sampled, as a
    core cannot be more than fully busy). Memory is recorded in bytes over
    an interval; overlapping intervals add up on top of ``baseline_memory``.
    """

    def __init__(self, name: str, baseline_cpu: float = 0.0, baseline_memory: float = 0.0) -> None:
        if not 0.0 <= baseline_cpu <= 1.0:
            raise ValueError("baseline_cpu must be within [0, 1]")
        if baseline_memory < 0:
            raise ValueError("baseline_memory must be non-negative")
        self.name = name
        self.baseline_cpu = baseline_cpu
        self.baseline_memory = baseline_memory
        self._cpu: List[_Interval] = []
        self._memory: List[_Interval] = []

    def add_cpu(self, start: float, end: float, utilization: float) -> None:
        """Record CPU busy time: ``utilization`` of one core over [start, end)."""
        self._check_interval(start, end)
        if utilization < 0:
            raise ValueError("utilization must be non-negative")
        self._cpu.append(_Interval(start, end, utilization))

    def add_memory(self, start: float, end: float, nbytes: float) -> None:
        """Record ``nbytes`` of extra resident memory over [start, end)."""
        self._check_interval(start, end)
        if nbytes < 0:
            raise ValueError("memory must be non-negative")
        self._memory.append(_Interval(start, end, nbytes))

    @staticmethod
    def _check_interval(start: float, end: float) -> None:
        if end < start:
            raise ValueError(f"interval ends before it starts: [{start}, {end})")

    def cpu_at(self, t: float) -> float:
        """Total CPU utilization fraction at instant ``t``, clamped to 1.0."""
        total = self.baseline_cpu + sum(i.amount for i in self._cpu if i.overlaps(t))
        return min(1.0, total)

    def memory_at(self, t: float) -> float:
        """Resident memory in bytes at instant ``t``."""
        return self.baseline_memory + sum(i.amount for i in self._memory if i.overlaps(t))

    def cpu_series(self, times: Sequence[float]) -> List[float]:
        """CPU utilization sampled at each time point (fractions in [0, 1])."""
        return [self.cpu_at(t) for t in times]

    def memory_series(self, times: Sequence[float]) -> List[float]:
        """Memory in bytes sampled at each time point."""
        return [self.memory_at(t) for t in times]

    def cpu_seconds(self) -> float:
        """Integral of recorded (non-baseline) CPU usage — total core-seconds."""
        return sum(i.amount * (i.end - i.start) for i in self._cpu)

    def peak_memory(self, times: Sequence[float]) -> float:
        """Peak sampled memory over the given grid."""
        series = self.memory_series(times)
        return max(series) if series else self.baseline_memory


def sample_grid(start: float, end: float, step: float) -> List[float]:
    """An inclusive-start, exclusive-end sampling grid."""
    if step <= 0:
        raise ValueError("step must be positive")
    if end < start:
        raise ValueError("grid ends before it starts")
    points = []
    t = start
    while t < end - 1e-12:
        points.append(t)
        t += step
    return points
