"""Deterministic discrete-event cluster simulator.

This package replaces the paper's 50-VM emulation testbed. It provides:

- :mod:`repro.sim.kernel` — event queue and virtual clock,
- :mod:`repro.sim.network` — max-min fair flow-level network with
  asymmetric per-host up/down bandwidth and a remote-storage model,
- :mod:`repro.sim.resources` — per-node CPU/memory accounting,
- :mod:`repro.sim.failure` — crash and shard-loss injection,
- :mod:`repro.sim.metrics` — counters and time series.
"""

from repro.sim.kernel import Event, Simulator
from repro.sim.network import Flow, Host, Network, RemoteStorage
from repro.sim.resources import ResourceProfile
from repro.sim.failure import FailureInjector
from repro.sim.metrics import Counter, Gauge, Histogram, MetricsRegistry, TimeSeries

__all__ = [
    "Event",
    "Simulator",
    "Flow",
    "Host",
    "Network",
    "RemoteStorage",
    "ResourceProfile",
    "FailureInjector",
    "Counter",
    "TimeSeries",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
]
