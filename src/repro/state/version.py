"""State version control.

The SR3 prototype "implemented state version control by adding timestamps
and sequence numbers to the messages, thereby avoiding state inconsistency
during the state saving and recovery process" (Sec. 4). A version is a
(timestamp, sequence) pair, totally ordered; every save round stamps all
of its shards with the same version so recovery can reject mixed-round
reconstructions.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import total_ordering

from repro.errors import VersionConflictError


@total_ordering
@dataclass(frozen=True)
class StateVersion:
    """A totally ordered (timestamp, sequence) version stamp."""

    timestamp: float
    sequence: int

    def __post_init__(self) -> None:
        if self.timestamp < 0:
            raise ValueError("timestamp must be non-negative")
        if self.sequence < 0:
            raise ValueError("sequence must be non-negative")

    def __lt__(self, other: "StateVersion") -> bool:
        return (self.timestamp, self.sequence) < (other.timestamp, other.sequence)

    def __repr__(self) -> str:
        return f"v{self.sequence}@{self.timestamp:.3f}"


StateVersion.ZERO = StateVersion(0.0, 0)


class VersionClock:
    """Issues monotonically increasing versions for one operator's state.

    The timestamp comes from the simulation clock (or any monotonic time
    source the caller provides); the sequence number breaks ties between
    save rounds that happen at the same instant.
    """

    def __init__(self) -> None:
        self._last = StateVersion.ZERO

    @property
    def current(self) -> StateVersion:
        return self._last

    def next(self, timestamp: float) -> StateVersion:
        """Issue the next version at ``timestamp``.

        Raises :class:`VersionConflictError` when time runs backwards,
        which would make version order disagree with real order.
        """
        if timestamp < self._last.timestamp:
            raise VersionConflictError(
                f"timestamp {timestamp} precedes last version {self._last!r}"
            )
        version = StateVersion(timestamp, self._last.sequence + 1)
        self._last = version
        return version

    def observe(self, version: StateVersion) -> None:
        """Advance past an externally observed version (recovery handoff)."""
        if version > self._last:
            self._last = version
