"""Shards, sub-shards, and replicas.

A save round divides a state snapshot into ``m`` shards (Fig. 3's
``s_0..s_{m-1}``); each shard is replicated ``n`` times (``s_{i,r}``); the
tree-structured mechanism further splits each shard into sub-shards
(``s_{i,j,r}``, Fig. 5) so reconstruction parallelizes below shard
granularity. Shards either carry real entries (streaming-engine states) or
are *synthetic* — metadata plus a byte size — so experiments can model the
paper's multi-megabyte states without materializing them.

Incremental saves extend the model with :class:`DeltaShard`: a shard whose
payload is only the keys that changed (plus tombstones for deletions)
since a *parent* version. A recovered state is then a version chain — one
base shard set plus zero or more delta shard sets applied in version
order (see :mod:`repro.state.chain`).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import ShardError
from repro.state.version import StateVersion

#: Fixed serialization overhead of a delta shard (parent-version header,
#: link metadata). Keeps zero-change deltas from producing zero-byte
#: network flows.
DELTA_HEADER_BYTES = 64

#: Approximate wire footprint of one deletion tombstone.
DELTA_TOMBSTONE_BYTES = 24


def _entries_checksum(entries: Dict[Any, Any]) -> str:
    digest = hashlib.sha256()
    for key in sorted(entries, key=repr):
        digest.update(repr(key).encode("utf-8"))
        digest.update(b"=")
        digest.update(repr(entries[key]).encode("utf-8"))
        digest.update(b";")
    return digest.hexdigest()


@dataclass(frozen=True)
class ReplicaKey:
    """Globally unique identity of one stored shard replica.

    ``link`` distinguishes chain positions: base shards store at link 0,
    the k-th delta round at link k — so a delta replica never collides
    with the base replica of the same shard index on the same node.
    """

    state_name: str
    shard_index: int
    replica_index: int
    link: int = 0

    def __repr__(self) -> str:
        suffix = f".d{self.link}" if self.link else ""
        return f"{self.state_name}/s{self.shard_index}.r{self.replica_index}{suffix}"


class Shard:
    """One horizontal partition of a state snapshot."""

    #: Chain position: 0 for base shards, k for the k-th delta round.
    chain_link: int = 0
    #: Version this shard's payload diffs against (None for base shards).
    parent_version: Optional[StateVersion] = None

    def __init__(
        self,
        state_name: str,
        index: int,
        num_shards: int,
        version: StateVersion,
        entries: Optional[Dict[Any, Any]] = None,
        size_bytes: Optional[int] = None,
    ) -> None:
        if not 0 <= index < num_shards:
            raise ShardError(f"shard index {index} out of range for m={num_shards}")
        if entries is None and size_bytes is None:
            raise ShardError("a shard needs either entries or an explicit size")
        self.state_name = state_name
        self.index = index
        self.num_shards = num_shards
        self.version = version
        self.entries = entries
        if size_bytes is not None:
            self.size_bytes = int(size_bytes)
        else:
            from repro.state.store import estimate_entry_bytes

            self.size_bytes = sum(estimate_entry_bytes(k, v) for k, v in entries.items())
        self.checksum = (
            _entries_checksum(entries)
            if entries is not None
            else hashlib.sha256(
                f"{state_name}/{index}/{num_shards}/{version!r}/{self.size_bytes}".encode()
            ).hexdigest()
        )

    @property
    def synthetic(self) -> bool:
        """True when the shard models size only (no materialized entries)."""
        return self.entries is None

    @classmethod
    def synthetic_shard(
        cls,
        state_name: str,
        index: int,
        num_shards: int,
        version: StateVersion,
        size_bytes: int,
    ) -> "Shard":
        """A size-only shard for large-state experiments."""
        if size_bytes < 0:
            raise ShardError("shard size must be non-negative")
        return cls(state_name, index, num_shards, version, entries=None, size_bytes=size_bytes)

    def verify(self) -> bool:
        """Recompute and compare the checksum (materialized shards only)."""
        if self.entries is None:
            return True
        return _entries_checksum(self.entries) == self.checksum

    def sub_shards(self, count: int) -> List["SubShard"]:
        """Split into ``count`` sub-shards for tree-structured recovery."""
        if count <= 0:
            raise ShardError("sub-shard count must be positive")
        if self.entries is not None:
            keys = sorted(self.entries, key=repr)
            buckets: List[Dict[Any, Any]] = [{} for _ in range(count)]
            for i, key in enumerate(keys):
                buckets[i % count][key] = self.entries[key]
            return [
                SubShard(self, j, count, entries=bucket)
                for j, bucket in enumerate(buckets)
            ]
        base = self.size_bytes // count
        remainder = self.size_bytes - base * count
        return [
            SubShard(self, j, count, size_bytes=base + (1 if j < remainder else 0))
            for j in range(count)
        ]

    def __repr__(self) -> str:
        kind = "synthetic" if self.synthetic else f"{len(self.entries)} entries"
        return (
            f"Shard({self.state_name!r}, {self.index}/{self.num_shards}, "
            f"{self.size_bytes}B, {kind})"
        )


class DeltaShard(Shard):
    """A shard carrying only the keys changed since a parent version.

    The payload is the changed/inserted entries for this shard index plus
    tombstones (``deletions``) for keys removed since ``parent_version``.
    Applying a delta means: upsert every entry, then drop every tombstoned
    key. Synthetic delta shards model size only, like synthetic bases.
    """

    def __init__(
        self,
        state_name: str,
        index: int,
        num_shards: int,
        version: StateVersion,
        parent_version: StateVersion,
        chain_link: int,
        entries: Optional[Dict[Any, Any]] = None,
        deletions: Tuple[Any, ...] = (),
        size_bytes: Optional[int] = None,
    ) -> None:
        if chain_link < 1:
            raise ShardError("delta shards start at chain link 1")
        if not parent_version < version:
            raise ShardError(
                f"delta version {version!r} must follow parent {parent_version!r}"
            )
        self.parent_version = parent_version
        self.chain_link = chain_link
        self.deletions = tuple(sorted(deletions, key=repr))
        if size_bytes is None and entries is not None:
            from repro.state.store import estimate_entry_bytes

            size_bytes = (
                sum(estimate_entry_bytes(k, v) for k, v in entries.items())
                + DELTA_TOMBSTONE_BYTES * len(self.deletions)
                + DELTA_HEADER_BYTES
            )
        super().__init__(
            state_name, index, num_shards, version,
            entries=entries, size_bytes=size_bytes,
        )
        # Fold the delta-specific identity (parent link, tombstones) into
        # the checksum so two deltas with equal entries but different
        # lineage never alias.
        digest = hashlib.sha256(self.checksum.encode("utf-8"))
        digest.update(f"|parent={self.parent_version!r}|link={self.chain_link}".encode())
        for key in self.deletions:
            digest.update(b"|del=")
            digest.update(repr(key).encode("utf-8"))
        self.checksum = digest.hexdigest()

    @classmethod
    def synthetic_delta(
        cls,
        state_name: str,
        index: int,
        num_shards: int,
        version: StateVersion,
        parent_version: StateVersion,
        chain_link: int,
        size_bytes: int,
    ) -> "DeltaShard":
        """A size-only delta shard for large-state experiments."""
        if size_bytes < 0:
            raise ShardError("delta shard size must be non-negative")
        return cls(
            state_name, index, num_shards, version, parent_version,
            chain_link, entries=None, size_bytes=size_bytes,
        )

    def verify(self) -> bool:
        """Recompute and compare the checksum (materialized deltas only)."""
        if self.entries is None:
            return True
        digest = hashlib.sha256(_entries_checksum(self.entries).encode("utf-8"))
        digest.update(f"|parent={self.parent_version!r}|link={self.chain_link}".encode())
        for key in self.deletions:
            digest.update(b"|del=")
            digest.update(repr(key).encode("utf-8"))
        return digest.hexdigest() == self.checksum

    def __repr__(self) -> str:
        kind = "synthetic" if self.synthetic else (
            f"{len(self.entries)} entries, {len(self.deletions)} tombstones"
        )
        return (
            f"DeltaShard({self.state_name!r}, {self.index}/{self.num_shards}, "
            f"link {self.chain_link}, {self.size_bytes}B, {kind})"
        )


class SubShard:
    """A fraction of one shard (``s_{i,j}`` in Fig. 5)."""

    def __init__(
        self,
        parent: Shard,
        sub_index: int,
        num_sub_shards: int,
        entries: Optional[Dict[Any, Any]] = None,
        size_bytes: Optional[int] = None,
    ) -> None:
        if not 0 <= sub_index < num_sub_shards:
            raise ShardError(
                f"sub-shard index {sub_index} out of range for {num_sub_shards}"
            )
        self.parent = parent
        self.sub_index = sub_index
        self.num_sub_shards = num_sub_shards
        self.entries = entries
        if size_bytes is not None:
            self.size_bytes = int(size_bytes)
        elif entries is not None:
            from repro.state.store import estimate_entry_bytes

            self.size_bytes = sum(estimate_entry_bytes(k, v) for k, v in entries.items())
        else:
            raise ShardError("a sub-shard needs either entries or a size")

    def __repr__(self) -> str:
        return (
            f"SubShard({self.parent.state_name!r}, s{self.parent.index}."
            f"{self.sub_index}/{self.num_sub_shards}, {self.size_bytes}B)"
        )


class ShardReplica:
    """One stored copy of a shard on a peer node."""

    # Warm-standby copies (``repro.recovery.standby``) are flagged so
    # diagnosis/rebalancing treat them as deliberate concentration rather
    # than load skew to disperse.
    standby = False

    def __init__(self, shard: Shard, replica_index: int, num_replicas: int) -> None:
        if not 0 <= replica_index < num_replicas:
            raise ShardError(
                f"replica index {replica_index} out of range for n={num_replicas}"
            )
        self.shard = shard
        self.replica_index = replica_index
        self.num_replicas = num_replicas

    @property
    def key(self) -> ReplicaKey:
        return ReplicaKey(
            self.shard.state_name,
            self.shard.index,
            self.replica_index,
            link=self.shard.chain_link,
        )

    @property
    def size_bytes(self) -> int:
        return self.shard.size_bytes

    def __repr__(self) -> str:
        return f"ShardReplica({self.key!r}, {self.size_bytes}B)"
