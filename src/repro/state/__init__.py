"""State layer: operator state, shards, replication, placement, versions.

Layer 2 of the SR3 design (Sec. 3.3): each operator's state lives in an
in-memory hashtable; periodically it is divided into ``m`` shards, each
replicated ``n`` times and distributed to peer nodes so that, on failure,
different sets of available shards reconstruct the lost state in parallel.
"""

from repro.state.version import StateVersion, VersionClock
from repro.state.store import StateSnapshot, StateStore
from repro.state.shard import DeltaShard, Shard, ShardReplica, SubShard
from repro.state.partitioner import merge_shards, partition_snapshot, partition_synthetic
from repro.state.chain import (
    ChainLink,
    ChainPlan,
    CompactionPolicy,
    VersionChain,
    chain_digest,
    diff_snapshots,
    partition_delta,
    reconstruct_chain,
)
from repro.state.placement import (
    HashPlacement,
    LeafSetPlacement,
    PlacedShard,
    PlacementPlan,
)

__all__ = [
    "StateVersion",
    "VersionClock",
    "StateSnapshot",
    "StateStore",
    "DeltaShard",
    "Shard",
    "ShardReplica",
    "SubShard",
    "merge_shards",
    "partition_snapshot",
    "partition_synthetic",
    "ChainLink",
    "ChainPlan",
    "CompactionPolicy",
    "VersionChain",
    "chain_digest",
    "diff_snapshots",
    "partition_delta",
    "reconstruct_chain",
    "HashPlacement",
    "LeafSetPlacement",
    "PlacedShard",
    "PlacementPlan",
]
