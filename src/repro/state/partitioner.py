"""Partitioning snapshots into shards and merging shards back.

The partitioner implements ``StateSplit`` from the SR3 API (Table 2): it
divides a state into ``m`` shards by stable key hashing (so the same key
always lands in the same shard across save rounds) and creates ``n``
replicas of each. :func:`merge_shards` is the inverse used by every
recovery mechanism, with completeness and version checks.
"""

from __future__ import annotations

import hashlib
from typing import Any, Dict, List, Sequence

from repro.errors import IntegrityError, ShardError, VersionConflictError
from repro.state.shard import Shard, ShardReplica
from repro.state.store import StateSnapshot
from repro.state.version import StateVersion


def shard_index_for_key(key: Any, num_shards: int) -> int:
    """Stable shard assignment of one state key."""
    if num_shards <= 0:
        raise ShardError("num_shards must be positive")
    digest = hashlib.sha256(repr(key).encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") % num_shards


def partition_snapshot(snapshot: StateSnapshot, num_shards: int) -> List[Shard]:
    """Split a materialized snapshot into ``num_shards`` shards."""
    if num_shards <= 0:
        raise ShardError("num_shards must be positive")
    buckets: List[Dict[Any, Any]] = [{} for _ in range(num_shards)]
    for key, value in snapshot.items():
        buckets[shard_index_for_key(key, num_shards)][key] = value
    return [
        Shard(snapshot.name, i, num_shards, snapshot.version, entries=bucket)
        for i, bucket in enumerate(buckets)
    ]


def partition_synthetic(
    state_name: str,
    total_bytes: int,
    num_shards: int,
    version: StateVersion,
) -> List[Shard]:
    """Split a size-only state into equal synthetic shards."""
    if total_bytes < 0:
        raise ShardError("state size must be non-negative")
    if num_shards <= 0:
        raise ShardError("num_shards must be positive")
    base = total_bytes // num_shards
    remainder = total_bytes - base * num_shards
    return [
        Shard.synthetic_shard(
            state_name,
            i,
            num_shards,
            version,
            base + (1 if i < remainder else 0),
        )
        for i in range(num_shards)
    ]


def replicate(shards: Sequence[Shard], num_replicas: int) -> List[ShardReplica]:
    """Create ``num_replicas`` replicas of every shard."""
    if num_replicas <= 0:
        raise ShardError("num_replicas must be positive")
    return [
        ShardReplica(shard, r, num_replicas)
        for shard in shards
        for r in range(num_replicas)
    ]


def _sub_bucket_for_key(key: Any, num_shards: int) -> int:
    """The next hash bit above the shard index: which half of a split.

    Derived from the same digest as :func:`shard_index_for_key` but from
    the quotient rather than the remainder, so it is independent of the
    index and stable across save rounds.
    """
    digest = hashlib.sha256(repr(key).encode("utf-8")).digest()
    return (int.from_bytes(digest[:8], "big") // num_shards) % 2


def _relabel(shard: Shard, new_index: int, new_count: int) -> Shard:
    """The same shard contents under a new (index, num_shards) label."""
    if shard.synthetic:
        return Shard.synthetic_shard(
            shard.state_name, new_index, new_count, shard.version, shard.size_bytes
        )
    return Shard(
        shard.state_name,
        new_index,
        new_count,
        shard.version,
        entries=dict(shard.entries),
    )


def _check_base_partition(shards: Sequence[Shard]) -> None:
    if any(getattr(s, "chain_link", 0) != 0 for s in shards):
        raise ShardError(
            "split/merge operate on the base partition; compact the delta "
            "chain first"
        )


def split_shard(shards: Sequence[Shard], index: int) -> List[Shard]:
    """Split shard ``index``'s key range in two: ``m`` shards become ``m+1``.

    The hot shard's keys divide by the next hash bit above the index (so
    the assignment stays deterministic per key); synthetic shards split
    byte-for-byte in half. Index remapping: shards up to ``index`` keep
    their positions, the new upper half lands at ``index + 1``, and every
    later shard shifts up by one — the result is again a complete
    partition (``check_reconstruction_set`` passes) whose merged snapshot
    equals the input's, so ``state_checksums()`` ground truth is preserved
    through the following save round.
    """
    version = check_reconstruction_set(shards)
    _check_base_partition(shards)
    ordered = sorted(shards, key=lambda s: s.index)
    old_count = len(ordered)
    if not 0 <= index < old_count:
        raise ShardError(f"shard index {index} out of range for m={old_count}")
    hot = ordered[index]
    new_count = old_count + 1
    name = hot.state_name
    if hot.synthetic:
        upper_bytes = hot.size_bytes // 2
        lower = Shard.synthetic_shard(
            name, index, new_count, version, hot.size_bytes - upper_bytes
        )
        upper = Shard.synthetic_shard(name, index + 1, new_count, version, upper_bytes)
    else:
        halves: List[Dict[Any, Any]] = [{}, {}]
        for key, value in hot.entries.items():
            halves[_sub_bucket_for_key(key, old_count)][key] = value
        lower = Shard(name, index, new_count, version, entries=halves[0])
        upper = Shard(name, index + 1, new_count, version, entries=halves[1])
    result: List[Shard] = []
    for shard in ordered[:index]:
        result.append(_relabel(shard, shard.index, new_count))
    result.extend([lower, upper])
    for shard in ordered[index + 1 :]:
        result.append(_relabel(shard, shard.index + 1, new_count))
    return result


def merge_shard_pair(shards: Sequence[Shard], index_a: int, index_b: int) -> List[Shard]:
    """Merge two cold shards into one: ``m`` shards become ``m-1``.

    The pair's entries (disjoint by construction) union into the lower
    index; every shard above the higher index shifts down by one. Like
    :func:`split_shard`, the result is a complete partition whose merged
    snapshot equals the input's.
    """
    version = check_reconstruction_set(shards)
    _check_base_partition(shards)
    ordered = sorted(shards, key=lambda s: s.index)
    old_count = len(ordered)
    if old_count < 2:
        raise ShardError("cannot merge below one shard")
    low, high = sorted((index_a, index_b))
    if low == high:
        raise ShardError("cannot merge a shard with itself")
    if not 0 <= low < high < old_count:
        raise ShardError(
            f"merge pair ({index_a}, {index_b}) out of range for m={old_count}"
        )
    a, b = ordered[low], ordered[high]
    if a.synthetic != b.synthetic:
        raise ShardError("cannot merge a synthetic shard with a materialized one")
    new_count = old_count - 1
    name = a.state_name
    if a.synthetic:
        merged = Shard.synthetic_shard(
            name, low, new_count, version, a.size_bytes + b.size_bytes
        )
    else:
        entries = dict(a.entries)
        for key, value in b.entries.items():
            if key in entries:
                raise ShardError(f"key {key!r} appears in both merge shards")
            entries[key] = value
        merged = Shard(name, low, new_count, version, entries=entries)
    result: List[Shard] = []
    for shard in ordered:
        if shard.index == high:
            continue
        if shard.index == low:
            result.append(merged)
        elif shard.index > high:
            result.append(_relabel(shard, shard.index - 1, new_count))
        else:
            result.append(_relabel(shard, shard.index, new_count))
    return result


def check_reconstruction_set(shards: Sequence[Shard]) -> StateVersion:
    """Validate that ``shards`` form a complete, consistent partition.

    Checks: one shard per index, a single ``num_shards``, a single state
    name, and a single version — SR3's version control guarantees recovery
    never mixes shards from different save rounds (Sec. 4).
    Returns the common version.
    """
    if not shards:
        raise ShardError("cannot reconstruct from zero shards")
    names = {s.state_name for s in shards}
    if len(names) != 1:
        raise ShardError(f"shards from different states: {sorted(names)}")
    counts = {s.num_shards for s in shards}
    if len(counts) != 1:
        raise ShardError(f"inconsistent num_shards: {sorted(counts)}")
    versions = {s.version for s in shards}
    if len(versions) != 1:
        raise VersionConflictError(
            f"shards from different save rounds: {sorted(versions)}"
        )
    expected = counts.pop()
    indexes = sorted(s.index for s in shards)
    if indexes != list(range(expected)):
        missing = sorted(set(range(expected)) - set(indexes))
        raise ShardError(f"incomplete shard set; missing indexes {missing}")
    return versions.pop()


def merge_shards(shards: Sequence[Shard]) -> StateSnapshot:
    """Rebuild the full snapshot from one complete shard set.

    Materialized shards are checksum-verified and merged key-by-key;
    synthetic shards merge by size only (their "snapshot" carries no
    entries but reports the reconstructed byte count).
    """
    version = check_reconstruction_set(shards)
    state_name = shards[0].state_name
    if all(s.synthetic for s in shards):
        snapshot = StateSnapshot(state_name, {}, version)
        snapshot.size_bytes = sum(s.size_bytes for s in shards)
        return snapshot
    if any(s.synthetic for s in shards):
        raise ShardError("cannot merge a mix of synthetic and materialized shards")
    merged: Dict[Any, Any] = {}
    for shard in sorted(shards, key=lambda s: s.index):
        if not shard.verify():
            raise IntegrityError(f"checksum mismatch on {shard!r}")
        for key, value in shard.entries.items():
            if key in merged:
                raise ShardError(f"key {key!r} appears in two shards")
            merged[key] = value
    return StateSnapshot(state_name, merged, version)
