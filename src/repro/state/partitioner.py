"""Partitioning snapshots into shards and merging shards back.

The partitioner implements ``StateSplit`` from the SR3 API (Table 2): it
divides a state into ``m`` shards by stable key hashing (so the same key
always lands in the same shard across save rounds) and creates ``n``
replicas of each. :func:`merge_shards` is the inverse used by every
recovery mechanism, with completeness and version checks.
"""

from __future__ import annotations

import hashlib
from typing import Any, Dict, List, Sequence

from repro.errors import IntegrityError, ShardError, VersionConflictError
from repro.state.shard import Shard, ShardReplica
from repro.state.store import StateSnapshot
from repro.state.version import StateVersion


def shard_index_for_key(key: Any, num_shards: int) -> int:
    """Stable shard assignment of one state key."""
    if num_shards <= 0:
        raise ShardError("num_shards must be positive")
    digest = hashlib.sha256(repr(key).encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") % num_shards


def partition_snapshot(snapshot: StateSnapshot, num_shards: int) -> List[Shard]:
    """Split a materialized snapshot into ``num_shards`` shards."""
    if num_shards <= 0:
        raise ShardError("num_shards must be positive")
    buckets: List[Dict[Any, Any]] = [{} for _ in range(num_shards)]
    for key, value in snapshot.items():
        buckets[shard_index_for_key(key, num_shards)][key] = value
    return [
        Shard(snapshot.name, i, num_shards, snapshot.version, entries=bucket)
        for i, bucket in enumerate(buckets)
    ]


def partition_synthetic(
    state_name: str,
    total_bytes: int,
    num_shards: int,
    version: StateVersion,
) -> List[Shard]:
    """Split a size-only state into equal synthetic shards."""
    if total_bytes < 0:
        raise ShardError("state size must be non-negative")
    if num_shards <= 0:
        raise ShardError("num_shards must be positive")
    base = total_bytes // num_shards
    remainder = total_bytes - base * num_shards
    return [
        Shard.synthetic_shard(
            state_name,
            i,
            num_shards,
            version,
            base + (1 if i < remainder else 0),
        )
        for i in range(num_shards)
    ]


def replicate(shards: Sequence[Shard], num_replicas: int) -> List[ShardReplica]:
    """Create ``num_replicas`` replicas of every shard."""
    if num_replicas <= 0:
        raise ShardError("num_replicas must be positive")
    return [
        ShardReplica(shard, r, num_replicas)
        for shard in shards
        for r in range(num_replicas)
    ]


def check_reconstruction_set(shards: Sequence[Shard]) -> StateVersion:
    """Validate that ``shards`` form a complete, consistent partition.

    Checks: one shard per index, a single ``num_shards``, a single state
    name, and a single version — SR3's version control guarantees recovery
    never mixes shards from different save rounds (Sec. 4).
    Returns the common version.
    """
    if not shards:
        raise ShardError("cannot reconstruct from zero shards")
    names = {s.state_name for s in shards}
    if len(names) != 1:
        raise ShardError(f"shards from different states: {sorted(names)}")
    counts = {s.num_shards for s in shards}
    if len(counts) != 1:
        raise ShardError(f"inconsistent num_shards: {sorted(counts)}")
    versions = {s.version for s in shards}
    if len(versions) != 1:
        raise VersionConflictError(
            f"shards from different save rounds: {sorted(versions)}"
        )
    expected = counts.pop()
    indexes = sorted(s.index for s in shards)
    if indexes != list(range(expected)):
        missing = sorted(set(range(expected)) - set(indexes))
        raise ShardError(f"incomplete shard set; missing indexes {missing}")
    return versions.pop()


def merge_shards(shards: Sequence[Shard]) -> StateSnapshot:
    """Rebuild the full snapshot from one complete shard set.

    Materialized shards are checksum-verified and merged key-by-key;
    synthetic shards merge by size only (their "snapshot" carries no
    entries but reports the reconstructed byte count).
    """
    version = check_reconstruction_set(shards)
    state_name = shards[0].state_name
    if all(s.synthetic for s in shards):
        snapshot = StateSnapshot(state_name, {}, version)
        snapshot.size_bytes = sum(s.size_bytes for s in shards)
        return snapshot
    if any(s.synthetic for s in shards):
        raise ShardError("cannot merge a mix of synthetic and materialized shards")
    merged: Dict[Any, Any] = {}
    for shard in sorted(shards, key=lambda s: s.index):
        if not shard.verify():
            raise IntegrityError(f"checksum mismatch on {shard!r}")
        for key, value in shard.entries.items():
            if key in merged:
                raise ShardError(f"key {key!r} appears in two shards")
            merged[key] = value
    return StateSnapshot(state_name, merged, version)
