"""The in-memory hashtable state store.

SR3 keeps operator state "in an in-memory hashtable data structure"
(Sec. 3.3, Layer 2; Table 1 row "SR3"). :class:`StateStore` is that
hashtable with byte accounting and snapshotting; :class:`StateSnapshot` is
the immutable captured image a save round partitions into shards.
"""

from __future__ import annotations

import sys
from typing import Any, Dict, Iterator, Set, Tuple

from repro.errors import StateError
from repro.state.version import StateVersion, VersionClock


def estimate_entry_bytes(key: Any, value: Any) -> int:
    """Approximate serialized footprint of one key/value pair.

    Used for shard sizing; precise enough because experiments control
    state size through entry counts and payload strings.
    """
    return _estimate(key) + _estimate(value)


def _estimate(obj: Any) -> int:
    if isinstance(obj, str):
        return len(obj.encode("utf-8")) + 8
    if isinstance(obj, bytes):
        return len(obj) + 8
    if isinstance(obj, (int, float)):
        return 16
    if isinstance(obj, (list, tuple, set, frozenset)):
        return 16 + sum(_estimate(item) for item in obj)
    if isinstance(obj, dict):
        return 16 + sum(_estimate(k) + _estimate(v) for k, v in obj.items())
    return max(16, sys.getsizeof(obj))


class StateSnapshot:
    """An immutable image of a store at one version."""

    def __init__(self, name: str, entries: Dict[Any, Any], version: StateVersion) -> None:
        self.name = name
        self._entries = dict(entries)
        self.version = version
        self.size_bytes = sum(estimate_entry_bytes(k, v) for k, v in entries.items())

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Any) -> bool:
        return key in self._entries

    def get(self, key: Any, default: Any = None) -> Any:
        return self._entries.get(key, default)

    def items(self) -> Iterator[Tuple[Any, Any]]:
        return iter(self._entries.items())

    def as_dict(self) -> Dict[Any, Any]:
        return dict(self._entries)

    def __repr__(self) -> str:
        return f"StateSnapshot({self.name!r}, {len(self)} entries, {self.version!r})"


class StateStore:
    """A mutable keyed state store for one stateful operator."""

    def __init__(self, name: str) -> None:
        if not name:
            raise StateError("state store needs a non-empty name")
        self.name = name
        self._entries: Dict[Any, Any] = {}
        self._size_bytes = 0
        self.clock = VersionClock()
        # Changed-key tracking since the last mark_clean() — the source of
        # truth incremental saves diff against (see repro.state.chain).
        self._dirty: Set[Any] = set()
        self._deleted: Set[Any] = set()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Any) -> bool:
        return key in self._entries

    @property
    def size_bytes(self) -> int:
        """Approximate in-memory footprint of all entries."""
        return self._size_bytes

    def put(self, key: Any, value: Any) -> None:
        """Insert or replace one entry."""
        if key in self._entries:
            self._size_bytes -= estimate_entry_bytes(key, self._entries[key])
        self._entries[key] = value
        self._size_bytes += estimate_entry_bytes(key, value)
        self._dirty.add(key)
        self._deleted.discard(key)

    def get(self, key: Any, default: Any = None) -> Any:
        return self._entries.get(key, default)

    def update(self, key: Any, fn, initial: Any = None) -> Any:
        """Read-modify-write: ``store[key] = fn(current or initial)``."""
        new_value = fn(self._entries.get(key, initial))
        self.put(key, new_value)
        return new_value

    def delete(self, key: Any) -> bool:
        """Remove an entry; returns True if it existed."""
        if key not in self._entries:
            return False
        self._size_bytes -= estimate_entry_bytes(key, self._entries[key])
        del self._entries[key]
        self._deleted.add(key)
        self._dirty.discard(key)
        return True

    def items(self) -> Iterator[Tuple[Any, Any]]:
        return iter(self._entries.items())

    def keys(self) -> Iterator[Any]:
        return iter(self._entries.keys())

    def clear(self) -> None:
        self._deleted |= set(self._entries)
        self._dirty.clear()
        self._entries.clear()
        self._size_bytes = 0

    def dirty_keys(self) -> Set[Any]:
        """Keys inserted or updated since the last :meth:`mark_clean`."""
        return set(self._dirty)

    def deleted_keys(self) -> Set[Any]:
        """Keys removed since the last :meth:`mark_clean`."""
        return set(self._deleted)

    def mark_clean(self) -> None:
        """Reset change tracking (called once a save round captured it)."""
        self._dirty.clear()
        self._deleted.clear()

    def snapshot(self, timestamp: float) -> StateSnapshot:
        """Capture an immutable image stamped with the next version."""
        return StateSnapshot(self.name, self._entries, self.clock.next(timestamp))

    def restore(self, snapshot: StateSnapshot) -> None:
        """Replace contents with a recovered snapshot (post-recovery load)."""
        if snapshot.name != self.name:
            raise StateError(
                f"snapshot {snapshot.name!r} does not belong to store {self.name!r}"
            )
        self._entries = snapshot.as_dict()
        self._size_bytes = sum(
            estimate_entry_bytes(k, v) for k, v in self._entries.items()
        )
        self._dirty.clear()
        self._deleted.clear()
        self.clock.observe(snapshot.version)

    def __repr__(self) -> str:
        return f"StateStore({self.name!r}, {len(self)} entries, {self._size_bytes}B)"
