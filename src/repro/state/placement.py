"""Replica placement over the overlay.

Two strategies, matching the paper's two uses of the ring:

- :class:`LeafSetPlacement` scatters shard replicas round-robin across the
  owner node's leaf set — nodes "geographically close to the original node
  (e.g., within the same rack)" with abundant bandwidth (Sec. 3.4). This
  is what the star/line/tree mechanisms recover from.
- :class:`HashPlacement` hashes every (app, state, shard, replica) tuple to
  its own ring position, spreading the aggregate state of many concurrent
  applications uniformly — the load-balance property of Fig. 11.

Both guarantee the replicas of one shard land on distinct nodes, never on
the owner itself (a replica co-located with the state it protects is lost
with it).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.dht.node import DhtNode
from repro.dht.overlay import Overlay
from repro.errors import StateError
from repro.state.shard import Shard, ShardReplica
from repro.util.ids import node_id_from_name


@dataclass(frozen=True)
class PlacedShard:
    """One replica assigned to one storage node."""

    replica: ShardReplica
    node: DhtNode


@dataclass
class PlacementPlan:
    """The full placement of one save round."""

    owner: Optional[DhtNode]
    placements: List[PlacedShard] = field(default_factory=list)

    def nodes(self) -> List[DhtNode]:
        """All distinct storage nodes used by this plan."""
        seen: Dict[object, DhtNode] = {}
        for placed in self.placements:
            seen[placed.node.node_id] = placed.node
        return list(seen.values())

    def for_shard(self, shard_index: int) -> List[PlacedShard]:
        """Every replica placement of one shard."""
        return [p for p in self.placements if p.replica.shard.index == shard_index]

    def providers_for(self, shard_index: int) -> List[PlacedShard]:
        """Alive nodes still holding a replica of the shard."""
        return [
            p
            for p in self.for_shard(shard_index)
            if p.node.alive and p.node.get_shard(p.replica.key) is not None
        ]

    def shard_indexes(self) -> List[int]:
        return sorted({p.replica.shard.index for p in self.placements})

    def store_all(self) -> None:
        """Write every replica into its node's shard store (instantly).

        The timed transfer of shard bytes is the save pipeline's job
        (:mod:`repro.recovery.save`); this merely installs the data so
        providers can serve it.
        """
        for placed in self.placements:
            placed.node.store_shard(placed.replica.key, placed.replica)

    def available_shards(self) -> List[Shard]:
        """One surviving shard object per index, if any replica survives."""
        result: List[Shard] = []
        for index in self.shard_indexes():
            providers = self.providers_for(index)
            if providers:
                result.append(providers[0].replica.shard)
        return result


def migrate_replica(
    network,
    plan: PlacementPlan,
    shard_index: int,
    source: DhtNode,
    target: DhtNode,
    on_done=None,
    tag: str = "state.migrate",
    parent_span=None,
):
    """Live-migrate one replica of a shard from ``source`` to ``target``.

    The bytes ride an ordinary network flow (the same app-flow-contended
    path every other transfer uses); on arrival the replica is stored on
    the target, dropped from the source, and the plan's placement swaps in
    place — checksums, versions, and the delta chain are untouched, so no
    ground-truth re-anchor is needed. Placement invariants are enforced:
    never onto the owner, never co-locating two replicas of one shard.

    Returns the flow driving the copy; the caller runs the simulator (or
    lets the live loop tick) until it lands, then ``on_done(placed)``
    fires with the new placement.
    """
    candidates = [
        p
        for p in plan.for_shard(shard_index)
        if p.node.node_id == source.node_id
        and source.get_shard(p.replica.key) is not None
    ]
    if not candidates:
        raise StateError(
            f"{source.name} holds no live replica of shard {shard_index}"
        )
    placed = candidates[0]
    replica = placed.replica
    if not target.alive:
        raise StateError(f"migration target {target.name} is dead")
    if plan.owner is not None and target.node_id == plan.owner.node_id:
        raise StateError(
            f"cannot migrate shard {shard_index} onto its owner {target.name}"
        )
    if any(
        p.node.node_id == target.node_id for p in plan.for_shard(shard_index)
    ):
        raise StateError(
            f"{target.name} already holds a replica of shard {shard_index}"
        )

    def landed(flow) -> None:
        target.store_shard(replica.key, replica)
        source.drop_shard(replica.key)
        new_placed = PlacedShard(replica, target)
        try:
            where = plan.placements.index(placed)
        except ValueError:
            plan.placements.append(new_placed)
        else:
            plan.placements[where] = new_placed
        if on_done is not None:
            on_done(new_placed)

    return network.transfer(
        source.host,
        target.host,
        replica.size_bytes,
        on_complete=landed,
        tag=tag,
        parent_span=parent_span,
    )


class LeafSetPlacement:
    """Round-robin placement across the owner's leaf set (Fig. 3)."""

    def place(
        self,
        owner: DhtNode,
        replicas: Sequence[ShardReplica],
        overlay: Overlay,
    ) -> PlacementPlan:
        leaf_nodes = overlay.leaf_set_of(owner)
        if not leaf_nodes:
            raise StateError(f"owner {owner.name} has an empty leaf set")
        num_replicas = max(r.num_replicas for r in replicas) if replicas else 0
        if len(leaf_nodes) < num_replicas:
            raise StateError(
                f"leaf set of {owner.name} ({len(leaf_nodes)} nodes) cannot hold "
                f"{num_replicas} distinct replicas per shard"
            )
        plan = PlacementPlan(owner=owner)
        # Walk the leaf set round-robin; replicas of shard i occupy
        # consecutive leaf positions so they are always distinct nodes.
        cursor = 0
        for replica in sorted(replicas, key=lambda r: (r.shard.index, r.replica_index)):
            node = leaf_nodes[cursor % len(leaf_nodes)]
            # Never co-locate two replicas of the same shard.
            attempts = 0
            while any(
                p.node.node_id == node.node_id
                and p.replica.shard.index == replica.shard.index
                for p in plan.placements
            ):
                cursor += 1
                node = leaf_nodes[cursor % len(leaf_nodes)]
                attempts += 1
                if attempts > len(leaf_nodes):
                    raise StateError("leaf set too small for replica separation")
            plan.placements.append(PlacedShard(replica, node))
            cursor += 1
        return plan


class HashPlacement:
    """DHT-hash placement: each replica keys to its own ring position."""

    def place(
        self,
        owner: Optional[DhtNode],
        replicas: Sequence[ShardReplica],
        overlay: Overlay,
    ) -> PlacementPlan:
        plan = PlacementPlan(owner=owner)
        occupied = set()
        for replica in replicas:
            node = self._target(owner, replica, overlay, occupied)
            occupied.add((node.node_id, replica.shard.index))
            plan.placements.append(PlacedShard(replica, node))
        return plan

    @staticmethod
    def _target(
        owner: Optional[DhtNode],
        replica: ShardReplica,
        overlay: Overlay,
        occupied: set,
    ) -> DhtNode:
        shard = replica.shard
        salt = 0
        while True:
            key = node_id_from_name(
                f"{shard.state_name}/shard-{shard.index}/r{replica.replica_index}/{salt}"
            )
            node = overlay.responsible_node(key)
            owner_clash = owner is not None and node.node_id == owner.node_id
            sibling_clash = (node.node_id, shard.index) in occupied
            if not owner_clash and not sibling_clash:
                return node
            salt += 1
            if salt > 64:
                raise StateError(
                    f"cannot find a distinct node for {replica!r}; overlay too small"
                )
