"""Version chains: base + delta shard sets and chain-aware placement.

A full save round writes a *base* link — the complete partitioned state.
Every incremental round after it appends a *delta* link: ``m`` delta
shards carrying only the keys that changed since the previous link's
version (plus deletion tombstones). Recovery then fetches one surviving
replica per chain *segment* — ``links × m`` shards in total — and replays
base-then-deltas in version order.

:class:`CompactionPolicy` bounds the chain: when it grows past
``max_chain_len`` links or the accumulated delta bytes exceed
``max_delta_ratio`` of the base, the next save is forced full and the
chain resets (the save pipeline's fallback conditions live in
:meth:`repro.recovery.manager.RecoveryManager.save_delta`).

:class:`ChainPlan` presents the whole chain through the
:class:`~repro.state.placement.PlacementPlan` interface the mechanisms
already speak — segment ``k*m + i`` resolves to shard ``i`` of link ``k``
— so star/line/tree/speculation recover chains without knowing they are
chains beyond the ``chain_length``/``delta_bytes`` attributes they
annotate onto their spans.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Any, Dict, List, Sequence, Tuple

from repro.errors import IntegrityError, ShardError, VersionConflictError
from repro.state.partitioner import check_reconstruction_set, shard_index_for_key
from repro.state.shard import DeltaShard, Shard
from repro.state.store import StateSnapshot
from repro.state.version import StateVersion

__all__ = [
    "ChainLink",
    "ChainPlan",
    "CompactionPolicy",
    "VersionChain",
    "chain_digest",
    "diff_snapshots",
    "partition_delta",
    "reconstruct_chain",
]


@dataclass(frozen=True)
class CompactionPolicy:
    """When to stop appending deltas and rewrite a full base.

    ``max_chain_len`` caps the number of links (base included); a longer
    chain means more segments to fetch and replay on recovery.
    ``max_delta_ratio`` caps accumulated delta bytes as a fraction of the
    base — past it, replaying deltas costs more than refetching a base.
    """

    max_chain_len: int = 4
    max_delta_ratio: float = 0.5

    def __post_init__(self) -> None:
        if self.max_chain_len < 1:
            raise ShardError("compaction policy needs max_chain_len >= 1")
        if self.max_delta_ratio <= 0:
            raise ShardError("compaction policy needs a positive max_delta_ratio")


@dataclass
class ChainLink:
    """One save round in a chain: its shards and where they were placed."""

    kind: str  # "base" | "delta"
    version: StateVersion
    shards: List[Shard]
    plan: Any  # PlacementPlan of this round's replicas

    @property
    def bytes(self) -> int:
        return sum(s.size_bytes for s in self.shards)


class VersionChain:
    """The ordered base + delta history of one protected state."""

    def __init__(self, state_name: str) -> None:
        self.state_name = state_name
        self.links: List[ChainLink] = []

    @property
    def length(self) -> int:
        return len(self.links)

    @property
    def num_shards(self) -> int:
        if not self.links:
            raise ShardError(f"chain for {self.state_name!r} has no base link")
        return self.links[0].shards[0].num_shards

    @property
    def tip_version(self) -> StateVersion:
        if not self.links:
            raise ShardError(f"chain for {self.state_name!r} has no base link")
        return self.links[-1].version

    @property
    def base_bytes(self) -> int:
        return self.links[0].bytes if self.links else 0

    @property
    def delta_bytes(self) -> int:
        return sum(link.bytes for link in self.links[1:])

    def reset(self, base_shards: Sequence[Shard], plan: Any) -> None:
        """Start a fresh chain from a full save round."""
        shards = sorted(base_shards, key=lambda s: s.index)
        version = check_reconstruction_set(shards)
        if any(s.chain_link != 0 for s in shards):
            raise ShardError("a chain base must be built from link-0 shards")
        self.links = [ChainLink("base", version, list(shards), plan)]

    def append_delta(self, delta_shards: Sequence[Shard], plan: Any) -> None:
        """Append one delta save round against the current tip."""
        if not self.links:
            raise ShardError(
                f"chain for {self.state_name!r} has no base to delta against"
            )
        shards = sorted(delta_shards, key=lambda s: s.index)
        version = check_reconstruction_set(shards)
        tip = self.tip_version
        link_pos = len(self.links)
        for shard in shards:
            if not isinstance(shard, DeltaShard):
                raise ShardError(f"chain deltas must be DeltaShards, got {shard!r}")
            if shard.parent_version != tip:
                raise VersionConflictError(
                    f"delta parent {shard.parent_version!r} does not match "
                    f"chain tip {tip!r}"
                )
            if shard.chain_link != link_pos:
                raise ShardError(
                    f"delta link {shard.chain_link} out of order; expected {link_pos}"
                )
        self.links.append(ChainLink("delta", version, list(shards), plan))

    def needs_compaction(
        self, policy: CompactionPolicy, extra_delta_bytes: int = 0
    ) -> bool:
        """Would appending another delta round violate the policy?"""
        if not self.links:
            return True
        if self.length + 1 > policy.max_chain_len:
            return True
        base = self.base_bytes
        if base <= 0:
            return True
        ratio = (self.delta_bytes + extra_delta_bytes) / base
        return ratio > policy.max_delta_ratio

    def all_shards(self) -> List[Shard]:
        return [s for link in self.links for s in link.shards]

    def __repr__(self) -> str:
        return (
            f"VersionChain({self.state_name!r}, {self.length} links, "
            f"base {self.base_bytes}B + deltas {self.delta_bytes}B)"
        )


class ChainPlan:
    """A whole chain exposed through the PlacementPlan interface.

    Global segment index ``k * m + i`` maps to shard ``i`` of link ``k``,
    so the base occupies segments ``0..m-1`` and the j-th delta round
    ``j*m..j*m+m-1``. Mechanisms iterate ``shard_indexes()`` and query
    ``providers_for()`` exactly as they would on a flat plan.
    """

    def __init__(self, chain: VersionChain) -> None:
        if not chain.links:
            raise ShardError(f"chain for {chain.state_name!r} has no base link")
        self.chain = chain

    @property
    def owner(self):
        return self.chain.links[0].plan.owner

    @property
    def num_shards(self) -> int:
        return self.chain.num_shards

    @property
    def chain_length(self) -> int:
        return self.chain.length

    @property
    def delta_bytes(self) -> int:
        return self.chain.delta_bytes

    @property
    def placements(self) -> List[Any]:
        return [p for link in self.chain.links for p in link.plan.placements]

    def nodes(self) -> List[Any]:
        seen: Dict[object, Any] = {}
        for placed in self.placements:
            seen[placed.node.node_id] = placed.node
        return list(seen.values())

    def _locate(self, segment: int) -> Tuple[Any, int]:
        m = self.num_shards
        link_pos, index = divmod(segment, m)
        if not 0 <= link_pos < self.chain.length:
            raise ShardError(
                f"segment {segment} out of range for a {self.chain.length}-link "
                f"chain of {m} shards"
            )
        return self.chain.links[link_pos].plan, index

    def for_shard(self, segment: int) -> List[Any]:
        plan, index = self._locate(segment)
        return plan.for_shard(index)

    def providers_for(self, segment: int) -> List[Any]:
        plan, index = self._locate(segment)
        return plan.providers_for(index)

    def shard_indexes(self) -> List[int]:
        return list(range(self.chain.length * self.num_shards))

    def store_all(self) -> None:
        for link in self.chain.links:
            link.plan.store_all()

    def available_shards(self) -> List[Shard]:
        """One surviving shard object per segment, if any replica survives."""
        result: List[Shard] = []
        for segment in self.shard_indexes():
            providers = self.providers_for(segment)
            if providers:
                result.append(providers[0].replica.shard)
        return result

    def __repr__(self) -> str:
        return f"ChainPlan({self.chain!r})"


def diff_snapshots(
    parent: StateSnapshot, current: StateSnapshot
) -> Tuple[Dict[Any, Any], List[Any]]:
    """Changed entries and deleted keys between two snapshots of one state."""
    if parent.name != current.name:
        raise ShardError(
            f"cannot diff snapshots of different states: "
            f"{parent.name!r} vs {current.name!r}"
        )
    if not parent.version < current.version:
        raise VersionConflictError(
            f"diff requires parent {parent.version!r} < current {current.version!r}"
        )
    parent_entries = parent.as_dict()
    changed: Dict[Any, Any] = {}
    for key, value in current.items():
        if key not in parent_entries or parent_entries[key] != value:
            changed[key] = value
    deletions = [key for key in parent_entries if key not in current]
    return changed, deletions


def partition_delta(
    state_name: str,
    changed: Dict[Any, Any],
    deletions: Sequence[Any],
    num_shards: int,
    version: StateVersion,
    parent_version: StateVersion,
    chain_link: int,
) -> List[DeltaShard]:
    """Split one delta round into ``num_shards`` delta shards.

    Every shard index is produced, even when its bucket is empty — uniform
    segments per link keep chain recovery (and the selection model's
    per-link shard term) regular. Keys hash to the same shard index as in
    the base partition, so replaying a delta only ever touches keys the
    base shard owns.
    """
    if num_shards <= 0:
        raise ShardError("num_shards must be positive")
    buckets: List[Dict[Any, Any]] = [{} for _ in range(num_shards)]
    for key, value in changed.items():
        buckets[shard_index_for_key(key, num_shards)][key] = value
    tombstones: List[List[Any]] = [[] for _ in range(num_shards)]
    for key in deletions:
        tombstones[shard_index_for_key(key, num_shards)].append(key)
    return [
        DeltaShard(
            state_name,
            i,
            num_shards,
            version,
            parent_version,
            chain_link,
            entries=buckets[i],
            deletions=tuple(tombstones[i]),
        )
        for i in range(num_shards)
    ]


def _group_links(segments: Sequence[Shard]) -> List[List[Shard]]:
    """Group fetched segments by chain link and validate each round."""
    if not segments:
        raise ShardError("cannot reconstruct from zero chain segments")
    by_link: Dict[int, List[Shard]] = {}
    for shard in segments:
        by_link.setdefault(shard.chain_link, []).append(shard)
    link_ids = sorted(by_link)
    if link_ids != list(range(len(link_ids))):
        missing = sorted(set(range(max(link_ids) + 1)) - set(link_ids))
        raise ShardError(f"chain is missing whole links {missing}")
    ordered: List[List[Shard]] = []
    for link_pos in link_ids:
        shards = sorted(by_link[link_pos], key=lambda s: s.index)
        check_reconstruction_set(shards)
        ordered.append(shards)
    return ordered


def reconstruct_chain(segments: Sequence[Shard]) -> StateSnapshot:
    """Rebuild a snapshot from fetched chain segments, base-then-deltas.

    Applies each delta round in version order on top of the merged base:
    upsert every changed entry, then drop every tombstoned key. Parent
    versions must link (each round's ``parent_version`` equals the prior
    round's version) and every materialized shard is checksum-verified.
    Synthetic chains reconstruct by size: the base byte count stands in
    for the live footprint (deltas overwrite in place).
    """
    rounds = _group_links(segments)
    base = rounds[0]
    if any(s.chain_link != 0 for s in base):
        raise ShardError("link 0 of a chain must be base shards")
    synthetic = all(s.synthetic for s in segments)
    if not synthetic and any(s.synthetic for s in segments):
        raise ShardError("cannot mix synthetic and materialized chain segments")

    state_name = base[0].state_name
    tip_version = base[0].version
    for link_pos, shards in enumerate(rounds[1:], start=1):
        for shard in shards:
            if not isinstance(shard, DeltaShard):
                raise ShardError(
                    f"link {link_pos} must be delta shards, got {shard!r}"
                )
            if shard.parent_version != tip_version:
                raise VersionConflictError(
                    f"link {link_pos} parent {shard.parent_version!r} does not "
                    f"match prior version {tip_version!r}"
                )
        tip_version = shards[0].version

    if synthetic:
        snapshot = StateSnapshot(state_name, {}, tip_version)
        snapshot.size_bytes = sum(s.size_bytes for s in base)
        return snapshot

    merged: Dict[Any, Any] = {}
    for shard in base:
        if not shard.verify():
            raise IntegrityError(f"checksum mismatch on {shard!r}")
        for key, value in shard.entries.items():
            if key in merged:
                raise ShardError(f"key {key!r} appears in two base shards")
            merged[key] = value
    for shards in rounds[1:]:
        for shard in shards:
            if not shard.verify():
                raise IntegrityError(f"checksum mismatch on {shard!r}")
            merged.update(shard.entries)
            for key in shard.deletions:
                merged.pop(key, None)
    return StateSnapshot(state_name, merged, tip_version)


def chain_digest(segments: Sequence[Shard]) -> str:
    """Deterministic digest of a chain's (link, index, checksum) triples.

    Works for synthetic and materialized chains alike — the ground truth
    the chaos invariant compares against after recovery.
    """
    digest = hashlib.sha256()
    for shard in sorted(segments, key=lambda s: (s.chain_link, s.index)):
        digest.update(f"{shard.chain_link}/{shard.index}/{shard.checksum};".encode())
    return digest.hexdigest()
