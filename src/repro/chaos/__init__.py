"""Chaos engineering for SR3: scenario-driven fault campaigns.

Three layers:

- :mod:`repro.chaos.injectors` — composable, seed-deterministic fault
  generators (crash waves, rack failures, Poisson churn, partitions,
  bandwidth flapping, stragglers, mid-recovery re-crashes);
- :mod:`repro.chaos.scenario` — the declarative :class:`Scenario` DSL and
  the shipped catalog/campaigns;
- :mod:`repro.chaos.campaign` — the :class:`ChaosEngine` and campaign
  runner that sweep scenarios across recovery mechanisms, audit every run
  with :mod:`invariant checkers <repro.chaos.invariants>`, and emit a
  deterministic resilience report.
"""

from repro.chaos.campaign import (
    ChaosEngine,
    ResilienceReport,
    RunContext,
    ScenarioOutcome,
    make_mechanism,
    run_campaign,
    run_scenario,
    streaming_probe,
)
from repro.chaos.injectors import (
    INJECTOR_KINDS,
    BandwidthFlap,
    CrashWave,
    Injector,
    MidRecoveryCrash,
    NetworkPartition,
    PoissonChurn,
    RackFailure,
    Straggler,
    make_injector,
)
from repro.chaos.invariants import (
    DEFAULT_CHECKERS,
    FlowAccounting,
    ChainChecksumConsistent,
    InvariantChecker,
    InvariantReport,
    NoOrphanedReplicas,
    RecoveryLatency,
    RingConsistency,
    StateIntegrity,
    check_invariants,
)
from repro.chaos.scenario import (
    CAMPAIGNS,
    KNOWN_MECHANISMS,
    SCENARIOS,
    SR3_MECHANISMS,
    Scenario,
    campaign_scenarios,
)

__all__ = [
    "BandwidthFlap",
    "CAMPAIGNS",
    "ChainChecksumConsistent",
    "ChaosEngine",
    "CrashWave",
    "DEFAULT_CHECKERS",
    "FlowAccounting",
    "INJECTOR_KINDS",
    "Injector",
    "InvariantChecker",
    "InvariantReport",
    "KNOWN_MECHANISMS",
    "MidRecoveryCrash",
    "NetworkPartition",
    "NoOrphanedReplicas",
    "PoissonChurn",
    "RackFailure",
    "RecoveryLatency",
    "ResilienceReport",
    "RingConsistency",
    "RunContext",
    "SCENARIOS",
    "SR3_MECHANISMS",
    "Scenario",
    "ScenarioOutcome",
    "StateIntegrity",
    "Straggler",
    "campaign_scenarios",
    "check_invariants",
    "make_injector",
    "make_mechanism",
    "run_campaign",
    "run_scenario",
    "streaming_probe",
]
