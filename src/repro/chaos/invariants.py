"""Post-run invariant checkers: what "survived" actually means.

After a fault campaign runs to quiescence, these checkers audit the final
world state. Each returns a list of violation messages (empty = pass).
``hard`` checkers turn a run into **failed**; ``soft`` checkers (latency)
only degrade it — the recovery finished correctly, just slowly.

The checkers deliberately read ground truth — shard checksums captured
before the failures, the overlay's live membership, the network's flow
ledger — rather than anything the recovery path reports about itself.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List

if TYPE_CHECKING:  # pragma: no cover - type hints only
    from repro.chaos.campaign import RunContext


@dataclass(frozen=True)
class InvariantChecker:
    """Base: one post-run assertion over the final world state."""

    name: str = ""
    severity: str = "hard"  # "hard" -> failed, "soft" -> degraded

    def check(self, run: "RunContext") -> List[str]:  # pragma: no cover
        raise NotImplementedError


@dataclass(frozen=True)
class StateIntegrity(InvariantChecker):
    """Recovered state byte-equals the pre-failure snapshot.

    For every state that completed recovery: the result must account for
    every shard of the pre-failure snapshot, and every replica still
    stored anywhere must carry the checksum captured at save time — the
    image the recovery read is exactly the image that was saved. (Replicas
    lost *after* the recovery completed — e.g. to ongoing churn — are a
    durability concern, not an integrity violation.) Applies to the DHT
    mechanisms only; the checkpointing baseline restores from remote
    storage, outside the shard stores.
    """

    name: str = "state-integrity"

    def check(self, run: "RunContext") -> List[str]:
        if run.mechanism == "checkpointing":
            return []
        violations: List[str] = []
        for state_name in sorted(run.results):
            registered = run.engine.manager.states.get(state_name)
            if registered is None or registered.plan is None:
                violations.append(f"{state_name}: recovered without a plan")
                continue
            expected = run.pre_checksums.get(state_name, {})
            result = run.results[state_name]
            if result.shards_recovered != len(expected):
                violations.append(
                    f"{state_name}: recovery accounted for "
                    f"{result.shards_recovered} shards, snapshot had "
                    f"{len(expected)}"
                )
            for index in sorted(expected):
                for placed in registered.plan.providers_for(index):
                    checksum = placed.replica.shard.checksum
                    if checksum != expected[index]:
                        violations.append(
                            f"{state_name}: shard {index} replica on "
                            f"{placed.node.name} drifted "
                            f"({checksum[:12]} != {expected[index][:12]})"
                        )
        return violations


@dataclass(frozen=True)
class NoOrphanedReplicas(InvariantChecker):
    """Every stored replica belongs to a registered placement plan.

    Churn, joins, and restarted recoveries must not leave replica blobs on
    nodes that no plan accounts for — those would never be garbage
    collected nor served.
    """

    name: str = "no-orphaned-replicas"

    def check(self, run: "RunContext") -> List[str]:
        expected = set()
        for registered in run.engine.manager.states.values():
            if registered.plan is None:
                continue
            for placed in registered.plan.placements:
                expected.add((placed.node.node_id, placed.replica.key))
        violations: List[str] = []
        for node in run.engine.overlay.nodes:
            for key in node.shard_store:
                if (node.node_id, key) not in expected:
                    violations.append(
                        f"{node.name}: orphaned replica {key!r} not in any plan"
                    )
        return violations


@dataclass(frozen=True)
class RingConsistency(InvariantChecker):
    """Leaf sets of alive nodes contain no dead members after repair."""

    name: str = "ring-consistency"

    def check(self, run: "RunContext") -> List[str]:
        violations: List[str] = []
        alive = run.engine.overlay.alive_nodes()
        if not alive:
            return ["overlay has no alive nodes left"]
        for node in alive:
            for member in node.leaf_set.members():
                if not member.alive:
                    violations.append(
                        f"{node.name}: dead node {member.name} still in leaf set"
                    )
        return violations


@dataclass(frozen=True)
class FlowAccounting(InvariantChecker):
    """Every flow ever started either completed or aborted; none leaked."""

    name: str = "flow-accounting"

    def check(self, run: "RunContext") -> List[str]:
        network = run.engine.network
        metrics = run.engine.sim.metrics
        started = metrics.counter("net.flows_started").total
        completed = metrics.counter("net.flows_completed").total
        aborted = metrics.counter("net.flows_aborted").total
        violations: List[str] = []
        if started != completed + aborted:
            violations.append(
                f"flow ledger out of balance: {started:.0f} started != "
                f"{completed:.0f} completed + {aborted:.0f} aborted"
            )
        in_flight = network.in_flight_flows()
        if in_flight:
            violations.append(f"{in_flight} flows still in flight at quiescence")
        if network.partitioned:
            violations.append("network still partitioned at quiescence")
        return violations


@dataclass(frozen=True)
class RecoveryLatency(InvariantChecker):
    """Soft bound: recoveries finish within the scenario's latency budget."""

    name: str = "recovery-latency"
    severity: str = "soft"

    def check(self, run: "RunContext") -> List[str]:
        bound = run.scenario.latency_bound
        violations: List[str] = []
        for state_name in sorted(run.results):
            duration = run.results[state_name].duration
            if duration > bound:
                violations.append(
                    f"{state_name}: recovery took {duration:.1f}s "
                    f"(bound {bound:.1f}s)"
                )
        return violations


@dataclass(frozen=True)
class ChainChecksumConsistent(InvariantChecker):
    """Chain-reconstructed state byte-matches the unfailed run's ground truth.

    After any campaign recovery, reassembling each state's version chain
    (base shard set plus every delta round, applied in version order) must
    yield exactly the pre-failure image: the digest over every surviving
    chain segment, the chain length, the reconstructed tip snapshot's size
    and version all have to match what :meth:`ChaosEngine.setup_states`
    captured before a single fault was injected. Catches chain corruption
    the per-replica checksum audit cannot see — a replayed-out-of-order
    delta, a dropped tombstone, a truncated chain after a mid-recovery
    re-failure.
    """

    name: str = "chain-checksum-consistent"

    def check(self, run: "RunContext") -> List[str]:
        if run.mechanism == "checkpointing":
            return []
        from repro.errors import ReproError
        from repro.state.chain import chain_digest

        violations: List[str] = []
        for state_name in sorted(run.results):
            expected = run.pre_state.get(state_name)
            registered = run.engine.manager.states.get(state_name)
            if expected is None or registered is None or registered.plan is None:
                continue
            try:
                segments = registered.plan.available_shards()
                digest = chain_digest(segments)
                snapshot = run.engine.manager.recovered_snapshot(state_name)
            except ReproError as exc:
                violations.append(
                    f"{state_name}: chain reconstruction failed ({exc})"
                )
                continue
            if digest != expected["digest"]:
                violations.append(
                    f"{state_name}: chain digest drifted "
                    f"({digest[:12]} != {str(expected['digest'])[:12]})"
                )
            if snapshot.size_bytes != expected["size_bytes"]:
                violations.append(
                    f"{state_name}: reconstructed snapshot is "
                    f"{snapshot.size_bytes} bytes, ground truth was "
                    f"{expected['size_bytes']}"
                )
            if repr(snapshot.version) != expected["version"]:
                violations.append(
                    f"{state_name}: reconstructed tip version "
                    f"{snapshot.version!r} != ground truth {expected['version']}"
                )
        return violations


DEFAULT_CHECKERS = (
    StateIntegrity(),
    ChainChecksumConsistent(),
    NoOrphanedReplicas(),
    RingConsistency(),
    FlowAccounting(),
    RecoveryLatency(),
)


@dataclass
class InvariantReport:
    """Checker results for one run, split by severity."""

    hard_violations: Dict[str, List[str]] = field(default_factory=dict)
    soft_violations: Dict[str, List[str]] = field(default_factory=dict)

    @property
    def clean(self) -> bool:
        return not self.hard_violations and not self.soft_violations


def check_invariants(run: "RunContext", checkers=DEFAULT_CHECKERS) -> InvariantReport:
    """Run every checker against the final world state."""
    report = InvariantReport()
    for checker in checkers:
        violations = checker.check(run)
        if not violations:
            continue
        bucket = (
            report.hard_violations
            if checker.severity == "hard"
            else report.soft_violations
        )
        bucket[checker.name] = violations
    return report
