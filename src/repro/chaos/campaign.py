"""The chaos campaign runner: scenarios × mechanisms → resilience report.

:class:`ChaosEngine` wires a scenario's injectors into a live deployment:
crashes run overlay repair and start recoveries through the
:class:`~repro.recovery.manager.RecoveryManager`, ownership hands over to
the replacement on success, and a recovery whose replacement dies (the
mechanisms surface a clean ``RecoveryError`` for that) is restarted onto a
fresh replacement — recovery-during-recovery, end to end.

:func:`run_campaign` sweeps scenarios across mechanisms (and the
checkpointing baseline), audits every run with the
:mod:`invariant checkers <repro.chaos.invariants>`, and folds the
outcomes into a :class:`ResilienceReport` whose JSON form is byte-identical
for identical seeds.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.bench.harness import Scenario as Deployment
from repro.bench.harness import build_scenario, saved_delta, saved_state
from repro.chaos.invariants import (
    DEFAULT_CHECKERS,
    InvariantReport,
    check_invariants,
)
from repro.chaos.scenario import (
    CAMPAIGNS,
    SR3_MECHANISMS,
    Scenario,
    campaign_scenarios,
)
from repro.dht.node import DhtNode
from repro.errors import OverlayError, RecoveryError, ReproError, SimulationError
from repro.obs.tracer import Tracer, tracing_enabled
from repro.recovery.line import LineRecovery
from repro.recovery.model import RecoveryHandle, RecoveryResult
from repro.recovery.speculation import SpeculativeStarRecovery
from repro.recovery.star import StarRecovery
from repro.recovery.tree import TreeRecovery
from repro.sim.failure import FailureInjector, FailureRecord

#: How many times the engine re-runs a recovery whose replacement died
#: before writing the state off as lost.
MAX_RECOVERY_RESTARTS = 2


def make_mechanism(name: str):
    """Instantiate the SR3 mechanism behind a campaign mechanism name.

    Returns ``None`` for ``"checkpointing"`` — the baseline recovers
    through :class:`~repro.recovery.baselines.checkpointing` instead of a
    mechanism implementation.
    """
    factories: Dict[str, Callable[[], object]] = {
        "star": StarRecovery,
        "line": LineRecovery,
        "tree": TreeRecovery,
        "speculation": SpeculativeStarRecovery,
    }
    if name == "checkpointing":
        return None
    if name not in factories:
        raise SimulationError(f"unknown mechanism {name!r}")
    return factories[name]()


class ChaosEngine:
    """Runs one scenario's fault timeline against one deployment."""

    def __init__(
        self, deployment: Deployment, scenario: Scenario, mechanism: str
    ) -> None:
        self.deployment = deployment
        self.scenario = scenario
        self.mechanism = mechanism
        self.impl = make_mechanism(mechanism)
        self.sim = deployment.sim
        self.network = deployment.network
        self.overlay = deployment.overlay
        self.manager = deployment.manager
        # ``Random(str)`` seeds via SHA-512 of the bytes — deterministic
        # across processes, unlike ``hash()``.
        self.rng = random.Random(f"{scenario.name}/{mechanism}/{scenario.seed}")
        self.injector = FailureInjector(self.sim, self.network, rng=self.rng)
        self.handles: Dict[str, RecoveryHandle] = {}
        self.results: Dict[str, RecoveryResult] = {}
        # When a controller is attached (see ``run_scenario(controller=True)``)
        # owner-loss recoveries route through its policy table instead of
        # calling the manager directly, and the catalog doubles as the
        # control plane's adversarial regression suite.
        self.controller = None
        self.errors: List[str] = []
        self.restarts: Dict[str, int] = {}
        self.joins = 0
        # Per-state chain ground truth captured after setup: the digest of
        # every chain segment plus the reconstructed tip snapshot's shape,
        # audited by the chain-checksum-consistent invariant.
        self.pre_state: Dict[str, Dict[str, object]] = {}
        self._recovering: set = set()
        self._hooks: List[Callable[[str, object, DhtNode], None]] = []
        self._crash_counter = self.sim.metrics.counter("chaos.crashes")

    # ------------------------------------------------------------------ world

    def setup_states(self) -> Dict[str, Dict[int, str]]:
        """Register, save, and snapshot every protected state.

        Owners are distinct nodes. For the SR3 mechanisms each state gets
        a base save plus the scenario's ``delta_rounds`` incremental
        rounds, so campaigns recover version chains, not just flat plans.
        Returns the pre-failure ground truth ``{state: {segment_index:
        checksum}}`` (segment = chain_link * num_shards + shard_index)
        the integrity checker audits against after the campaign; richer
        chain ground truth lands in :attr:`pre_state`.
        """
        from repro.state.chain import chain_digest

        checksums: Dict[str, Dict[int, str]] = {}
        for i, state_name in enumerate(self.scenario.state_names()):
            owner = self.overlay.nodes[i]
            if self.mechanism == "checkpointing":
                registered = self.manager.register(
                    owner,
                    self._synthetic_shards(state_name),
                    self.scenario.num_replicas,
                )
                self.deployment.checkpointing.save(owner, registered.state_bytes)
                self.sim.run_until_idle()
                checksums[state_name] = {
                    shard.index: shard.checksum for shard in registered.shards
                }
                continue
            registered, _result = saved_state(
                self.deployment,
                state_name,
                self.scenario.state_bytes,
                num_shards=self.scenario.num_shards,
                num_replicas=self.scenario.num_replicas,
                owner=owner,
            )
            delta_bytes = self.scenario.state_bytes * self.scenario.delta_fraction
            for _round in range(self.scenario.delta_rounds):
                saved_delta(self.deployment, state_name, delta_bytes)
            chain = registered.chain
            num_shards = self.scenario.num_shards
            checksums[state_name] = {
                link_pos * num_shards + shard.index: shard.checksum
                for link_pos, link in enumerate(chain.links)
                for shard in link.shards
            }
            segments = registered.plan.available_shards()
            snapshot = self.manager.recovered_snapshot(state_name)
            self.pre_state[state_name] = {
                "digest": chain_digest(segments),
                "chain_length": chain.length,
                "size_bytes": snapshot.size_bytes,
                "version": repr(chain.tip_version),
            }
        return checksums

    def _synthetic_shards(self, state_name: str):
        from repro.state.partitioner import partition_synthetic
        from repro.state.version import StateVersion

        return partition_synthetic(
            state_name,
            int(self.scenario.state_bytes),
            self.scenario.num_shards,
            StateVersion(self.sim.now, 1),
        )

    # ------------------------------------------------------------- injections

    def on_recovery_start(
        self, callback: Callable[[str, object, DhtNode], None]
    ) -> None:
        """Register a hook fired when a recovery starts (mid-recovery faults)."""
        self._hooks.append(callback)

    def owner_nodes(self) -> List[DhtNode]:
        """Alive owners of registered states (crashing one starts a recovery)."""
        seen: Dict[object, DhtNode] = {}
        for name in sorted(self.manager.states):
            owner = self.manager.states[name].owner
            if owner.alive:
                seen[owner.node_id] = owner
        return list(seen.values())

    def bystander_nodes(self) -> List[DhtNode]:
        """Alive nodes that do not currently own a protected state."""
        owners = {n.node_id for n in self.owner_nodes()}
        return [n for n in self.overlay.alive_nodes() if n.node_id not in owners]

    def pick(self, pool: Sequence[DhtNode], count: int) -> List[DhtNode]:
        """Deterministically sample ``count`` nodes from a pool."""
        ordered = sorted(pool, key=lambda n: n.name)
        count = min(count, len(ordered))
        return self.rng.sample(ordered, count) if count else []

    def join_node(self) -> DhtNode:
        """A fresh node joins the overlay (the churn replacement path)."""
        node = self.overlay.add_node()
        self.joins += 1
        return node

    def crash_node(self, node: DhtNode) -> None:
        """Kill a node, repair the ring, and recover every state it owned."""
        if not node.alive:
            return
        self.overlay.fail_node(node)
        self.injector.records.append(
            FailureRecord(self.sim.now, "crash", node.name)
        )
        self._crash_counter.add(1)
        self._trigger_recoveries()

    # -------------------------------------------------------------- recovery

    def _trigger_recoveries(self) -> None:
        for name in sorted(self.manager.states):
            registered = self.manager.states[name]
            if registered.owner.alive or name in self._recovering:
                continue
            self._recovering.add(name)
            self._start_recovery(name, registered)

    def _start_recovery(self, name: str, registered) -> None:
        try:
            replacement = self.overlay.replacement_for(registered.owner)
        except OverlayError as exc:
            self.errors.append(f"{name}: no replacement available ({exc})")
            return
        try:
            if self.impl is None:
                handle = self._checkpointing_recovery(
                    name, registered, replacement
                )
            elif self.controller is not None:
                handle = self.controller.begin_owner_loss(
                    name, replacement=replacement, mechanism=self.mechanism
                )
            else:
                handle = self.manager.recover(
                    name, replacement=replacement, mechanism=self.impl
                )
        except ReproError as exc:
            self.errors.append(f"{name}: {exc}")
            return
        self.handles[name] = handle

        def handover(result: RecoveryResult, reg=registered, node=replacement) -> None:
            # The replacement becomes the new owner; a later crash of it
            # re-triggers recovery of this state (chained recoveries).
            reg.owner = node
            self._recovering.discard(reg.state_name)

        handle.on_done(handover)
        for hook in self._hooks:
            hook(name, registered, replacement)

    def _checkpointing_recovery(
        self, name: str, registered, replacement: DhtNode
    ) -> RecoveryHandle:
        upstream = next(
            (n for n in registered.owner.leaf_set.members() if n.alive),
            None,
        ) or self.overlay.alive_nodes()[0]
        return self.deployment.checkpointing.recover(
            upstream, replacement, registered.state_bytes, state_name=name
        )

    def _restart_failed(self) -> bool:
        """Re-run recoveries whose replacement died; True if any restarted."""
        progressed = False
        for name in sorted(self.handles):
            handle = self.handles[name]
            error = handle._error  # engine owns the handle lifecycle
            if error is None or name in self.results:
                continue
            registered = self.manager.states[name]
            attempts = self.restarts.get(name, 0)
            replacement_death = (
                isinstance(error, RecoveryError)
                and "replacement node" in str(error)
                and "died during" in str(error)
            )
            if replacement_death and attempts < MAX_RECOVERY_RESTARTS:
                self.restarts[name] = attempts + 1
                self.sim.tracer.instant(
                    f"restart recovery {name}",
                    category="chaos.restart",
                    state=name,
                    attempt=attempts + 1,
                )
                self.sim.metrics.counter("chaos.recovery_restarts").add(1)
                del self.handles[name]
                self._start_recovery(name, registered)
                progressed = True
        return progressed

    # ------------------------------------------------------------------- run

    def run(self) -> None:
        """Arm the injectors and drive the world to quiescence."""
        for injection in self.scenario.injections:
            injection.arm(self)
        while True:
            self.sim.run_until_idle()
            for name in sorted(self.handles):
                handle = self.handles[name]
                if handle._result is not None and name not in self.results:
                    self.results[name] = handle._result
            if not self._restart_failed():
                break
        for name in sorted(self.handles):
            handle = self.handles[name]
            if name in self.results:
                continue
            if handle._error is not None:
                self.errors.append(f"{name}: {handle._error}")
            else:
                self.errors.append(
                    f"{name}: recovery never completed via {self.mechanism}"
                )

    def metric(self, name: str) -> float:
        return self.sim.metrics.counter(name).total


# ------------------------------------------------------------------- outcomes


@dataclass
class RunContext:
    """Everything the invariant checkers need about one finished run."""

    scenario: Scenario
    mechanism: str
    engine: ChaosEngine
    results: Dict[str, RecoveryResult]
    errors: List[str]
    pre_checksums: Dict[str, Dict[int, str]]
    # Chain-level ground truth per state: segment digest, chain length,
    # and the reconstructed tip snapshot's shape (see setup_states).
    pre_state: Dict[str, Dict[str, object]] = field(default_factory=dict)


@dataclass
class ScenarioOutcome:
    """One cell of the resilience matrix."""

    scenario: str
    mechanism: str
    status: str  # "survived" | "degraded" | "failed"
    recovered: int = 0
    expected: int = 0
    crashes: int = 0
    joins: int = 0
    retries: float = 0.0
    speculations: float = 0.0
    restarts: int = 0
    max_recovery_s: float = 0.0
    # Controller-mode extras: how many remediations the control plane
    # executed and verified, and the slowest detection-to-verified time.
    remediations: int = 0
    remediation_mttr_s: float = 0.0
    # Aggregated blame fractions across every recovery the run performed
    # (detection/transfer/merge/replay/control/queueing, summing to 1.0) —
    # the "why was this cell degraded" answer, straight from the profiler.
    blame: Dict[str, float] = field(default_factory=dict)
    errors: List[str] = field(default_factory=list)
    hard_violations: Dict[str, List[str]] = field(default_factory=dict)
    soft_violations: Dict[str, List[str]] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        return {
            "scenario": self.scenario,
            "mechanism": self.mechanism,
            "status": self.status,
            "recovered": self.recovered,
            "expected": self.expected,
            "crashes": self.crashes,
            "joins": self.joins,
            "retries": self.retries,
            "speculations": self.speculations,
            "restarts": self.restarts,
            "max_recovery_s": round(self.max_recovery_s, 6),
            "remediations": self.remediations,
            "remediation_mttr_s": round(self.remediation_mttr_s, 6),
            "blame": {k: round(self.blame[k], 6) for k in sorted(self.blame)},
            "errors": list(self.errors),
            "hard_violations": {k: list(v) for k, v in self.hard_violations.items()},
            "soft_violations": {k: list(v) for k, v in self.soft_violations.items()},
        }


@dataclass
class ResilienceReport:
    """The survived/degraded/failed matrix of one campaign sweep."""

    campaign: str
    outcomes: List[ScenarioOutcome] = field(default_factory=list)

    def matrix(self) -> Dict[str, Dict[str, str]]:
        grid: Dict[str, Dict[str, str]] = {}
        for outcome in self.outcomes:
            grid.setdefault(outcome.scenario, {})[outcome.mechanism] = outcome.status
        return grid

    def counts(self) -> Dict[str, int]:
        tally = {"survived": 0, "degraded": 0, "failed": 0}
        for outcome in self.outcomes:
            tally[outcome.status] += 1
        return tally

    def to_dict(self) -> Dict[str, object]:
        ordered = sorted(self.outcomes, key=lambda o: (o.scenario, o.mechanism))
        return {
            "campaign": self.campaign,
            "matrix": self.matrix(),
            "summary": self.counts(),
            "outcomes": [o.to_dict() for o in ordered],
        }

    def to_json(self) -> str:
        """Deterministic JSON: same seeds -> byte-identical report."""
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"

    def format_matrix(self) -> str:
        """A fixed-width text rendering of the resilience matrix."""
        grid = self.matrix()
        mechanisms = sorted({m for row in grid.values() for m in row})
        name_width = max([len("scenario")] + [len(s) for s in grid])
        widths = {
            m: max(len(m), *(len(grid[s].get(m, "-")) for s in grid))
            for m in mechanisms
        }
        lines = [
            "  ".join(
                ["scenario".ljust(name_width)] + [m.ljust(widths[m]) for m in mechanisms]
            )
        ]
        for scenario in sorted(grid):
            row = grid[scenario]
            lines.append(
                "  ".join(
                    [scenario.ljust(name_width)]
                    + [row.get(m, "-").ljust(widths[m]) for m in mechanisms]
                )
            )
        tally = self.counts()
        lines.append(
            f"survived={tally['survived']} degraded={tally['degraded']} "
            f"failed={tally['failed']}"
        )
        return "\n".join(lines)


# --------------------------------------------------------------------- runner


def _attach_controller(engine: ChaosEngine, mechanism: str):
    """Wire a remediation controller into an engine (controller mode).

    The controller's policy pins proactive recovery to the cell's
    mechanism so the resilience matrix still compares mechanisms, and its
    verification step gets the campaign's pre-failure ground truth.
    A control-plane rewrite resets a state's chain, so the hook re-anchors
    that ground truth (and the recovery's segment accounting) to the new
    chain — the invariants audit what the world is *supposed* to hold now.
    """
    from repro.control import ControlPlane, Controller, default_policy
    from repro.state.chain import chain_digest

    world = ControlPlane.from_deployment(engine.deployment)
    controller = Controller(world, policy=default_policy(mechanism=mechanism))
    engine.controller = controller

    def reanchor(state_name: str) -> None:
        registered = engine.manager.states[state_name]
        chain = registered.chain
        if chain is None or not chain.links:
            return
        num_shards = chain.num_shards
        checksums = {
            link_pos * num_shards + shard.index: shard.checksum
            for link_pos, link in enumerate(chain.links)
            for shard in link.shards
        }
        controller._pre_checksums[state_name] = checksums
        snapshot = engine.manager.recovered_snapshot(state_name)
        engine.pre_state[state_name] = {
            "digest": chain_digest(registered.plan.available_shards()),
            "chain_length": chain.length,
            "size_bytes": snapshot.size_bytes,
            "version": repr(chain.tip_version),
        }
        result = engine.results.get(state_name)
        if result is not None:
            result.shards_recovered = len(checksums)

    world.on_chain_rewritten = reanchor
    return controller


def run_scenario(
    scenario: Scenario,
    mechanism: str,
    checkers=DEFAULT_CHECKERS,
    trace_name: Optional[str] = None,
    controller: bool = False,
) -> ScenarioOutcome:
    """Run one scenario under one mechanism and classify the outcome.

    With ``controller=True`` (SR3 mechanisms only — the checkpointing
    baseline has no placement plans to reason about) a
    :class:`~repro.control.Controller` owns the response: owner-loss
    recoveries route through its policy table during the run, and after
    quiescence it sweeps the world for residual damage — thinned
    replicas, degraded hosts, over-long chains — remediating until the
    invariants hold.
    """
    # Chaos runs always trace: the blame breakdown of each cell needs the
    # span forest. Without an explicit trace_name the tracer stays local to
    # this run — unless process-wide collection is on (the CLI's --trace
    # flag), in which case the cell joins the collector so campaign and
    # control runs produce the same trace artifacts experiments do.
    if trace_name is None and tracing_enabled():
        trace_name = f"{scenario.name}/{mechanism}"
    tracer = Tracer(f"{scenario.name}/{mechanism}") if trace_name is None else None
    deployment = build_scenario(
        num_nodes=scenario.num_nodes,
        seed=scenario.seed,
        uplink_mbit=scenario.uplink_mbit or None,
        downlink_mbit=scenario.uplink_mbit or None,
        tracer=tracer,
        trace_name=trace_name,
    )
    engine = ChaosEngine(deployment, scenario, mechanism)
    ctl = None
    if controller and mechanism != "checkpointing":
        ctl = _attach_controller(engine, mechanism)
    pre_checksums = engine.setup_states()
    if ctl is not None:
        ctl.bind_ground_truth(
            results=engine.results,
            pre_checksums=pre_checksums,
            pre_state=engine.pre_state,
            mechanism=mechanism,
        )
    engine.run()
    if ctl is not None:
        ctl.sweep()
        engine.sim.run_until_idle()
    run = RunContext(
        scenario=scenario,
        mechanism=mechanism,
        engine=engine,
        results=engine.results,
        errors=engine.errors,
        pre_checksums=pre_checksums,
        pre_state=engine.pre_state,
    )
    report = check_invariants(run, checkers)
    outcome = _classify(run, report)
    if ctl is not None:
        verified = [r for r in ctl.records if r.verified]
        outcome.remediations = len(verified)
        outcome.remediation_mttr_s = max(
            (r.mttr_s for r in verified if r.mttr_s is not None), default=0.0
        )
    return outcome


def _aggregate_blame(tracer) -> Dict[str, float]:
    """Campaign-level blame fractions: all recoveries of one run, combined."""
    from repro.obs.profile import profile_tracers

    if not getattr(tracer, "enabled", False):
        return {}
    profiles = profile_tracers(tracer)
    total = sum(p.makespan for p in profiles)
    if total <= 0:
        return {}
    seconds: Dict[str, float] = {}
    for profile in profiles:
        for category, value in profile.blame_seconds.items():
            seconds[category] = seconds.get(category, 0.0) + value
    return {category: seconds[category] / total for category in sorted(seconds)}


def _classify(run: RunContext, invariants: InvariantReport) -> ScenarioOutcome:
    engine = run.engine
    retries = engine.metric("recovery.retries")
    speculations = engine.metric("recovery.speculations")
    restarts = sum(engine.restarts.values())
    if run.errors or invariants.hard_violations:
        status = "failed"
    elif (
        invariants.soft_violations
        or retries > 0
        or speculations > 0
        or restarts > 0
    ):
        status = "degraded"
    else:
        status = "survived"
    return ScenarioOutcome(
        scenario=run.scenario.name,
        mechanism=run.mechanism,
        status=status,
        recovered=len(run.results),
        expected=run.scenario.num_states,
        crashes=len(engine.injector.crashes()),
        joins=engine.joins,
        retries=retries,
        speculations=speculations,
        restarts=restarts,
        max_recovery_s=max(
            (r.duration for r in run.results.values()), default=0.0
        ),
        blame=_aggregate_blame(engine.sim.tracer),
        errors=list(run.errors),
        hard_violations=dict(invariants.hard_violations),
        soft_violations=dict(invariants.soft_violations),
    )


def run_campaign(
    campaign: str = "smoke",
    scenarios: Optional[Sequence[Scenario]] = None,
    mechanisms: Optional[Sequence[str]] = None,
    seed: Optional[int] = None,
    checkers=DEFAULT_CHECKERS,
    trace_name: Optional[str] = None,
    controller: bool = False,
) -> ResilienceReport:
    """Sweep scenarios × mechanisms and fold outcomes into one report.

    ``scenarios`` overrides the named campaign's list; ``mechanisms``
    overrides each scenario's own sweep; ``seed`` re-seeds every scenario
    (for replication studies — the default keeps each scenario's own
    seed, so the shipped campaigns are reproducible as published);
    ``controller`` hands each SR3 cell's response to the auto-remediation
    control plane (see :func:`run_scenario`).
    """
    if scenarios is None:
        scenarios = campaign_scenarios(campaign)
    report = ResilienceReport(campaign=campaign)
    for scenario in scenarios:
        if seed is not None:
            scenario = scenario.with_seed(seed)
        sweep = tuple(mechanisms) if mechanisms else scenario.mechanisms
        for mechanism in sweep:
            report.outcomes.append(
                run_scenario(
                    scenario,
                    mechanism,
                    checkers=checkers,
                    trace_name=trace_name,
                    controller=controller,
                )
            )
    return report


# ------------------------------------------------------------------ streaming


def streaming_probe(seed: int = 0, num_nodes: int = 32) -> ScenarioOutcome:
    """End-to-end chaos probe through the streaming layer.

    Runs the word-count topology on a :class:`LocalCluster` with the SR3
    backend, checkpointing periodically along the way — so rounds after
    the first ship delta shards and grow each task's version chain —
    then kills every counting task (losing their in-memory stores),
    recovers them through SR3, and verifies the recovered state checksums
    byte-match the pre-kill snapshot.
    """
    from repro.dht.overlay import Overlay
    from repro.recovery.manager import RecoveryManager
    from repro.recovery.model import RecoveryContext
    from repro.sim.kernel import Simulator
    from repro.sim.network import Network
    from repro.streaming.backend import SR3StateBackend
    from repro.streaming.cluster import LocalCluster
    from repro.workloads.wordcount import build_wordcount_topology

    sim = Simulator()
    network = Network(sim)
    overlay = Overlay(sim, network, rng=random.Random(seed))
    overlay.build(num_nodes)
    manager = RecoveryManager(RecoveryContext(sim, network, overlay))
    backend = SR3StateBackend(manager, num_shards=4, num_replicas=2)
    cluster = LocalCluster(
        build_wordcount_topology(num_sentences=400, seed=seed), backend=backend
    )
    cluster.protect_stateful_tasks()
    cluster.run(checkpoint_every=150)
    expected = cluster.state_checksums()
    cluster.checkpoint()
    errors: List[str] = []
    chain_lengths = [
        registered.chain.length
        for registered in manager.states.values()
        if registered.chain is not None and registered.chain.links
    ]
    if not chain_lengths or max(chain_lengths) < 2:
        errors.append("no incremental save round landed during the probe")
    for component_id, index in sorted(cluster.stateful_tasks()):
        cluster.kill_task(component_id, index)
        try:
            cluster.recover_task(component_id, index)
        except ReproError as exc:
            errors.append(f"{component_id}[{index}]: {exc}")
    recovered = cluster.state_checksums()
    mismatches = [
        task
        for task in sorted(expected)
        if recovered.get(task) != expected[task]
    ]
    for task in mismatches:
        errors.append(f"{task}: recovered state checksum differs from snapshot")
    return ScenarioOutcome(
        scenario="streaming-wordcount",
        mechanism="auto",
        status="failed" if errors else "survived",
        recovered=len(expected) - len(mismatches),
        expected=len(expected),
        errors=errors,
    )


__all__ = [
    "CAMPAIGNS",
    "ChaosEngine",
    "MAX_RECOVERY_RESTARTS",
    "ResilienceReport",
    "RunContext",
    "ScenarioOutcome",
    "SR3_MECHANISMS",
    "make_mechanism",
    "run_campaign",
    "run_scenario",
    "streaming_probe",
]
