"""Composable, seed-deterministic fault injectors.

Each injector is a frozen dataclass describing one fault pattern — a wave
of crashes, a correlated rack outage, Poisson churn, a network partition,
bandwidth degradation, a straggling node, or a re-crash aimed at an
in-flight recovery. ``arm(engine)`` schedules the pattern's events on the
engine's virtual clock; all randomness flows through the engine's seeded
RNG, so the same scenario seed always produces the same fault timeline.

Injectors never touch the overlay directly: crashes go through
:meth:`repro.chaos.campaign.ChaosEngine.crash_node` (which runs overlay
repair and starts recoveries) and network faults go through the
:class:`~repro.sim.network.Network` chaos hooks (partition/heal and
per-host bandwidth control).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import TYPE_CHECKING, ClassVar, Dict, List, Type

from repro.errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover - type hints only
    from repro.chaos.campaign import ChaosEngine
    from repro.dht.node import DhtNode


@dataclass(frozen=True)
class Injector:
    """Base: one declarative fault pattern."""

    kind: ClassVar[str] = ""

    def arm(self, engine: "ChaosEngine") -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def to_dict(self) -> Dict[str, object]:
        data: Dict[str, object] = {"kind": self.kind}
        data.update(asdict(self))
        return data


@dataclass(frozen=True)
class CrashWave(Injector):
    """Crash ``count`` nodes starting at ``at``, ``interval`` apart.

    ``victims`` selects the pool: ``"owners"`` kills state-owning nodes
    (guaranteeing recoveries start), ``"any"`` samples uniformly from the
    alive non-owner population.
    """

    kind: ClassVar[str] = "crash_wave"

    at: float = 5.0
    count: int = 1
    interval: float = 0.0
    victims: str = "owners"

    def __post_init__(self) -> None:
        if self.count < 1:
            raise SimulationError("crash wave needs at least one victim")
        if self.victims not in ("owners", "any"):
            raise SimulationError(f"unknown victim pool {self.victims!r}")

    def arm(self, engine: "ChaosEngine") -> None:
        def fire() -> None:
            pool = (
                engine.owner_nodes()
                if self.victims == "owners"
                else engine.bystander_nodes()
            )
            chosen = engine.pick(pool, self.count)
            for i, node in enumerate(chosen):
                engine.sim.schedule(i * self.interval, engine.crash_node, node)

        engine.sim.schedule(self.at, fire)


@dataclass(frozen=True)
class RackFailure(Injector):
    """Correlated failure: a node and its nearest ring neighbours die together.

    Leaf-set placement puts replicas on ring neighbours ("within the same
    rack", Sec. 3.4), so this is the scenario that kills a state owner
    *and* some of its replica holders in one blast.
    """

    kind: ClassVar[str] = "rack_failure"

    at: float = 5.0
    size: int = 3

    def __post_init__(self) -> None:
        if self.size < 1:
            raise SimulationError("rack size must be at least 1")

    def arm(self, engine: "ChaosEngine") -> None:
        def fire() -> None:
            owners = engine.owner_nodes()
            if not owners:
                return
            center = engine.pick(owners, 1)[0]
            rack: List["DhtNode"] = [center]
            for neighbour in center.leaf_set.members():
                if len(rack) >= self.size:
                    break
                if neighbour.alive:
                    rack.append(neighbour)
            for node in rack:
                engine.crash_node(node)

        engine.sim.schedule(self.at, fire)


@dataclass(frozen=True)
class PoissonChurn(Injector):
    """Memoryless churn: crashes at ``rate`` per second over a window.

    Victims come from the non-owner population; with ``rejoin_delay`` set,
    every departure is followed by a fresh node joining the overlay, so
    membership stays roughly stable while identities keep changing.
    """

    kind: ClassVar[str] = "poisson_churn"

    start: float = 2.0
    duration: float = 20.0
    rate: float = 0.2
    rejoin_delay: float = 4.0
    rejoin: bool = True

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise SimulationError("churn rate must be positive")
        if self.duration <= 0:
            raise SimulationError("churn duration must be positive")

    def arm(self, engine: "ChaosEngine") -> None:
        deadline = engine.sim.now + self.start + self.duration

        def next_event() -> None:
            if engine.sim.now >= deadline:
                return
            pool = engine.bystander_nodes()
            if pool:
                victim = engine.pick(pool, 1)[0]
                engine.crash_node(victim)
                if self.rejoin:
                    engine.sim.schedule(self.rejoin_delay, engine.join_node)
            engine.sim.schedule(engine.rng.expovariate(self.rate), next_event)

        engine.sim.schedule(
            self.start + engine.rng.expovariate(self.rate), next_event
        )


@dataclass(frozen=True)
class NetworkPartition(Injector):
    """Cut a random ``fraction`` of hosts off, heal after ``heal_after``.

    In-flight transfers across the cut abort; recoveries must retry
    (riding out the partition within their backoff budget) or fail.
    """

    kind: ClassVar[str] = "network_partition"

    at: float = 4.0
    fraction: float = 0.3
    heal_after: float = 10.0

    def __post_init__(self) -> None:
        if not 0.0 < self.fraction < 1.0:
            raise SimulationError("partition fraction must be in (0, 1)")
        if self.heal_after <= 0:
            raise SimulationError("heal_after must be positive")

    def arm(self, engine: "ChaosEngine") -> None:
        def fire() -> None:
            alive = [n for n in engine.overlay.alive_nodes()]
            count = max(1, int(len(alive) * self.fraction))
            group = engine.pick(alive, min(count, len(alive)))
            engine.network.partition([n.host for n in group])
            engine.sim.schedule(self.heal_after, engine.network.heal_partition)

        engine.sim.schedule(self.at, fire)


@dataclass(frozen=True)
class BandwidthFlap(Injector):
    """Periodic degradation: random hosts drop to ``factor`` of their
    bandwidth for ``period`` seconds, ``cycles`` times in a row."""

    kind: ClassVar[str] = "bandwidth_flap"

    at: float = 2.0
    hosts: int = 2
    factor: float = 0.1
    period: float = 5.0
    cycles: int = 2

    def __post_init__(self) -> None:
        if not 0.0 < self.factor <= 1.0:
            raise SimulationError("bandwidth factor must be in (0, 1]")
        if self.hosts < 1 or self.cycles < 1:
            raise SimulationError("hosts and cycles must be at least 1")

    def arm(self, engine: "ChaosEngine") -> None:
        def flap(cycle: int) -> None:
            victims = engine.pick(engine.overlay.alive_nodes(), self.hosts)
            originals = [(n.host, n.host.up_bw, n.host.down_bw) for n in victims]
            for host, up, down in originals:
                engine.network.set_host_bandwidth(
                    host, up * self.factor, down * self.factor
                )

            def restore() -> None:
                for host, up, down in originals:
                    if host.alive:
                        engine.network.set_host_bandwidth(host, up, down)
                if cycle + 1 < self.cycles:
                    flap(cycle + 1)

            engine.sim.schedule(self.period, restore)

        engine.sim.schedule(self.at, lambda: flap(0))


@dataclass(frozen=True)
class Straggler(Injector):
    """Permanent slow nodes: bandwidth drops to ``factor`` and stays there.

    The Sec. 6 motivation for speculation — a straggling provider delays
    recovery by its full slowdown unless backup fetches race it.
    """

    kind: ClassVar[str] = "straggler"

    at: float = 0.5
    hosts: int = 1
    factor: float = 0.25

    def __post_init__(self) -> None:
        if not 0.0 < self.factor <= 1.0:
            raise SimulationError("straggler factor must be in (0, 1]")
        if self.hosts < 1:
            raise SimulationError("hosts must be at least 1")

    def arm(self, engine: "ChaosEngine") -> None:
        def fire() -> None:
            victims = engine.pick(engine.bystander_nodes(), self.hosts)
            for node in victims:
                engine.network.set_host_bandwidth(
                    node.host,
                    node.host.up_bw * self.factor,
                    node.host.down_bw * self.factor,
                )

        engine.sim.schedule(self.at, fire)


@dataclass(frozen=True)
class MidRecoveryCrash(Injector):
    """Recovery-during-recovery: kill a participant of an in-flight recovery.

    Arms a hook on the engine; ``delay`` seconds after a recovery starts,
    the chosen ``target`` dies — ``"provider"`` crashes a replica holder
    serving the transfer (the mechanism must retry from an alternate
    replica), ``"replacement"`` crashes the node being recovered onto (the
    mechanism must fail with a clean ``RecoveryError`` and the engine
    restarts the recovery on a fresh replacement). Fires for the first
    ``times`` recoveries that start.
    """

    kind: ClassVar[str] = "mid_recovery_crash"

    target: str = "provider"
    delay: float = 1.5
    times: int = 1

    def __post_init__(self) -> None:
        if self.target not in ("provider", "replacement"):
            raise SimulationError(f"unknown re-crash target {self.target!r}")
        if self.times < 1:
            raise SimulationError("times must be at least 1")

    def arm(self, engine: "ChaosEngine") -> None:
        budget = {"left": self.times}

        def on_start(state_name: str, registered, replacement) -> None:
            if budget["left"] <= 0:
                return
            budget["left"] -= 1
            if self.target == "replacement":
                victim = replacement
            else:
                victim = None
                plan = registered.plan
                if plan is not None:
                    for index in plan.shard_indexes():
                        for placed in plan.providers_for(index):
                            if placed.node.node_id != replacement.node_id:
                                victim = placed.node
                                break
                        if victim is not None:
                            break
            if victim is None:
                return
            engine.sim.schedule(self.delay, engine.crash_node, victim)

        engine.on_recovery_start(on_start)


INJECTOR_KINDS: Dict[str, Type[Injector]] = {
    cls.kind: cls
    for cls in (
        CrashWave,
        RackFailure,
        PoissonChurn,
        NetworkPartition,
        BandwidthFlap,
        Straggler,
        MidRecoveryCrash,
    )
}


def make_injector(spec: Dict[str, object]) -> Injector:
    """Build an injector from its dict form (the scenario DSL)."""
    data = dict(spec)
    kind = data.pop("kind", None)
    if kind not in INJECTOR_KINDS:
        raise SimulationError(
            f"unknown injector kind {kind!r}; known: {sorted(INJECTOR_KINDS)}"
        )
    return INJECTOR_KINDS[kind](**data)
