"""The scenario DSL: declarative, reproducible fault campaigns.

A :class:`Scenario` is a frozen spec — deployment shape, protected states,
a sequence of :mod:`injectors <repro.chaos.injectors>` on the virtual
clock, and the mechanisms to sweep. Everything is derived from the
scenario ``seed``, so the same spec always yields the same fault timeline
and, downstream, a byte-identical resilience report.

Scenarios round-trip through plain dicts (``to_dict``/``from_dict``) and
load from TOML files, so campaigns can live next to the code or in config.
The shipped catalog (``SCENARIOS``) covers the failure modes the paper
argues SR3 must survive, plus the recovery-during-recovery cases its
mechanisms historically mishandled; ``CAMPAIGNS`` groups them into the CI
smoke sweep and the full matrix.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Tuple

from repro.chaos.injectors import (
    BandwidthFlap,
    CrashWave,
    Injector,
    MidRecoveryCrash,
    NetworkPartition,
    PoissonChurn,
    RackFailure,
    Straggler,
    make_injector,
)
from repro.errors import SimulationError
from repro.util.sizes import MB

#: Mechanism names the campaign runner understands. ``star``/``line``/
#: ``tree``/``speculation`` are the SR3 mechanisms; ``checkpointing`` is
#: the remote-storage baseline swept for contrast.
KNOWN_MECHANISMS = ("star", "line", "tree", "speculation", "checkpointing")

SR3_MECHANISMS = ("star", "line", "tree", "speculation")


@dataclass(frozen=True)
class Scenario:
    """One declarative fault campaign against a simulated deployment."""

    name: str
    description: str = ""
    num_nodes: int = 32
    seed: int = 0
    num_states: int = 2
    state_mb: float = 16.0
    num_shards: int = 4
    num_replicas: int = 3
    uplink_mbit: float = 0.0  # 0 means unconstrained (GbE LAN mode)
    latency_bound: float = 120.0
    # Incremental save rounds appended to each state's version chain after
    # the base save, each carrying ``delta_fraction`` of the state bytes —
    # campaigns exercise chain-aware recovery by default.
    delta_rounds: int = 2
    delta_fraction: float = 0.1
    mechanisms: Tuple[str, ...] = SR3_MECHANISMS
    injections: Tuple[Injector, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not self.name:
            raise SimulationError("scenario needs a name")
        if self.num_nodes < 4:
            raise SimulationError("scenario needs at least 4 nodes")
        if self.num_states < 1:
            raise SimulationError("scenario needs at least one state")
        if self.state_mb <= 0:
            raise SimulationError("state size must be positive")
        if self.num_shards < 1 or self.num_replicas < 1:
            raise SimulationError("shards and replicas must be at least 1")
        if self.latency_bound <= 0:
            raise SimulationError("latency bound must be positive")
        if self.delta_rounds < 0:
            raise SimulationError("delta_rounds must be non-negative")
        if not 0 < self.delta_fraction <= 1:
            raise SimulationError("delta_fraction must be in (0, 1]")
        if not self.mechanisms:
            raise SimulationError("scenario must sweep at least one mechanism")
        for mechanism in self.mechanisms:
            if mechanism not in KNOWN_MECHANISMS:
                raise SimulationError(
                    f"unknown mechanism {mechanism!r}; known: {KNOWN_MECHANISMS}"
                )
        # Normalize list inputs (from_dict / hand-written specs) to tuples.
        object.__setattr__(self, "mechanisms", tuple(self.mechanisms))
        object.__setattr__(self, "injections", tuple(self.injections))

    @property
    def state_bytes(self) -> float:
        return self.state_mb * MB

    def state_names(self) -> List[str]:
        return [f"{self.name}/state-{i}" for i in range(self.num_states)]

    def with_seed(self, seed: int) -> "Scenario":
        return replace(self, seed=seed)

    # -------------------------------------------------------------- dict form

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "description": self.description,
            "num_nodes": self.num_nodes,
            "seed": self.seed,
            "num_states": self.num_states,
            "state_mb": self.state_mb,
            "num_shards": self.num_shards,
            "num_replicas": self.num_replicas,
            "uplink_mbit": self.uplink_mbit,
            "latency_bound": self.latency_bound,
            "delta_rounds": self.delta_rounds,
            "delta_fraction": self.delta_fraction,
            "mechanisms": list(self.mechanisms),
            "injections": [inj.to_dict() for inj in self.injections],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "Scenario":
        spec = dict(data)
        injections = tuple(
            inj if isinstance(inj, Injector) else make_injector(inj)
            for inj in spec.pop("injections", ())
        )
        mechanisms = tuple(spec.pop("mechanisms", SR3_MECHANISMS))
        return cls(injections=injections, mechanisms=mechanisms, **spec)

    @classmethod
    def from_toml(cls, path: str) -> List["Scenario"]:
        """Load scenario specs from a TOML file's ``[[scenario]]`` tables."""
        try:
            import tomllib
        except ImportError as exc:  # pragma: no cover - py<3.11
            raise SimulationError(
                "TOML scenario files need Python 3.11+ (tomllib)"
            ) from exc
        with open(path, "rb") as fh:
            data = tomllib.load(fh)
        tables = data.get("scenario", [])
        if not tables:
            raise SimulationError(f"{path}: no [[scenario]] tables found")
        return [cls.from_dict(table) for table in tables]


# --------------------------------------------------------------------- catalog

SCENARIOS: Dict[str, Scenario] = {
    scenario.name: scenario
    for scenario in (
        Scenario(
            name="crash-wave",
            description="Two state owners die simultaneously; recoveries "
            "run in parallel on disjoint provider sets.",
            num_states=2,
            injections=(CrashWave(at=5.0, count=2, victims="owners"),),
            mechanisms=SR3_MECHANISMS + ("checkpointing",),
        ),
        Scenario(
            name="rack-outage",
            description="A state owner and its nearest ring neighbours "
            "(replica holders) fail together.",
            num_states=1,
            num_replicas=3,
            injections=(RackFailure(at=5.0, size=3),),
        ),
        Scenario(
            name="churn",
            description="Poisson node churn with rejoining newcomers while "
            "one owner crash drives a recovery.",
            num_states=1,
            injections=(
                PoissonChurn(start=2.0, duration=15.0, rate=0.3),
                CrashWave(at=6.0, count=1, victims="owners"),
            ),
        ),
        Scenario(
            name="partition-heal",
            description="A third of the cluster is cut off mid-recovery; "
            "the cut heals within the retry budget.",
            num_states=1,
            injections=(
                CrashWave(at=3.0, count=1, victims="owners"),
                NetworkPartition(at=5.0, fraction=0.3, heal_after=8.0),
            ),
        ),
        Scenario(
            name="bandwidth-flap",
            description="Random hosts flap to 10% bandwidth while a "
            "recovery streams state.",
            num_states=1,
            uplink_mbit=200.0,  # flapping needs finite links to bite
            injections=(
                CrashWave(at=3.0, count=1, victims="owners"),
                BandwidthFlap(at=4.0, hosts=3, factor=0.1, period=4.0, cycles=2),
            ),
        ),
        Scenario(
            name="stragglers",
            description="Slow provider nodes drag transfers; speculation "
            "should mask them, plain star pays the slowdown.",
            num_states=1,
            uplink_mbit=200.0,  # stragglers need finite links to bite
            latency_bound=60.0,
            injections=(
                Straggler(at=0.5, hosts=4, factor=0.2),
                CrashWave(at=3.0, count=1, victims="owners"),
            ),
        ),
        Scenario(
            name="mid-recovery-provider-crash",
            description="A replica holder serving the recovery dies "
            "mid-transfer; every mechanism must retry from an "
            "alternate replica.",
            num_states=1,
            num_replicas=3,
            uplink_mbit=100.0,  # finite links keep transfers in flight
            injections=(
                CrashWave(at=3.0, count=1, victims="owners"),
                MidRecoveryCrash(target="provider", delay=1.5, times=1),
            ),
        ),
        Scenario(
            name="mid-recovery-recrash",
            description="The replacement node dies mid-recovery; mechanisms "
            "surface a clean RecoveryError and the campaign engine "
            "restarts onto a fresh replacement.",
            num_states=1,
            num_replicas=3,
            uplink_mbit=100.0,  # finite links keep transfers in flight
            injections=(
                CrashWave(at=3.0, count=1, victims="owners"),
                MidRecoveryCrash(target="replacement", delay=1.5, times=1),
            ),
        ),
    )
}

#: Named sweeps. ``smoke`` is the CI campaign: a small ring, three
#: scenarios, every mechanism — fast enough to run on every push.
CAMPAIGNS: Dict[str, Tuple[str, ...]] = {
    "smoke": ("crash-wave", "mid-recovery-provider-crash", "mid-recovery-recrash"),
    "full": tuple(sorted(SCENARIOS)),
}


def campaign_scenarios(name: str) -> List[Scenario]:
    """Resolve a campaign name into its scenario list."""
    if name not in CAMPAIGNS:
        raise SimulationError(
            f"unknown campaign {name!r}; known: {sorted(CAMPAIGNS)}"
        )
    return [SCENARIOS[s] for s in CAMPAIGNS[name]]
