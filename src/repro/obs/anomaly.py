"""Lightweight statistical anomaly detection over telemetry series.

Two detectors, both robust (median/MAD, not mean/stdev, so one outlier
cannot poison the baseline that should flag it):

- **spike** — the newest sample's robust z-score
  (``0.6745 * (x - median) / MAD`` over a trailing window) exceeds the
  threshold. Catches latency spikes, backlog jumps, utilisation bursts.
- **level-shift** — on rate-kind series only, the median of the recent
  half of the window moved away from the older half's median by more
  than ``shift_factor`` times the older half's spread. Catches the
  changes a per-point z-score misses: a throughput collapse to a new
  (steady) level, a counter going quiet.

Anomalies are deduplicated per (series, kind) by timestamp (one scan per
new point) and rate-limited by a cooldown, so a sustained excursion
flags once rather than every sample. Like SLO alerts, anomalies convert
to control-plane events (kind ``metric-anomaly``) and can drive policy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigError
from repro.obs.timeseries import TelemetryPipeline
from repro.util.stats import median

__all__ = ["Anomaly", "AnomalyDetector"]

#: Scale factor making MAD consistent with the stdev of a normal
#: distribution — the conventional robust z-score normaliser.
_MAD_TO_SIGMA = 0.6745


def _mad(values: Sequence[float], center: float) -> float:
    return median([abs(v - center) for v in values])


@dataclass(frozen=True)
class Anomaly:
    """One flagged excursion, pinned to the simulated clock."""

    series: str
    at: float
    value: float
    score: float
    kind: str  # "spike" | "level-shift"
    baseline: float

    def to_event(self):
        """The control-plane event form (kind ``metric-anomaly``)."""
        from repro.control.events import ControlEvent

        return ControlEvent(
            kind="metric-anomaly",
            at=self.at,
            attrs=(
                ("series", self.series),
                ("anomaly", self.kind),
                ("value", round(self.value, 6)),
                ("score", round(self.score, 6)),
                ("baseline", round(self.baseline, 6)),
            ),
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "series": self.series,
            "at": round(self.at, 6),
            "value": round(self.value, 6),
            "score": round(self.score, 6),
            "kind": self.kind,
            "baseline": round(self.baseline, 6),
        }


class AnomalyDetector:
    """Scans pipeline series for spikes and (on rates) level shifts."""

    def __init__(
        self,
        pipeline: TelemetryPipeline,
        series: Optional[Sequence[str]] = None,
        window: int = 32,
        z_threshold: float = 4.5,
        min_points: int = 12,
        cooldown_s: float = 5.0,
        shift_factor: float = 4.0,
    ) -> None:
        if window < 4:
            raise ConfigError("window must be at least 4 points")
        if min_points < 4 or min_points > window:
            raise ConfigError("min_points must lie in [4, window]")
        if z_threshold <= 0 or shift_factor <= 0:
            raise ConfigError("thresholds must be positive")
        if cooldown_s < 0:
            raise ConfigError("cooldown_s must be non-negative")
        self.pipeline = pipeline
        #: None watches every series the pipeline produces (including ones
        #: that appear after construction); a list pins the watch set.
        self.watch = None if series is None else list(series)
        self.window = int(window)
        self.z_threshold = float(z_threshold)
        self.min_points = int(min_points)
        self.cooldown_s = float(cooldown_s)
        self.shift_factor = float(shift_factor)
        self.anomalies: List[Anomaly] = []
        self._last_fired: Dict[Tuple[str, str], float] = {}
        self._last_scanned: Dict[str, float] = {}

    # ------------------------------------------------------------- scanning

    def scan(self, now: float) -> List[Anomaly]:
        """Newly flagged anomalies as of ``now``."""
        del now  # scans key off each series' own newest timestamp
        found: List[Anomaly] = []
        names = self.watch if self.watch is not None else self.pipeline.names()
        for name in names:
            if not self.pipeline.has_series(name):
                continue
            buf = self.pipeline.series(name)
            points = buf.points()[-self.window :]
            if len(points) < self.min_points:
                continue
            at = points[-1][0]
            if self._last_scanned.get(name) == at:
                continue  # no new point since the last scan
            self._last_scanned[name] = at
            spike = self._spike(name, points)
            if spike is not None:
                found.append(spike)
            if buf.kind == "rate":
                shift = self._level_shift(name, points)
                if shift is not None:
                    found.append(shift)
        self.anomalies.extend(found)
        return found

    def _cooled(self, key: Tuple[str, str], at: float) -> bool:
        last = self._last_fired.get(key)
        return last is None or at - last >= self.cooldown_s

    def _spike(self, name: str, points) -> Optional[Anomaly]:
        at, value = points[-1]
        key = (name, "spike")
        if not self._cooled(key, at):
            return None
        baseline = [v for _, v in points[:-1]]
        center = median(baseline)
        mad = _mad(baseline, center)
        # A constant baseline has zero MAD; treat 5% of the level (or of
        # the excursion itself, for a flat-zero baseline) as one robust
        # sigma so collapses and surges still score far above threshold
        # while rounding jitter stays quiet.
        denom = mad if mad > 0 else max(abs(center), abs(value)) * 0.05
        denom = max(denom, 1e-9)
        score = _MAD_TO_SIGMA * (value - center) / denom
        if abs(score) < self.z_threshold:
            return None
        self._last_fired[key] = at
        return Anomaly(
            series=name,
            at=at,
            value=value,
            score=score,
            kind="spike",
            baseline=center,
        )

    def _level_shift(self, name: str, points) -> Optional[Anomaly]:
        at = points[-1][0]
        key = (name, "level-shift")
        if not self._cooled(key, at):
            return None
        values = [v for _, v in points]
        half = len(values) // 2
        older, recent = values[:half], values[half:]
        old_center = median(older)
        new_center = median(recent)
        spread = _mad(older, old_center)
        denom = spread if spread > 0 else max(abs(old_center) * 0.05, 1e-9)
        score = (new_center - old_center) / denom
        if abs(score) < self.shift_factor:
            return None
        self._last_fired[key] = at
        return Anomaly(
            series=name,
            at=at,
            value=new_center,
            score=score,
            kind="level-shift",
            baseline=old_center,
        )
