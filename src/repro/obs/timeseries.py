"""Sim-clock time-series: what the system looks like *while it runs*.

Everything else in :mod:`repro.obs` is post-hoc — span profiles after the
run, one-shot metric dumps at exit. This module is the continuous view:
a :class:`TelemetryPipeline` periodically samples the simulation's
existing :class:`~repro.obs.registry.MetricsRegistry` (and, when tracing
is on, the span tracer) into named :class:`SeriesBuffer` ring buffers, so
the SLO engine (:mod:`repro.obs.slo`) and the anomaly detector
(:mod:`repro.obs.anomaly`) can evaluate objectives over sliding windows
on the virtual clock.

The pipeline *subscribes* rather than re-instruments: call sites keep
feeding the registry primitives they already feed, and each sample tick
derives series from them —

- every counter becomes a rate series (``<name>.rate``, delta/interval);
- every gauge becomes a sampled level series (same name);
- every registry :class:`~repro.obs.registry.TimeSeries` is mirrored
  point-for-point (cursor-copied, so nothing is scanned twice);
- every histogram that opted into timestamped observations
  (:meth:`~repro.obs.registry.Histogram.keep_observations`) yields
  windowed percentile series (``<name>.p50``, ``<name>.p99``, ...);
- open ``recovery*`` spans become a ``telemetry.recovery_active`` gauge
  series when the simulation carries a real tracer.

Buffers are bounded (``retention`` points) and optionally downsampled to
a fixed ``resolution`` bucket width with last/max/mean aggregation, so a
long-running cell holds a dashboard's worth of history, not the full
firehose. Everything is deterministic: sampling happens on the simulated
clock, iteration orders are sorted, and no wall time is consulted.

Embeddings that own the event loop (the live :class:`~repro.live.driver.
LoadDriver`) call :meth:`TelemetryPipeline.sample` from their own tick;
batch embeddings call :meth:`TelemetryPipeline.start` to self-schedule
on the simulator and :meth:`TelemetryPipeline.stop` before waiting for
quiescence.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Tuple

from repro.errors import ConfigError
from repro.util.stats import percentile

__all__ = [
    "SeriesBuffer",
    "TelemetryConfig",
    "TelemetryPipeline",
]

#: Series kinds the pipeline produces (anomaly detection keys off these).
SERIES_KINDS = ("gauge", "rate", "series", "percentile")

_AGGREGATIONS = ("last", "max", "mean")


class SeriesBuffer:
    """A bounded, optionally downsampled ``(time, value)`` ring buffer.

    With ``resolution`` zero every appended point is kept verbatim (up to
    ``retention`` points). With a positive resolution, points are snapped
    to ``floor(t / resolution) * resolution`` buckets and same-bucket
    appends fold into one point via ``agg`` (``last``, ``max`` or
    ``mean``).
    """

    def __init__(
        self,
        name: str,
        kind: str = "gauge",
        retention: int = 4096,
        resolution: float = 0.0,
        agg: str = "last",
    ) -> None:
        if retention <= 0:
            raise ConfigError("retention must be positive")
        if resolution < 0:
            raise ConfigError("resolution must be non-negative")
        if agg not in _AGGREGATIONS:
            raise ConfigError(f"unknown aggregation {agg!r}; known: {_AGGREGATIONS}")
        if kind not in SERIES_KINDS:
            raise ConfigError(f"unknown series kind {kind!r}; known: {SERIES_KINDS}")
        self.name = name
        self.kind = kind
        self.resolution = float(resolution)
        self.agg = agg
        self._points: Deque[Tuple[float, float]] = deque(maxlen=int(retention))
        self._bucket_sum = 0.0
        self._bucket_count = 0

    def __len__(self) -> int:
        return len(self._points)

    def _bucket(self, t: float) -> float:
        return math.floor(t / self.resolution) * self.resolution

    def append(self, t: float, value: float) -> None:
        t = float(t)
        value = float(value)
        if self._points and t < self._points[-1][0]:
            raise ConfigError(
                f"series {self.name!r} points must be appended in time order"
            )
        if self.resolution <= 0:
            self._points.append((t, value))
            return
        bucket = self._bucket(t)
        if self._points and self._points[-1][0] == bucket:
            prev = self._points[-1][1]
            if self.agg == "max":
                value = max(prev, value)
            elif self.agg == "mean":
                self._bucket_sum += value
                self._bucket_count += 1
                value = self._bucket_sum / self._bucket_count
            self._points[-1] = (bucket, value)
        else:
            self._bucket_sum = value
            self._bucket_count = 1
            self._points.append((bucket, value))

    def points(self) -> List[Tuple[float, float]]:
        return list(self._points)

    def last(self) -> Optional[Tuple[float, float]]:
        return self._points[-1] if self._points else None

    def window(self, t0: float, t1: float) -> List[Tuple[float, float]]:
        """Points with ``t0 < t <= t1`` (trailing-window semantics)."""
        return [(t, v) for t, v in self._points if t0 < t <= t1]

    def values_in(self, t0: float, t1: float) -> List[float]:
        return [v for _, v in self.window(t0, t1)]

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "kind": self.kind,
            "points": [[t, v] for t, v in self._points],
        }


@dataclass(frozen=True)
class TelemetryConfig:
    """Sampling knobs for one pipeline."""

    #: Seconds of simulated time between samples in self-scheduled mode
    #: (embeddings that own the loop call :meth:`sample` at their own pace).
    interval: float = 0.5
    #: Ring size per series.
    retention: int = 4096
    #: Downsampling bucket width; 0 keeps native resolution.
    resolution: float = 0.0
    #: Trailing window for histogram percentile series.
    histogram_window: float = 5.0
    #: Percentiles derived from observation-keeping histograms.
    histogram_percentiles: Tuple[float, ...] = (50.0, 99.0)
    #: Sample open recovery spans into ``telemetry.recovery_active``.
    track_spans: bool = True

    def __post_init__(self) -> None:
        if self.interval <= 0:
            raise ConfigError("interval must be positive")
        if self.retention <= 0:
            raise ConfigError("retention must be positive")
        if self.resolution < 0:
            raise ConfigError("resolution must be non-negative")
        if self.histogram_window <= 0:
            raise ConfigError("histogram_window must be positive")
        for q in self.histogram_percentiles:
            if not 0 <= q <= 100:
                raise ConfigError("histogram percentiles must lie in [0, 100]")


class TelemetryPipeline:
    """Samples one simulation's registry (and tracer) into series buffers."""

    def __init__(self, sim, config: Optional[TelemetryConfig] = None) -> None:
        self.sim = sim
        self.config = config or TelemetryConfig()
        self._buffers: Dict[str, SeriesBuffer] = {}
        self._counter_totals: Dict[str, float] = {}
        self._series_cursors: Dict[str, int] = {}
        self._last_sample: Optional[float] = None
        self._running = False
        self.samples = 0

    # ------------------------------------------------------------- buffers

    def _ensure(self, name: str, kind: str) -> SeriesBuffer:
        buf = self._buffers.get(name)
        if buf is None:
            buf = SeriesBuffer(
                name,
                kind=kind,
                retention=self.config.retention,
                resolution=self.config.resolution,
                agg="mean" if kind == "rate" else "last",
            )
            self._buffers[name] = buf
        return buf

    def series(self, name: str) -> SeriesBuffer:
        """The named buffer; raises for names the pipeline never produced."""
        buf = self._buffers.get(name)
        if buf is None:
            raise ConfigError(
                f"unknown telemetry series {name!r}; known: {self.names()}"
            )
        return buf

    def has_series(self, name: str) -> bool:
        return name in self._buffers

    def names(self) -> List[str]:
        return sorted(self._buffers)

    def record(self, name: str, t: float, value: float, kind: str = "gauge") -> None:
        """Directly feed a point (for embedders with pipeline-only signals)."""
        self._ensure(name, kind).append(t, value)

    # ------------------------------------------------------------ sampling

    def sample(self, now: Optional[float] = None) -> None:
        """Take one sample of everything the registry and tracer expose."""
        if now is None:
            now = self.sim.now
        registry = self.sim.metrics
        dt = None if self._last_sample is None else now - self._last_sample
        if dt is not None and dt <= 0:
            return  # same-instant re-sample: nothing new can have happened
        counters = registry.counters()
        for name in sorted(counters):
            total = counters[name].total
            previous = self._counter_totals.get(name)
            self._counter_totals[name] = total
            if previous is None or dt is None:
                continue  # first sight: no interval to rate over
            self._ensure(f"{name}.rate", "rate").append(now, (total - previous) / dt)
        gauges = registry.gauges()
        for name in sorted(gauges):
            self._ensure(name, "gauge").append(now, gauges[name].value)
        all_series = registry.all_series()
        for name in sorted(all_series):
            points = all_series[name].points
            cursor = self._series_cursors.get(name, 0)
            buf = self._ensure(name, "series")
            for t, v in points[cursor:]:
                buf.append(t, v)
            self._series_cursors[name] = len(points)
        histograms = registry.histograms()
        for name in sorted(histograms):
            histogram = histograms[name]
            if not histogram.keeps_observations:
                continue
            window_values = [
                v
                for t, v in histogram.observations()
                if now - self.config.histogram_window < t <= now
            ]
            if not window_values:
                continue
            for q in self.config.histogram_percentiles:
                label = ("%g" % q).replace(".", "_")
                self._ensure(f"{name}.p{label}", "percentile").append(
                    now, percentile(window_values, q)
                )
        if self.config.track_spans:
            spans = getattr(self.sim.tracer, "spans", None)
            if spans:  # NullTracer keeps an empty list — nothing to count
                open_recoveries = sum(
                    1
                    for span in spans
                    if span.category.startswith("recovery") and not span.done
                )
                self._ensure("telemetry.recovery_active", "gauge").append(
                    now, float(open_recoveries)
                )
        self._last_sample = now
        self.samples += 1

    # ------------------------------------------- self-scheduled (batch) mode

    def start(self) -> None:
        """Schedule periodic sampling on the simulator itself."""
        if self._running:
            raise ConfigError("telemetry pipeline already running")
        self._running = True
        self.sim.schedule(self.config.interval, self._tick)

    def stop(self) -> None:
        """Stop self-scheduled sampling (the pending tick becomes a no-op)."""
        self._running = False

    @property
    def running(self) -> bool:
        return self._running

    def _tick(self) -> None:
        if not self._running:
            return
        self.sample(self.sim.now)
        self.sim.schedule(self.config.interval, self._tick)

    # -------------------------------------------------------------- export

    def to_dict(self) -> Dict[str, object]:
        """A deterministic, JSON-friendly snapshot of every buffer."""
        return {
            "format": "sr3-telemetry-1",
            "samples": self.samples,
            "series": {name: self._buffers[name].to_dict() for name in self.names()},
        }
