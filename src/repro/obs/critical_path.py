"""Critical-path extraction and blame attribution over span forests.

The question every recovery experiment ultimately asks — *where does the
recovery time go?* — is not answered by summing span durations: concurrent
fetches overlap, merges hide behind transfers, and a mechanism's makespan
is governed by whichever chain of operations could not be overlapped. The
critical path is that chain: a gap-free tiling of ``[root.start,
root.end]`` where each segment is owned by the deepest span active at that
instant.

The walk is the standard trace-analysis recursion: starting from the root's
end, repeatedly step to the child span that finished last before the
current instant, recurse into it over the interval it covers, and attribute
any uncovered remainder to the parent itself (self-time: scheduling gaps,
retry backoffs, queueing behind a fetch window). Determinism: ties in end
time break by start time and then span id, so identical traces yield
identical paths.

Each segment carries a *blame* category — the paper's recovery-time
taxonomy (detection / transfer / merge / replay / control / queueing) —
derived from the owning span's category via :data:`BLAME_BY_CATEGORY`. Self-time
on grouping spans (the recovery root, a tree aggregation) is queueing by
construction: it is time when the mechanism was waiting on nothing
measurable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.obs.tracer import Span, Tracer

__all__ = [
    "BLAME_BY_CATEGORY",
    "BLAME_CATEGORIES",
    "CriticalSegment",
    "blame_breakdown",
    "blame_of",
    "children_index",
    "critical_path",
    "recovery_roots",
]

#: Numerical slack when tiling segments (virtual-clock floats).
_EPS = 1e-12

#: The blame taxonomy every critical-path second falls into. ``replay``
#: separates delta-chain replay from the base hash-table merge, so a
#: chain-aware recovery's profile shows where incremental saves shifted
#: the cost.
BLAME_CATEGORIES = ("detection", "transfer", "merge", "replay", "control", "queueing")

#: Span category -> blame category. Categories not listed here (including
#: the bare ``recovery`` root and ``recovery.aggregate`` grouping spans)
#: attribute their *self*-time to ``queueing``: it is time on the critical
#: path where no measured work was running — fetch-window queueing, retry
#: backoff, waiting for the replacement's CPU to free up.
BLAME_BY_CATEGORY: Dict[str, str] = {
    "recovery.detect": "detection",
    "overlay.detection": "detection",
    "recovery.transfer": "transfer",
    "recovery.write": "transfer",
    "recovery.request": "transfer",
    "net.flow": "transfer",
    "recovery.merge": "merge",
    "recovery.install": "merge",
    "recovery.partition": "merge",
    "recovery.replay": "replay",
    "recovery.tree_build": "control",
    "recovery.retry": "control",
    "overlay.route": "control",
    "overlay.join": "control",
    "multicast.subscribe": "control",
    "multicast.publish": "control",
    "control.loop": "control",
    "control.action": "control",
    "control.verify": "control",
}


def blame_of(category: str) -> str:
    """The blame bucket a span category's critical-path time falls into."""
    return BLAME_BY_CATEGORY.get(category, "queueing")


@dataclass(frozen=True)
class CriticalSegment:
    """One interval of the critical path, owned by exactly one span."""

    span_id: int
    name: str
    category: str
    blame: str
    start: float
    end: float
    #: Fraction of the owning span's ``bytes`` attribute proportional to
    #: the slice of the span this segment covers — summed over transfer
    #: segments this is "bytes on the critical path".
    bytes_attributed: float = 0.0
    #: Depth of the owning span below the recovery root (root = 0).
    depth: int = 0

    @property
    def duration(self) -> float:
        return self.end - self.start

    def to_dict(self) -> Dict[str, object]:
        return {
            "span_id": self.span_id,
            "name": self.name,
            "category": self.category,
            "blame": self.blame,
            "start": self.start,
            "end": self.end,
            "bytes": self.bytes_attributed,
            "depth": self.depth,
        }


def recovery_roots(tracer: Tracer, include_saves: bool = False) -> List[Span]:
    """The root spans worth profiling: one per recovery (and optionally
    per save round) recorded by the tracer."""
    roots = []
    for span in tracer.roots():
        if span.category != "recovery" or span.kind == "instant":
            continue
        if not include_saves and span.name == "recovery/save":
            continue
        roots.append(span)
    return roots


def children_index(tracer: Tracer) -> Dict[int, List[Span]]:
    """``parent span id -> children`` over the whole trace.

    One pass over the trace serves every recovery root in it: callers
    profiling many recoveries from one tracer (the scale cells profile
    thousands) build this once and pass it to :func:`critical_path`
    instead of paying an O(spans) rebuild per root. Instant spans are
    indexed (subtree counts want them) but never own critical-path time:
    their end equals their start, so the walk's coverage test already
    rejects them.
    """
    index: Dict[int, List[Span]] = {}
    for span in tracer.spans:
        if span.parent_id is not None:
            index.setdefault(span.parent_id, []).append(span)
    return index


def _segment(span: Span, start: float, end: float, depth: int) -> CriticalSegment:
    nbytes = 0.0
    span_bytes = span.attrs.get("bytes")
    if isinstance(span_bytes, (int, float)) and span.duration > 0:
        nbytes = float(span_bytes) * (end - start) / span.duration
    return CriticalSegment(
        span_id=span.span_id,
        name=span.name,
        category=span.category,
        blame=blame_of(span.category),
        start=start,
        end=end,
        bytes_attributed=nbytes,
        depth=depth,
    )


def critical_path(
    tracer: Tracer,
    root: Span,
    children: Optional[Dict[int, List[Span]]] = None,
) -> List[CriticalSegment]:
    """The critical path through ``root``'s subtree.

    Returns segments sorted by start time that tile ``[root.start,
    root.effective_end]`` exactly — their durations sum to the root's
    makespan, which is what lets per-recovery blame fractions sum to 1.
    ``children`` is an optional precomputed :func:`children_index`.
    """
    if children is None:
        children = children_index(tracer)
    segments: List[CriticalSegment] = []

    def walk(span: Span, lo: float, hi: float, depth: int) -> None:
        kids = children.get(span.span_id, ())
        t = hi
        while t > lo + _EPS:
            best: Optional[Span] = None
            best_key = None
            for kid in kids:
                if kid.start >= t - _EPS:
                    continue
                kid_end = min(kid.effective_end, t)
                if kid_end <= lo + _EPS or kid_end <= kid.start:
                    continue
                key = (kid_end, kid.start, kid.span_id)
                if best is None or key > best_key:
                    best, best_key = kid, key
            if best is None:
                segments.append(_segment(span, lo, t, depth))
                return
            covered_end = min(best.effective_end, t)
            if covered_end < t - _EPS:
                # Nothing measured ran in (covered_end, t): parent self-time.
                segments.append(_segment(span, covered_end, t, depth))
            walk(best, max(lo, best.start), covered_end, depth + 1)
            t = max(lo, best.start)

    end = root.effective_end
    if end > root.start:
        walk(root, root.start, end, 0)
    segments.sort(key=lambda s: (s.start, s.end, s.span_id))
    return segments


def blame_breakdown(segments: List[CriticalSegment]) -> Dict[str, float]:
    """Seconds of critical-path time per blame category (all keys present)."""
    totals = {blame: 0.0 for blame in BLAME_CATEGORIES}
    for segment in segments:
        totals[segment.blame] += segment.duration
    return totals
