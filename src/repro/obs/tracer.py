"""Deterministic, sim-clock-driven span tracing.

Every latency claim in the paper comes down to *where recovery time goes*:
transfer versus merge versus routing hops, per mechanism (Figs. 8-9). The
tracer records that breakdown as a tree of spans whose timestamps are
virtual-clock seconds read from the owning :class:`~repro.sim.kernel.Simulator`
— never wall clock — so two runs with the same seed produce byte-identical
traces.

Design rules:

- **No-op by default.** A simulation without tracing gets the
  :data:`NULL_TRACER` singleton whose ``start``/``instant`` calls return the
  shared :data:`NULL_SPAN` and do nothing else; the instrumentation threaded
  through the kernel, network, overlay, and recovery mechanisms costs one
  attribute lookup and one no-op call per site.
- **Explicit parents.** The simulation is an event cascade, not a call
  stack, so spans are parented explicitly (``root.child(...)`` or
  ``tracer.start(..., parent=span)``) instead of through an ambient
  context-manager stack that interleaved events would corrupt.
- **Closed or open.** A span without an ``end`` is still open; exports
  clamp open spans to the tracer's current clock so aborted experiments
  still render.

The module also hosts the process-wide collection switch used by the bench
CLI (``python -m repro.bench fig8a --trace out.json``): once
:func:`enable_tracing` is on, every freshly built :class:`Simulator` asks
:func:`default_tracer` for a live tracer and registers it for export.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

__all__ = [
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_SPAN",
    "NULL_TRACER",
    "enable_tracing",
    "tracing_enabled",
    "default_tracer",
    "collected_tracers",
    "clear_collected",
    "export_collected",
    "drop_collected",
    "inject_collected",
]


class Span:
    """One timed operation: name, category, parent link, and attributes.

    ``start``/``end`` are virtual-clock seconds. ``attrs`` carries scalar
    payload facts (byte counts, node names, knob values) that end up in the
    exported trace's ``args``.
    """

    __slots__ = ("_tracer", "span_id", "parent_id", "name", "category", "kind", "start", "end", "attrs")

    def __init__(
        self,
        tracer: "Tracer",
        span_id: int,
        parent_id: Optional[int],
        name: str,
        category: str,
        kind: str,
        start: float,
        attrs: Dict[str, Any],
    ) -> None:
        self._tracer = tracer
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.category = category
        self.kind = kind
        self.start = start
        self.end: Optional[float] = None
        self.attrs = attrs

    # --------------------------------------------------------------- lifecycle

    def child(self, name: str, category: str = "", **attrs: Any) -> "Span":
        """Open a child span starting at the tracer's current clock."""
        return self._tracer.start(name, category=category, parent=self, **attrs)

    def annotate(self, **attrs: Any) -> "Span":
        """Attach (or overwrite) attributes on the span."""
        self.attrs.update(attrs)
        return self

    def add_bytes(self, nbytes: float) -> "Span":
        """Accumulate into the conventional ``bytes`` attribute."""
        self.attrs["bytes"] = self.attrs.get("bytes", 0.0) + nbytes
        return self

    def finish(self, at: Optional[float] = None, **attrs: Any) -> "Span":
        """Close the span at ``at`` (default: the tracer's clock now).

        Finishing twice keeps the first end time (abort paths may race a
        completion) but still merges the new attributes.
        """
        if attrs:
            self.attrs.update(attrs)
        if self.end is None:
            self.end = self._tracer.now if at is None else at
        return self

    # ----------------------------------------------------------------- queries

    @property
    def done(self) -> bool:
        return self.end is not None

    @property
    def effective_end(self) -> float:
        """The span's end; open spans clamp to the tracer's current clock.

        The public way to read "where does this span stop right now" —
        exports, the critical-path profiler, and anything else that needs
        an end time for a possibly-open span should use this instead of
        reaching into the owning tracer.
        """
        return self.end if self.end is not None else self._tracer.now

    @property
    def duration(self) -> float:
        """Seconds covered; open spans extend to the tracer's clock."""
        return self.effective_end - self.start

    def __repr__(self) -> str:
        state = f"{self.start:.4f}..{self.end:.4f}" if self.done else f"{self.start:.4f}.."
        return f"Span(#{self.span_id} {self.name!r} [{self.category}] {state})"


class _NullSpan:
    """The do-nothing span handed out by :class:`NullTracer`."""

    __slots__ = ()

    span_id = -1
    parent_id = None
    name = ""
    category = ""
    kind = "span"
    start = 0.0
    end = 0.0
    effective_end = 0.0
    done = True
    duration = 0.0
    attrs: Dict[str, Any] = {}

    def child(self, name: str, category: str = "", **attrs: Any) -> "_NullSpan":
        return self

    def annotate(self, **attrs: Any) -> "_NullSpan":
        return self

    def add_bytes(self, nbytes: float) -> "_NullSpan":
        return self

    def finish(self, at: Optional[float] = None, **attrs: Any) -> "_NullSpan":
        return self

    def __repr__(self) -> str:
        return "NullSpan()"


NULL_SPAN = _NullSpan()


class Tracer:
    """Collects spans against one simulation's virtual clock."""

    enabled = True

    def __init__(self, name: str = "sr3") -> None:
        self.name = name
        self.spans: List[Span] = []
        self._next_id = 1
        self._clock: Optional[Callable[[], float]] = None

    # ------------------------------------------------------------------- clock

    def bind_clock(self, clock: Callable[[], float]) -> None:
        """Point the tracer at a virtual clock (the simulator's ``now``)."""
        self._clock = clock

    @property
    def now(self) -> float:
        return self._clock() if self._clock is not None else 0.0

    # ----------------------------------------------------------------- records

    def start(
        self,
        name: str,
        category: str = "",
        parent: Optional[Span] = None,
        at: Optional[float] = None,
        **attrs: Any,
    ) -> Span:
        """Open a span at the current clock (or an explicit ``at`` time)."""
        parent_id = parent.span_id if parent is not None and parent.span_id >= 0 else None
        span = Span(
            self,
            self._next_id,
            parent_id,
            name,
            category,
            "span",
            self.now if at is None else at,
            attrs,
        )
        self._next_id += 1
        self.spans.append(span)
        return span

    def record(
        self,
        name: str,
        start: float,
        end: float,
        category: str = "",
        parent: Optional[Span] = None,
        **attrs: Any,
    ) -> Span:
        """Record a span whose extent is already known (e.g. a scheduled
        CPU phase: merge, install, partition)."""
        span = self.start(name, category=category, parent=parent, at=start, **attrs)
        span.end = end
        return span

    def instant(
        self,
        name: str,
        category: str = "",
        parent: Optional[Span] = None,
        at: Optional[float] = None,
        **attrs: Any,
    ) -> Span:
        """Record a point event (a route, a failure detection, a join)."""
        when = self.now if at is None else at
        span = Span(
            self,
            self._next_id,
            parent.span_id if parent is not None and parent.span_id >= 0 else None,
            name,
            category,
            "instant",
            when,
            attrs,
        )
        span.end = when
        self._next_id += 1
        self.spans.append(span)
        return span

    # ----------------------------------------------------------------- queries

    def roots(self) -> List[Span]:
        return [s for s in self.spans if s.parent_id is None]

    def children_of(self, span: Span) -> List[Span]:
        return [s for s in self.spans if s.parent_id == span.span_id]

    def find(self, fragment: str, category: Optional[str] = None) -> List[Span]:
        """Spans whose name contains ``fragment`` (and category, if given)."""
        return [
            s
            for s in self.spans
            if fragment in s.name and (category is None or s.category == category)
        ]

    def duration_by_category(self) -> Dict[str, float]:
        """Total seconds covered per category (instants contribute zero).

        Overlapping spans in one category double-count deliberately: the
        result answers "how much span-time was spent doing X", the same way
        per-node CPU accounting sums across nodes.
        """
        totals: Dict[str, float] = {}
        for span in self.spans:
            if span.kind == "instant":
                continue
            totals[span.category] = totals.get(span.category, 0.0) + span.duration
        return totals

    def __len__(self) -> int:
        return len(self.spans)

    def __repr__(self) -> str:
        return f"Tracer({self.name!r}, spans={len(self.spans)})"


class NullTracer:
    """The disabled tracer: every operation is a no-op.

    All record methods return :data:`NULL_SPAN`, so instrumentation sites
    never need to branch on whether tracing is active.
    """

    enabled = False
    name = "null"
    spans: List[Span] = []

    def bind_clock(self, clock: Callable[[], float]) -> None:
        pass

    @property
    def now(self) -> float:
        return 0.0

    def start(self, name: str, category: str = "", parent: Any = None, at: Any = None, **attrs: Any) -> _NullSpan:
        return NULL_SPAN

    def record(self, name: str, start: float, end: float, category: str = "", parent: Any = None, **attrs: Any) -> _NullSpan:
        return NULL_SPAN

    def instant(self, name: str, category: str = "", parent: Any = None, at: Any = None, **attrs: Any) -> _NullSpan:
        return NULL_SPAN

    def roots(self) -> List[Span]:
        return []

    def children_of(self, span: Any) -> List[Span]:
        return []

    def find(self, fragment: str, category: Optional[str] = None) -> List[Span]:
        return []

    def duration_by_category(self) -> Dict[str, float]:
        return {}

    def __len__(self) -> int:
        return 0

    def __repr__(self) -> str:
        return "NullTracer()"


NULL_TRACER = NullTracer()


# ----------------------------------------------------- process-wide collection

_COLLECT_ENABLED = False
_COLLECTED: List[Tracer] = []


def enable_tracing(enabled: bool = True) -> None:
    """Turn on (or off) tracer creation for every new simulation.

    While enabled, :func:`default_tracer` hands each caller a live tracer
    and keeps it in the collected list for a combined export — this is how
    the bench CLI traces experiments whose scenarios it does not build
    itself.
    """
    global _COLLECT_ENABLED
    _COLLECT_ENABLED = enabled


def tracing_enabled() -> bool:
    return _COLLECT_ENABLED


def default_tracer(name: str = "sim") -> Any:
    """A tracer for a new simulation: live when collection is on, else null."""
    if not _COLLECT_ENABLED:
        return NULL_TRACER
    tracer = Tracer(name=f"{name}-{len(_COLLECTED)}")
    _COLLECTED.append(tracer)
    return tracer


def collected_tracers() -> List[Tracer]:
    return list(_COLLECTED)


def clear_collected() -> None:
    del _COLLECTED[:]


# ------------------------------------------------- cross-process import/export
#
# The parallel sweep runner (repro.bench.parallel) runs cells in spawn-fresh
# worker processes whose collectors start empty. Each worker exports its
# collected tracers as plain, picklable payloads; the parent re-adopts them
# in cell order, renumbering with its own collection indices, so trace
# artifacts come out byte-identical to an in-process sweep.


def export_collected(start: int = 0) -> List[Dict[str, Any]]:
    """Snapshot collected tracers (from ``start``) as picklable payloads.

    The per-collection index suffix that :func:`default_tracer` appended is
    stripped so the importing process can re-apply its own numbering. The
    tracer's current clock is captured too: open spans clamp to it on
    export, and the reconstruction must keep clamping to the same instant.
    """
    payloads: List[Dict[str, Any]] = []
    for index in range(start, len(_COLLECTED)):
        tracer = _COLLECTED[index]
        suffix = f"-{index}"
        name = tracer.name
        if name.endswith(suffix):
            name = name[: -len(suffix)]
        payloads.append(
            {
                "name": name,
                "now": tracer.now,
                "spans": [
                    (
                        s.span_id,
                        s.parent_id,
                        s.name,
                        s.category,
                        s.kind,
                        s.start,
                        s.end,
                        dict(s.attrs),
                    )
                    for s in tracer.spans
                ],
            }
        )
    return payloads


def drop_collected(start: int = 0) -> None:
    """Forget collected tracers from ``start`` on (after exporting them)."""
    del _COLLECTED[start:]


def inject_collected(payload: Dict[str, Any]) -> Tracer:
    """Rebuild an exported tracer and adopt it into this process's collection.

    Mirrors :func:`default_tracer`'s naming: the payload's base name gets
    this collection's next index appended, so injecting worker payloads in
    cell order reproduces the serial sweep's tracer names exactly. The
    rebuilt tracer's clock is frozen at the exported ``now`` so open spans
    keep clamping to the same instant they did in the worker.
    """
    tracer = Tracer(name=f"{payload['name']}-{len(_COLLECTED)}")
    tracer.bind_clock(lambda now=float(payload.get("now", 0.0)): now)
    next_id = 1
    for span_id, parent_id, name, category, kind, start, end, attrs in payload["spans"]:
        span = Span(tracer, span_id, parent_id, name, category, kind, start, attrs)
        span.end = end
        tracer.spans.append(span)
        next_id = max(next_id, span_id + 1)
    tracer._next_id = next_id
    _COLLECTED.append(tracer)
    return tracer
