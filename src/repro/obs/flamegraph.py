"""Flamegraph export: collapsed stacks and speedscope documents.

Two interchange formats for the span forests:

- **Collapsed stacks** (``frame;frame;frame value`` lines) — the input
  format of Brendan Gregg's ``flamegraph.pl`` and of speedscope's
  drag-and-drop importer. One line per unique span-name stack; the value
  is the stack's *self-time* in integer microseconds of virtual clock.
- **Speedscope JSON** — the `speedscope file format
  <https://www.speedscope.app/file-format-schema.json>`_, emitted as one
  ``sampled`` profile per tracer (each unique stack becomes one weighted
  sample). Sampled profiles tolerate the overlapping sibling spans that a
  parallel recovery produces, which the nested ``evented`` form does not.

Self-time is a span's duration minus the union of its children's
intervals clipped to the span — concurrent children never double-subtract.
Serialization is pinned (sorted stacks, sorted keys) so same-seed runs
write byte-identical artifacts.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.obs.tracer import Span, Tracer, collected_tracers

__all__ = [
    "collapsed_stacks",
    "flamegraph_text",
    "speedscope_document",
    "write_flamegraph",
    "write_speedscope",
]

TracerLike = Union[Tracer, Sequence[Tracer]]


def _as_tracers(tracers: Optional[TracerLike]) -> List[Tracer]:
    if tracers is None:
        return collected_tracers()
    if isinstance(tracers, Tracer):
        return [tracers]
    return list(tracers)


def _interval_union(intervals: List[Tuple[float, float]]) -> float:
    """Total length covered by possibly-overlapping intervals."""
    total = 0.0
    last_end = float("-inf")
    for start, end in sorted(intervals):
        if end <= last_end:
            continue
        total += end - max(start, last_end)
        last_end = end
    return total


def _self_time(span: Span, children: List[Span]) -> float:
    clipped = [
        (max(child.start, span.start), min(child.effective_end, span.effective_end))
        for child in children
        if child.effective_end > span.start and child.start < span.effective_end
    ]
    covered = _interval_union([(s, e) for s, e in clipped if e > s])
    return max(0.0, span.duration - covered)


def collapsed_stacks(
    tracer: Tracer, root_filter: Optional[str] = None
) -> Dict[str, float]:
    """Map ``frame;frame;...`` stacks to self-time seconds for one tracer.

    ``root_filter`` keeps only subtrees whose root span has that category
    (e.g. ``"recovery"`` to drop DHT maintenance noise from the graph).
    """
    children: Dict[int, List[Span]] = {}
    for span in tracer.spans:
        if span.parent_id is not None and span.kind != "instant":
            children.setdefault(span.parent_id, []).append(span)
    stacks: Dict[str, float] = {}

    def walk(span: Span, prefix: str) -> None:
        stack = f"{prefix};{span.name}" if prefix else span.name
        kids = children.get(span.span_id, [])
        self_time = _self_time(span, kids)
        if self_time > 0:
            stacks[stack] = stacks.get(stack, 0.0) + self_time
        for kid in kids:
            walk(kid, stack)

    for root in tracer.roots():
        if root.kind == "instant":
            continue
        if root_filter is not None and root.category != root_filter:
            continue
        walk(root, "")
    return stacks


def flamegraph_text(
    tracers: Optional[TracerLike] = None, root_filter: Optional[str] = "recovery"
) -> str:
    """Collapsed-stack lines for ``flamegraph.pl`` (or speedscope import).

    Values are integer virtual-clock microseconds; stacks from several
    tracers are prefixed with the tracer name so merged artifacts keep
    simulations distinguishable. Lines are sorted for determinism.
    """
    lines: List[str] = []
    tracer_list = _as_tracers(tracers)
    for tracer in tracer_list:
        prefix = f"{tracer.name};" if len(tracer_list) > 1 else ""
        for stack, seconds in collapsed_stacks(tracer, root_filter).items():
            micros = int(round(seconds * 1e6))
            if micros > 0:
                lines.append(f"{prefix}{stack} {micros}")
    return "\n".join(sorted(lines)) + ("\n" if lines else "")


def speedscope_document(
    tracers: Optional[TracerLike] = None,
    name: str = "sr3-recovery",
    root_filter: Optional[str] = "recovery",
) -> Dict[str, object]:
    """A speedscope file: one ``sampled`` profile per tracer.

    Loadable at https://www.speedscope.app (or ``speedscope file.json``).
    """
    frames: List[Dict[str, str]] = []
    frame_index: Dict[str, int] = {}

    def frame_of(frame_name: str) -> int:
        if frame_name not in frame_index:
            frame_index[frame_name] = len(frames)
            frames.append({"name": frame_name})
        return frame_index[frame_name]

    profiles: List[Dict[str, object]] = []
    for tracer in _as_tracers(tracers):
        samples: List[List[int]] = []
        weights: List[float] = []
        for stack, seconds in sorted(collapsed_stacks(tracer, root_filter).items()):
            if seconds <= 0:
                continue
            samples.append([frame_of(part) for part in stack.split(";")])
            weights.append(seconds)
        profiles.append(
            {
                "type": "sampled",
                "name": tracer.name,
                "unit": "seconds",
                "startValue": 0,
                "endValue": sum(weights),
                "samples": samples,
                "weights": weights,
            }
        )
    return {
        "$schema": "https://www.speedscope.app/file-format-schema.json",
        "shared": {"frames": frames},
        "profiles": profiles,
        "name": name,
        "exporter": "sr3-profiler",
        "activeProfileIndex": 0,
    }


def write_flamegraph(
    path: str,
    tracers: Optional[TracerLike] = None,
    root_filter: Optional[str] = "recovery",
) -> str:
    """Write collapsed stacks to ``path``; returns the path."""
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(flamegraph_text(tracers, root_filter))
    return path


def write_speedscope(
    path: str,
    tracers: Optional[TracerLike] = None,
    name: str = "sr3-recovery",
    root_filter: Optional[str] = "recovery",
) -> str:
    """Write a speedscope JSON document to ``path``; returns the path."""
    payload = speedscope_document(tracers, name=name, root_filter=root_filter)
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(json.dumps(payload, sort_keys=True, separators=(",", ":")))
        fh.write("\n")
    return path
