"""Recovery observability: span tracing, metrics, and trace export.

The layer behind every "where does recovery time go" question:

- :mod:`repro.obs.tracer` — hierarchical spans on the simulation clock
  (``recovery/star`` → ``fetch shard 3 from node-17`` → the network flow),
  with a zero-cost :class:`NullTracer` default;
- :mod:`repro.obs.registry` — counters, time series, gauges, and
  histograms behind one named :class:`MetricsRegistry` per simulation;
- :mod:`repro.obs.export` — Chrome ``trace_event`` JSON and plain-dict
  dumps, byte-identical across same-seed runs;
- :mod:`repro.obs.critical_path` — the critical path through a recovery's
  span DAG with per-category blame attribution;
- :mod:`repro.obs.profile` — deterministic :class:`RecoveryProfile`
  reports (blame fractions, bytes on the critical path, predicted vs
  observed mechanism cost);
- :mod:`repro.obs.flamegraph` — collapsed-stack and speedscope exports;
- :mod:`repro.obs.timeseries` — the continuous telemetry pipeline: a
  :class:`TelemetryPipeline` samples the registry and tracer into
  ring-buffered sim-clock series (rates from counters, windowed
  percentiles from histograms);
- :mod:`repro.obs.slo` — multi-window burn-rate SLO alerting over those
  series;
- :mod:`repro.obs.anomaly` — rolling median/MAD z-score spikes and
  level-shift change points;
- :mod:`repro.obs.dashboard` — a self-contained HTML dashboard (inline
  SVG sparklines, SLO status, alert timeline).

Enable per deployment (``SR3.create(trace=True)``), per scenario
(``build_scenario(tracer=Tracer())``), or process-wide for the bench CLI
(:func:`enable_tracing`, then every new :class:`~repro.sim.kernel.Simulator`
records into a collected tracer).
"""

from repro.obs.critical_path import (
    BLAME_BY_CATEGORY,
    BLAME_CATEGORIES,
    CriticalSegment,
    blame_breakdown,
    blame_of,
    critical_path,
    recovery_roots,
)
from repro.obs.export import chrome_trace, dumps_trace, trace_dict, write_trace
from repro.obs.flamegraph import (
    collapsed_stacks,
    flamegraph_text,
    speedscope_document,
    write_flamegraph,
    write_speedscope,
)
from repro.obs.profile import (
    ProfileReport,
    RecoveryProfile,
    build_report,
    profile_recovery,
    profile_tracers,
    write_profile,
)
from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    TimeSeries,
    clear_collected_registries,
    collected_registries,
    default_registry,
    enable_metrics_collection,
    metrics_collection_enabled,
)
from repro.obs.anomaly import Anomaly, AnomalyDetector
from repro.obs.dashboard import render_dashboard, write_dashboard
from repro.obs.slo import DEFAULT_WINDOWS, SLO, BurnWindow, SLOAlert, SLOEngine
from repro.obs.timeseries import (
    SERIES_KINDS,
    SeriesBuffer,
    TelemetryConfig,
    TelemetryPipeline,
)
from repro.obs.tracer import (
    NULL_SPAN,
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    clear_collected,
    collected_tracers,
    default_tracer,
    enable_tracing,
    tracing_enabled,
)

__all__ = [
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_SPAN",
    "NULL_TRACER",
    "enable_tracing",
    "tracing_enabled",
    "default_tracer",
    "collected_tracers",
    "clear_collected",
    "Counter",
    "TimeSeries",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "default_registry",
    "enable_metrics_collection",
    "metrics_collection_enabled",
    "collected_registries",
    "clear_collected_registries",
    "chrome_trace",
    "trace_dict",
    "dumps_trace",
    "write_trace",
    "BLAME_BY_CATEGORY",
    "BLAME_CATEGORIES",
    "CriticalSegment",
    "blame_of",
    "blame_breakdown",
    "critical_path",
    "recovery_roots",
    "RecoveryProfile",
    "ProfileReport",
    "profile_recovery",
    "profile_tracers",
    "build_report",
    "write_profile",
    "collapsed_stacks",
    "flamegraph_text",
    "speedscope_document",
    "write_flamegraph",
    "write_speedscope",
    "SERIES_KINDS",
    "SeriesBuffer",
    "TelemetryConfig",
    "TelemetryPipeline",
    "SLO",
    "BurnWindow",
    "DEFAULT_WINDOWS",
    "SLOAlert",
    "SLOEngine",
    "Anomaly",
    "AnomalyDetector",
    "render_dashboard",
    "write_dashboard",
]
