"""Recovery observability: span tracing, metrics, and trace export.

The layer behind every "where does recovery time go" question:

- :mod:`repro.obs.tracer` — hierarchical spans on the simulation clock
  (``recovery/star`` → ``fetch shard 3 from node-17`` → the network flow),
  with a zero-cost :class:`NullTracer` default;
- :mod:`repro.obs.registry` — counters, time series, gauges, and
  histograms behind one named :class:`MetricsRegistry` per simulation;
- :mod:`repro.obs.export` — Chrome ``trace_event`` JSON and plain-dict
  dumps, byte-identical across same-seed runs.

Enable per deployment (``SR3.create(trace=True)``), per scenario
(``build_scenario(tracer=Tracer())``), or process-wide for the bench CLI
(:func:`enable_tracing`, then every new :class:`~repro.sim.kernel.Simulator`
records into a collected tracer).
"""

from repro.obs.export import chrome_trace, dumps_trace, trace_dict, write_trace
from repro.obs.registry import Counter, Gauge, Histogram, MetricsRegistry, TimeSeries
from repro.obs.tracer import (
    NULL_SPAN,
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    clear_collected,
    collected_tracers,
    default_tracer,
    enable_tracing,
    tracing_enabled,
)

__all__ = [
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_SPAN",
    "NULL_TRACER",
    "enable_tracing",
    "tracing_enabled",
    "default_tracer",
    "collected_tracers",
    "clear_collected",
    "Counter",
    "TimeSeries",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "chrome_trace",
    "trace_dict",
    "dumps_trace",
    "write_trace",
]
