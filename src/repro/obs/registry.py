"""Metric primitives and the per-simulation registry.

One :class:`MetricsRegistry` per simulation unifies the four primitive
kinds behind name-keyed accessors:

- :class:`Counter` — monotonic totals with labelled sub-counts (bytes
  moved, routes performed, recoveries completed);
- :class:`TimeSeries` — append-only ``(time, value)`` points (CPU and
  memory load curves, Fig. 12);
- :class:`Gauge` — a current value that moves both ways (pending events,
  live flows);
- :class:`Histogram` — a value distribution with percentiles (route hop
  counts, recovery durations).

``Counter`` and ``TimeSeries`` used to live in :mod:`repro.sim.metrics`;
that module now re-exports them from here so existing imports keep
working. Everything is deterministic plain-Python state: ``dump()``
round-trips to a JSON-friendly dict for experiment artifacts.
"""

from __future__ import annotations

from collections import defaultdict, deque
from typing import Callable, Deque, Dict, List, Optional, Tuple

__all__ = [
    "Counter",
    "TimeSeries",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "default_registry",
    "enable_metrics_collection",
    "metrics_collection_enabled",
    "collected_registries",
    "clear_collected_registries",
]


class Counter:
    """A named monotonic counter with labelled sub-counts."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.total = 0.0
        self._by_label: Dict[str, float] = defaultdict(float)

    def add(self, amount: float, label: str = "") -> None:
        if amount < 0:
            raise ValueError("counters are monotonic; amount must be >= 0")
        self.total += amount
        if label:
            self._by_label[label] += amount

    def get(self, label: str) -> float:
        return self._by_label.get(label, 0.0)

    def labels(self) -> Dict[str, float]:
        return dict(self._by_label)

    def __repr__(self) -> str:
        return f"Counter({self.name}={self.total})"


class TimeSeries:
    """Append-only (time, value) series; points must arrive in time order."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._points: List[Tuple[float, float]] = []

    def record(self, time: float, value: float) -> None:
        if self._points and time < self._points[-1][0]:
            raise ValueError("time series points must be appended in order")
        self._points.append((time, value))

    def __len__(self) -> int:
        return len(self._points)

    @property
    def points(self) -> List[Tuple[float, float]]:
        return list(self._points)

    def values(self) -> List[float]:
        return [v for _, v in self._points]

    def times(self) -> List[float]:
        return [t for t, _ in self._points]

    def last(self) -> Tuple[float, float]:
        if not self._points:
            raise ValueError(f"time series {self.name} is empty")
        return self._points[-1]

    def value_at(self, time: float) -> float:
        """Step-function lookup: last value at or before ``time``."""
        best = None
        for t, v in self._points:
            if t <= time:
                best = v
            else:
                break
        if best is None:
            raise ValueError(f"no point at or before t={time} in {self.name}")
        return best


class Gauge:
    """A named value that can move in both directions."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount

    def __repr__(self) -> str:
        return f"Gauge({self.name}={self.value})"


class Histogram:
    """A named value distribution; keeps every observation.

    Simulation scale (thousands of observations, not billions) makes exact
    storage cheaper than bucketing and keeps percentiles precise.

    Aggregates carry no timestamps, which is all the batch reports need —
    but time-series replay (the telemetry pipeline's windowed percentiles)
    does need them, so :meth:`keep_observations` opts a histogram into
    retaining the most recent ``(sim_time, value)`` pairs in a bounded
    ring. The time comes from the registry's bound clock (the simulator
    binds its virtual clock at construction) unless the call site passes
    ``at`` explicitly.
    """

    def __init__(self, name: str, clock: Optional[Callable[[], float]] = None) -> None:
        self.name = name
        self._values: List[float] = []
        self._clock = clock
        self._observations: Optional[Deque[Tuple[float, float]]] = None

    def keep_observations(self, limit: int = 4096) -> None:
        """Opt in to timestamped retention of the last ``limit`` observations."""
        if limit <= 0:
            raise ValueError("observation limit must be positive")
        if self._observations is None:
            self._observations = deque(maxlen=int(limit))
        elif self._observations.maxlen != int(limit):
            self._observations = deque(self._observations, maxlen=int(limit))

    @property
    def keeps_observations(self) -> bool:
        return self._observations is not None

    def observations(self) -> List[Tuple[float, float]]:
        """The retained ``(sim_time, value)`` pairs, oldest first."""
        return list(self._observations or ())

    def observe(self, value: float, at: Optional[float] = None) -> None:
        value = float(value)
        self._values.append(value)
        if self._observations is not None:
            if at is None:
                at = self._clock() if self._clock is not None else 0.0
            self._observations.append((float(at), value))

    @property
    def count(self) -> int:
        return len(self._values)

    @property
    def total(self) -> float:
        return sum(self._values)

    @property
    def mean(self) -> float:
        if not self._values:
            raise ValueError(f"histogram {self.name} is empty")
        return self.total / len(self._values)

    @property
    def min(self) -> float:
        if not self._values:
            raise ValueError(f"histogram {self.name} is empty")
        return min(self._values)

    @property
    def max(self) -> float:
        if not self._values:
            raise ValueError(f"histogram {self.name} is empty")
        return max(self._values)

    def percentile(self, q: float) -> float:
        """The q-th percentile (0..100), nearest-rank on sorted values."""
        if not self._values:
            raise ValueError(f"histogram {self.name} is empty")
        if not 0 <= q <= 100:
            raise ValueError("percentile must be within [0, 100]")
        ordered = sorted(self._values)
        rank = max(0, min(len(ordered) - 1, int(round(q / 100.0 * (len(ordered) - 1)))))
        return ordered[rank]

    def values(self) -> List[float]:
        return list(self._values)

    def __repr__(self) -> str:
        return f"Histogram({self.name}, n={self.count})"


class MetricsRegistry:
    """All metrics of one simulation, keyed by name.

    Accessors create on first use, so call sites never pre-register; a
    name is permanently bound to the first kind that claimed it.
    """

    def __init__(self, name: str = "metrics") -> None:
        self.name = name
        self._counters: Dict[str, Counter] = {}
        self._series: Dict[str, TimeSeries] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._clock: Optional[Callable[[], float]] = None

    def bind_clock(self, clock: Callable[[], float]) -> None:
        """Give timestamped observations a time source (the sim's clock)."""
        self._clock = clock
        for histogram in self._histograms.values():
            histogram._clock = clock

    def counter(self, name: str) -> Counter:
        if name not in self._counters:
            self._counters[name] = Counter(name)
        return self._counters[name]

    def series(self, name: str) -> TimeSeries:
        if name not in self._series:
            self._series[name] = TimeSeries(name)
        return self._series[name]

    def gauge(self, name: str) -> Gauge:
        if name not in self._gauges:
            self._gauges[name] = Gauge(name)
        return self._gauges[name]

    def histogram(self, name: str) -> Histogram:
        if name not in self._histograms:
            self._histograms[name] = Histogram(name, clock=self._clock)
        return self._histograms[name]

    def counters(self) -> Dict[str, Counter]:
        return dict(self._counters)

    def all_series(self) -> Dict[str, TimeSeries]:
        return dict(self._series)

    def gauges(self) -> Dict[str, Gauge]:
        return dict(self._gauges)

    def histograms(self) -> Dict[str, Histogram]:
        return dict(self._histograms)

    def dump(self) -> Dict[str, object]:
        """A deterministic, JSON-friendly snapshot of every metric."""
        return {
            "name": self.name,
            "counters": {
                n: {"total": c.total, "labels": dict(sorted(c.labels().items()))}
                for n, c in sorted(self._counters.items())
            },
            "gauges": {n: g.value for n, g in sorted(self._gauges.items())},
            "histograms": {
                n: self._dump_histogram(h)
                for n, h in sorted(self._histograms.items())
            },
            "series": {
                n: s.points for n, s in sorted(self._series.items())
            },
        }

    @staticmethod
    def _dump_histogram(h: Histogram) -> Dict[str, object]:
        out: Dict[str, object] = {
            "count": h.count,
            "total": h.total,
            "min": h.min if h.count else None,
            "max": h.max if h.count else None,
        }
        if h.keeps_observations:
            out["observations"] = [[t, v] for t, v in h.observations()]
        return out


# ----------------------------------------------------- process-wide collection
#
# Mirrors the tracer collector: the bench CLI flips the switch on, every
# freshly built Simulator asks :func:`default_registry` for its registry,
# and ``--metrics-out`` dumps the whole collected list as one artifact.

_COLLECT_REGISTRIES = False
_COLLECTED_REGISTRIES: List[MetricsRegistry] = []


def enable_metrics_collection(enabled: bool = True) -> None:
    """Turn on (or off) registry collection for every new simulation."""
    global _COLLECT_REGISTRIES
    _COLLECT_REGISTRIES = enabled


def metrics_collection_enabled() -> bool:
    return _COLLECT_REGISTRIES


def default_registry(name: str = "sim") -> MetricsRegistry:
    """A registry for a new simulation; collected while the switch is on.

    Unlike tracers there is no null variant — counters are cheap enough to
    keep always — so a fresh registry is returned either way; collection
    only changes whether it is retained (with an indexed name) for export.
    """
    if not _COLLECT_REGISTRIES:
        return MetricsRegistry(name)
    registry = MetricsRegistry(f"{name}-{len(_COLLECTED_REGISTRIES)}")
    _COLLECTED_REGISTRIES.append(registry)
    return registry


def collected_registries() -> List[MetricsRegistry]:
    return list(_COLLECTED_REGISTRIES)


def clear_collected_registries() -> None:
    del _COLLECTED_REGISTRIES[:]


# ------------------------------------------------- cross-process import/export
#
# Mirrors the tracer module: the parallel sweep runner (repro.bench.parallel)
# collects registries inside spawn-fresh worker processes, exports them as
# plain dump payloads, and the parent re-adopts them in cell order with its
# own collection indices — so ``--metrics-out`` artifacts come out
# byte-identical to an in-process sweep.


class RestoredRegistry:
    """A collected registry re-imported from another process's dump.

    Quacks like :class:`MetricsRegistry` for artifact export — ``name`` and
    ``dump()`` — which is all the metrics artifact writer reads.
    """

    def __init__(self, payload: Dict[str, object]) -> None:
        self._payload = payload
        self.name = str(payload.get("name", "sim"))

    def dump(self) -> Dict[str, object]:
        return self._payload


def export_collected_registries(start: int = 0) -> List[Dict[str, object]]:
    """Picklable dumps of collected registries (from ``start``), with the
    per-collection index suffix stripped for renumbering on import."""
    payloads: List[Dict[str, object]] = []
    for index in range(start, len(_COLLECTED_REGISTRIES)):
        payload = _COLLECTED_REGISTRIES[index].dump()
        name = payload.get("name")
        suffix = f"-{index}"
        if isinstance(name, str) and name.endswith(suffix):
            payload = dict(payload)
            payload["name"] = name[: -len(suffix)]
        payloads.append(payload)
    return payloads


def drop_collected_registries(start: int = 0) -> None:
    """Forget collected registries from ``start`` on (after exporting)."""
    del _COLLECTED_REGISTRIES[start:]


def inject_registry_dump(payload: Dict[str, object]) -> None:
    """Adopt an exported registry dump, renumbered like a fresh
    :func:`default_registry` collection would have named it."""
    adopted = dict(payload)
    adopted["name"] = f"{payload.get('name', 'sim')}-{len(_COLLECTED_REGISTRIES)}"
    _COLLECTED_REGISTRIES.append(RestoredRegistry(adopted))  # type: ignore[arg-type]
