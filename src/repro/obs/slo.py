"""Declarative SLOs with multi-window burn-rate alerting.

An :class:`SLO` names a telemetry series (any :class:`~repro.obs.
timeseries.SeriesBuffer` the pipeline produces), a good/bad predicate
over its samples (``value <= threshold`` or ``value >= threshold``), and
an error budget — the fraction of samples allowed to be bad. The
:class:`SLOEngine` evaluates every objective against sliding windows on
the simulated clock using the SRE multi-window burn-rate recipe: an
alert fires when *both* a long window and a short window burn the budget
faster than the window's ``burn_rate`` multiple. The long window keeps
one transient sample from paging; the short window makes the alert reset
quickly once the system heals.

Burn rate is ``bad_fraction(window) / budget``: burning at exactly 1.0
spends the budget exactly; a threshold of 4.0 over a 6-second window
means the objective is violated four times faster than the budget
sustains. Fired alerts latch per (objective, severity) and re-arm only
after the long-window burn drops below 1.0, so a sustained outage pages
once, not once per evaluation.

Alerts convert to first-class control-plane events
(:meth:`SLOAlert.to_event`, kind ``slo-burning``) — the remediation
controller treats them exactly like detector-declared failures, which is
what lets a policy trigger proactive recovery from telemetry alone.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import ConfigError
from repro.obs.timeseries import TelemetryPipeline

__all__ = [
    "BurnWindow",
    "DEFAULT_WINDOWS",
    "SLO",
    "SLOAlert",
    "SLOEngine",
]


@dataclass(frozen=True)
class BurnWindow:
    """One (long, short) window pair with its burn threshold."""

    long_s: float
    short_s: float
    burn_rate: float
    severity: str = "critical"

    def __post_init__(self) -> None:
        if self.long_s <= 0 or self.short_s <= 0:
            raise ConfigError("burn windows must be positive")
        if self.short_s > self.long_s:
            raise ConfigError("the short window cannot exceed the long window")
        if self.burn_rate <= 0:
            raise ConfigError("burn_rate must be positive")


#: Paging-then-warning defaults scaled to simulation timescales (seconds,
#: not hours): page on a fast burn over 6s, warn on a slow burn over 30s.
DEFAULT_WINDOWS: Tuple[BurnWindow, ...] = (
    BurnWindow(long_s=6.0, short_s=1.5, burn_rate=4.0, severity="critical"),
    BurnWindow(long_s=30.0, short_s=6.0, burn_rate=2.0, severity="warning"),
)


@dataclass(frozen=True)
class SLO:
    """One objective over one telemetry series."""

    name: str
    series: str
    #: ``le``: samples are good while ``value <= threshold`` (latency,
    #: backlog); ``ge``: good while ``value >= threshold`` (throughput,
    #: availability).
    objective: str
    threshold: float
    #: Fraction of samples allowed to be bad before the budget is spent.
    budget: float = 0.05
    windows: Tuple[BurnWindow, ...] = DEFAULT_WINDOWS
    #: Optional subject binding: the protected state a violated objective
    #: implicates, forwarded into the alert (and so into the diagnosis).
    state: Optional[str] = None
    description: str = ""

    def __post_init__(self) -> None:
        if self.objective not in ("le", "ge"):
            raise ConfigError("objective must be 'le' or 'ge'")
        if not 0 < self.budget < 1:
            raise ConfigError("budget must lie in (0, 1)")
        if not self.windows:
            raise ConfigError("an SLO needs at least one burn window")

    def good(self, value: float) -> bool:
        if self.objective == "le":
            return value <= self.threshold
        return value >= self.threshold


@dataclass(frozen=True)
class SLOAlert:
    """One burn-rate alert, pinned to the simulated clock."""

    slo: str
    series: str
    at: float
    severity: str
    burn_long: float
    burn_short: float
    long_s: float
    short_s: float
    threshold: float
    state: Optional[str] = None

    def to_event(self):
        """The control-plane event form (kind ``slo-burning``)."""
        from repro.control.events import ControlEvent

        return ControlEvent(
            kind="slo-burning",
            at=self.at,
            state=self.state,
            attrs=(
                ("slo", self.slo),
                ("series", self.series),
                ("severity", self.severity),
                ("burn_long", round(self.burn_long, 6)),
                ("burn_short", round(self.burn_short, 6)),
                ("long_s", self.long_s),
                ("short_s", self.short_s),
            ),
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "slo": self.slo,
            "series": self.series,
            "at": round(self.at, 6),
            "severity": self.severity,
            "burn_long": round(self.burn_long, 6),
            "burn_short": round(self.burn_short, 6),
            "long_s": self.long_s,
            "short_s": self.short_s,
            "threshold": self.threshold,
            "state": self.state,
        }


@dataclass
class SLOEngine:
    """Evaluates a set of objectives against one telemetry pipeline."""

    pipeline: TelemetryPipeline
    objectives: List[SLO] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.alerts: List[SLOAlert] = []
        self._firing: Dict[Tuple[str, str], BurnWindow] = {}

    def add(self, slo: SLO) -> SLO:
        if any(existing.name == slo.name for existing in self.objectives):
            raise ConfigError(f"duplicate SLO name {slo.name!r}")
        self.objectives.append(slo)
        return slo

    # ----------------------------------------------------------- burn math

    def bad_fraction(self, slo: SLO, window_s: float, now: float) -> Optional[float]:
        """Fraction of window samples violating the objective; None if empty."""
        if not self.pipeline.has_series(slo.series):
            return None
        values = self.pipeline.series(slo.series).values_in(now - window_s, now)
        if not values:
            return None
        bad = sum(1 for v in values if not slo.good(v))
        return bad / len(values)

    def burn_rate(self, slo: SLO, window_s: float, now: float) -> float:
        """Budget-burn multiple over the trailing window (0 when empty)."""
        fraction = self.bad_fraction(slo, window_s, now)
        if fraction is None:
            return 0.0
        return fraction / slo.budget

    # ----------------------------------------------------------- evaluation

    def evaluate(self, now: float) -> List[SLOAlert]:
        """Newly fired alerts at ``now`` (latched alerts stay silent)."""
        fired: List[SLOAlert] = []
        for slo in self.objectives:
            for window in slo.windows:
                key = (slo.name, window.severity)
                burn_long = self.burn_rate(slo, window.long_s, now)
                if key in self._firing:
                    if burn_long < 1.0:
                        del self._firing[key]  # healed: re-arm
                    continue
                burn_short = self.burn_rate(slo, window.short_s, now)
                if burn_long >= window.burn_rate and burn_short >= window.burn_rate:
                    alert = SLOAlert(
                        slo=slo.name,
                        series=slo.series,
                        at=now,
                        severity=window.severity,
                        burn_long=burn_long,
                        burn_short=burn_short,
                        long_s=window.long_s,
                        short_s=window.short_s,
                        threshold=slo.threshold,
                        state=slo.state,
                    )
                    self._firing[key] = window
                    self.alerts.append(alert)
                    fired.append(alert)
                    break  # one alert per objective per pass: page > warn
        return fired

    def firing(self) -> List[Tuple[str, str]]:
        """Currently latched (objective, severity) pairs, sorted."""
        return sorted(self._firing)

    # -------------------------------------------------------------- status

    def status(self, now: float) -> List[Dict[str, object]]:
        """One deterministic status row per objective (dashboard table)."""
        rows: List[Dict[str, object]] = []
        for slo in sorted(self.objectives, key=lambda s: s.name):
            window = slo.windows[0]
            last = None
            if self.pipeline.has_series(slo.series):
                point = self.pipeline.series(slo.series).last()
                if point is not None:
                    last = point[1]
            burn_long = self.burn_rate(slo, window.long_s, now)
            burn_short = self.burn_rate(slo, window.short_s, now)
            is_firing = any(name == slo.name for name, _ in self._firing)
            rows.append(
                {
                    "slo": slo.name,
                    "series": slo.series,
                    "objective": f"{'<=' if slo.objective == 'le' else '>='} "
                    f"{slo.threshold:g}",
                    "budget": slo.budget,
                    "last": last,
                    "burn_long": round(burn_long, 6),
                    "burn_short": round(burn_short, 6),
                    "state": "firing" if is_firing else "ok",
                }
            )
        return rows
