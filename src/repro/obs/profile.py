"""Post-hoc recovery profiles: blame fractions, bytes, and model error.

Consumes the span forests recorded by :class:`~repro.obs.tracer.Tracer`
and distills each recovery into a :class:`RecoveryProfile`:

- the **critical path** through the recovery's span DAG (a gap-free tiling
  of the makespan — see :mod:`repro.obs.critical_path`);
- **blame attribution**: seconds and fractions of the makespan per
  category (detection / transfer / merge / replay / control / queueing),
  with the fractions summing to 1.0 by construction;
- **bytes on the critical path**: how much of the moved state actually
  gated completion (bytes moved off the path were free);
- optionally a :class:`~repro.recovery.selection.SelectionExplanation`
  comparing the heuristic's predicted cost per mechanism against the
  measured makespan, so the selection model's error is itself observable.

Everything serializes deterministically (sorted keys, pinned separators):
two same-seed runs produce byte-identical profile reports, which is what
lets ``BENCH_sr3.json`` act as a perf-regression baseline.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

from repro.obs.critical_path import (
    BLAME_CATEGORIES,
    CriticalSegment,
    blame_breakdown,
    children_index,
    critical_path,
    recovery_roots,
)
from repro.obs.tracer import Span, Tracer, collected_tracers

__all__ = [
    "RecoveryProfile",
    "ProfileReport",
    "profile_recovery",
    "profile_tracers",
    "build_report",
    "write_profile",
]

TracerLike = Union[Tracer, Sequence[Tracer]]


def _as_tracers(tracers: Optional[TracerLike]) -> List[Tracer]:
    if tracers is None:
        return collected_tracers()
    if isinstance(tracers, Tracer):
        return [tracers]
    return list(tracers)


@dataclass
class RecoveryProfile:
    """Where one recovery's time went, distilled from its span subtree."""

    trace: str  # owning tracer's name
    mechanism: str  # "star", "line", "tree", "star+speculation", ...
    state: str
    root_span_id: int
    started_at: float
    finished_at: float
    makespan: float
    blame_seconds: Dict[str, float]
    blame_fractions: Dict[str, float]
    bytes_on_critical_path: float
    state_bytes: float
    span_count: int
    chain_len: int = 1  # version-chain links the recovery fetched
    delta_bytes: float = 0.0  # delta payload replayed after the base merge
    segments: List[CriticalSegment] = field(default_factory=list)
    error: Optional[str] = None  # set when the recovery failed
    explanation: Optional[object] = None  # SelectionExplanation, if attached

    @property
    def dominant_blame(self) -> str:
        """The category charged with the largest share of the makespan."""
        return max(
            BLAME_CATEGORIES, key=lambda b: (self.blame_seconds.get(b, 0.0), b)
        )

    def to_dict(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "trace": self.trace,
            "mechanism": self.mechanism,
            "state": self.state,
            "root_span_id": self.root_span_id,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "makespan_s": self.makespan,
            "blame_seconds": {k: self.blame_seconds[k] for k in sorted(self.blame_seconds)},
            "blame_fractions": {
                k: self.blame_fractions[k] for k in sorted(self.blame_fractions)
            },
            "dominant_blame": self.dominant_blame,
            "bytes_on_critical_path": self.bytes_on_critical_path,
            "state_bytes": self.state_bytes,
            "span_count": self.span_count,
            "chain_len": self.chain_len,
            "delta_bytes": self.delta_bytes,
            "critical_path": [segment.to_dict() for segment in self.segments],
        }
        if self.error is not None:
            payload["error"] = self.error
        if self.explanation is not None:
            payload["selection"] = self.explanation.to_dict()
        return payload


def _mechanism_of(root: Span) -> str:
    name = root.name
    if name.startswith("recovery/"):
        return name[len("recovery/"):]
    return name


def profile_recovery(
    tracer: Tracer,
    root: Span,
    children: Optional[Dict[int, List[Span]]] = None,
) -> RecoveryProfile:
    """Profile one recovery root span into a :class:`RecoveryProfile`.

    ``children`` is an optional precomputed
    :func:`~repro.obs.critical_path.children_index` for the tracer —
    callers profiling many roots from one trace share it so the per-root
    cost stays proportional to the subtree, not the whole trace.
    """
    if children is None:
        children = children_index(tracer)
    segments = critical_path(tracer, root, children)
    seconds = blame_breakdown(segments)
    makespan = root.effective_end - root.start
    if makespan > 0:
        fractions = {k: v / makespan for k, v in seconds.items()}
    else:
        fractions = {k: 0.0 for k in seconds}
    descendant_count = _count_subtree(root, children)
    state_bytes = float(root.attrs.get("state_bytes", root.attrs.get("bytes", 0.0)))
    return RecoveryProfile(
        trace=tracer.name,
        mechanism=_mechanism_of(root),
        state=str(root.attrs.get("state", "")),
        root_span_id=root.span_id,
        started_at=root.start,
        finished_at=root.effective_end,
        makespan=makespan,
        blame_seconds=seconds,
        blame_fractions=fractions,
        bytes_on_critical_path=sum(
            s.bytes_attributed for s in segments if s.blame == "transfer"
        ),
        state_bytes=state_bytes,
        span_count=descendant_count,
        chain_len=int(root.attrs.get("chain_len", 1)),
        delta_bytes=float(root.attrs.get("delta_bytes", 0.0)),
        segments=segments,
        error=root.attrs.get("error"),
    )


def _count_subtree(root: Span, children: Dict[int, List[Span]]) -> int:
    count = 0
    stack = [root]
    while stack:
        span = stack.pop()
        count += 1
        stack.extend(children.get(span.span_id, ()))
    return count


def profile_tracers(
    tracers: Optional[TracerLike] = None, include_saves: bool = False
) -> List[RecoveryProfile]:
    """One profile per recovery root across the given tracers.

    Defaults to every tracer in the process-wide collector (the bench
    CLI's ``--trace``/``--profile`` path). Save rounds are excluded unless
    ``include_saves`` — their spans share the category machinery but their
    "blame" answers a different question.
    """
    profiles: List[RecoveryProfile] = []
    for tracer in _as_tracers(tracers):
        children = children_index(tracer)
        for root in recovery_roots(tracer, include_saves=include_saves):
            profiles.append(profile_recovery(tracer, root, children))
    return profiles


def _attach_explanations(profiles: List[RecoveryProfile], cost_model=None) -> None:
    """Feed measured makespans back into the selection model's predictions.

    Imported lazily: ``repro.recovery`` imports the observability layer at
    module load, so the reverse import must happen at call time.
    """
    from repro.recovery.selection import SelectionInputs, explain_selection

    for profile in profiles:
        if profile.state_bytes <= 0 or profile.mechanism == "save":
            continue
        base = profile.mechanism.split("+", 1)[0]
        if base not in ("star", "line", "tree"):
            continue
        explanation = explain_selection(
            SelectionInputs(
                state_bytes=profile.state_bytes,
                chain_links=profile.chain_len,
                delta_bytes=min(profile.delta_bytes, profile.state_bytes),
            ),
            cost_model=cost_model,
        )
        explanation.observe(base, profile.makespan)
        profile.explanation = explanation


@dataclass
class ProfileReport:
    """Every recovery profile of a run plus per-mechanism aggregates."""

    profiles: List[RecoveryProfile] = field(default_factory=list)

    def by_mechanism(self) -> Dict[str, List[RecoveryProfile]]:
        grouped: Dict[str, List[RecoveryProfile]] = {}
        for profile in self.profiles:
            grouped.setdefault(profile.mechanism, []).append(profile)
        return grouped

    def aggregates(self) -> Dict[str, Dict[str, object]]:
        """Per-mechanism mean makespan and blame-fraction means."""
        summary: Dict[str, Dict[str, object]] = {}
        for mechanism, group in sorted(self.by_mechanism().items()):
            count = len(group)
            mean_blame = {
                blame: sum(p.blame_fractions.get(blame, 0.0) for p in group) / count
                for blame in BLAME_CATEGORIES
            }
            summary[mechanism] = {
                "recoveries": count,
                "mean_makespan_s": sum(p.makespan for p in group) / count,
                "max_makespan_s": max(p.makespan for p in group),
                "mean_blame_fractions": mean_blame,
                "bytes_on_critical_path": sum(
                    p.bytes_on_critical_path for p in group
                ),
            }
        return summary

    def to_dict(self) -> Dict[str, object]:
        return {
            "format": "sr3-profile-1",
            "recoveries": len(self.profiles),
            "aggregates": self.aggregates(),
            "profiles": [profile.to_dict() for profile in self.profiles],
        }

    def to_json(self) -> str:
        """Deterministic JSON: sorted keys, pinned separators."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":")) + "\n"

    def format_table(self) -> str:
        """A terminal-friendly blame table, one row per recovery."""
        header = (
            f"{'mechanism':<18} {'state':<14} {'makespan':>9}  "
            + "  ".join(f"{blame:>9}" for blame in BLAME_CATEGORIES)
        )
        lines = [header, "-" * len(header)]
        for profile in self.profiles:
            fractions = "  ".join(
                f"{profile.blame_fractions.get(blame, 0.0):>8.1%}"
                for blame in BLAME_CATEGORIES
            )
            lines.append(
                f"{profile.mechanism:<18} {profile.state:<14} "
                f"{profile.makespan:>8.3f}s  {fractions}"
            )
        return "\n".join(lines)


def build_report(
    tracers: Optional[TracerLike] = None,
    include_saves: bool = False,
    explain: bool = True,
    cost_model=None,
) -> ProfileReport:
    """Profile every recovery in the tracers into one report.

    ``explain`` attaches a :class:`SelectionExplanation` (predicted vs
    observed cost) to each star/line/tree profile whose root span carries
    a ``state_bytes`` attribute.
    """
    profiles = profile_tracers(tracers, include_saves=include_saves)
    if explain:
        _attach_explanations(profiles, cost_model=cost_model)
    return ProfileReport(profiles=profiles)


def write_profile(
    path: str,
    tracers: Optional[TracerLike] = None,
    include_saves: bool = False,
    explain: bool = True,
) -> str:
    """Write the profile report for ``tracers`` to ``path``; returns it."""
    report = build_report(tracers, include_saves=include_saves, explain=explain)
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(report.to_json())
    return path
