"""A self-contained HTML telemetry dashboard.

One call turns a :class:`~repro.obs.timeseries.TelemetryPipeline` (plus,
optionally, its SLO engine, anomaly detector, and controller) into a
single HTML file with zero external references — no scripts, no
stylesheets, no fonts fetched from anywhere. Every series renders as an
inline SVG sparkline; SLO objectives get a status table with their
current burn rates; alerts and anomalies merge into one timeline ordered
on the simulated clock. The output is deterministic for a deterministic
run: series are sorted by name and every float goes through the same
``%g`` formatting.

The ``bench dashboard`` subcommand and :func:`write_dashboard` are the
two front doors; both funnel into :func:`render_dashboard`.
"""

from __future__ import annotations

from html import escape
from typing import List, Optional, Sequence, Tuple

__all__ = ["render_dashboard", "write_dashboard"]

_SPARK_W = 240.0
_SPARK_H = 44.0
_PAD = 3.0

_CSS = """
body { font-family: -apple-system, 'Segoe UI', Roboto, sans-serif;
       margin: 1.5rem; color: #1a1a2e; background: #fafafa; }
h1 { font-size: 1.3rem; } h2 { font-size: 1.05rem; margin-top: 1.6rem; }
table { border-collapse: collapse; font-size: 0.82rem; }
th, td { padding: 0.25rem 0.6rem; border-bottom: 1px solid #ddd;
         text-align: left; font-variant-numeric: tabular-nums; }
th { background: #eef; }
.grid { display: flex; flex-wrap: wrap; gap: 0.8rem; }
.card { background: #fff; border: 1px solid #ddd; border-radius: 6px;
        padding: 0.5rem 0.7rem; }
.card .name { font-size: 0.78rem; font-weight: 600; }
.card .meta { font-size: 0.7rem; color: #667; }
.sev-critical { color: #b00020; font-weight: 600; }
.sev-warning { color: #b36b00; font-weight: 600; }
.ok { color: #0a7a3d; } .firing { color: #b00020; font-weight: 600; }
svg polyline { fill: none; stroke: #3356c4; stroke-width: 1.3; }
footer { margin-top: 2rem; font-size: 0.7rem; color: #889; }
"""


def _fmt(value: Optional[float]) -> str:
    if value is None:
        return "–"
    return "%g" % round(float(value), 6)


def _sparkline(points: Sequence[Tuple[float, float]]) -> str:
    """An inline SVG polyline over normalized (t, v) points."""
    if not points:
        return "<svg width='240' height='44'></svg>"
    t0, t1 = points[0][0], points[-1][0]
    values = [v for _, v in points]
    lo, hi = min(values), max(values)
    t_span = (t1 - t0) or 1.0
    v_span = (hi - lo) or 1.0
    coords = []
    for t, v in points:
        x = _PAD + (t - t0) / t_span * (_SPARK_W - 2 * _PAD)
        y = _SPARK_H - _PAD - (v - lo) / v_span * (_SPARK_H - 2 * _PAD)
        coords.append("%g,%g" % (round(x, 2), round(y, 2)))
    return (
        "<svg width='%d' height='%d' viewBox='0 0 %d %d'>"
        "<polyline points='%s'/></svg>"
        % (_SPARK_W, _SPARK_H, _SPARK_W, _SPARK_H, " ".join(coords))
    )


def _series_cards(pipeline) -> List[str]:
    cards = []
    for name in sorted(pipeline.names()):
        buf = pipeline.series(name)
        points = buf.points()
        last = points[-1][1] if points else None
        values = [v for _, v in points]
        cards.append(
            "<div class='card'><div class='name'>%s</div>%s"
            "<div class='meta'>%s · %d pts · last %s · min %s · max %s</div></div>"
            % (
                escape(name),
                _sparkline(points),
                escape(buf.kind),
                len(points),
                _fmt(last),
                _fmt(min(values) if values else None),
                _fmt(max(values) if values else None),
            )
        )
    return cards


def _slo_table(slo_engine, now: float) -> str:
    rows = []
    for row in slo_engine.status(now):
        state_cls = "firing" if row["state"] == "firing" else "ok"
        rows.append(
            "<tr><td>%s</td><td>%s</td><td>%s</td><td>%s</td><td>%s</td>"
            "<td>%s</td><td class='%s'>%s</td></tr>"
            % (
                escape(str(row["slo"])),
                escape(str(row["series"])),
                escape(str(row["objective"])),
                _fmt(row.get("last")),
                _fmt(row.get("burn_long")),
                _fmt(row.get("burn_short")),
                state_cls,
                escape(str(row["state"])),
            )
        )
    return (
        "<table><tr><th>SLO</th><th>series</th><th>objective</th><th>last</th>"
        "<th>burn (long)</th><th>burn (short)</th><th>state</th></tr>%s</table>"
        % "".join(rows)
    )


def _timeline_rows(slo_engine, anomalies) -> List[Tuple[float, str, str, str]]:
    """Merged (time, source, severity, description) rows, clock-ordered."""
    rows: List[Tuple[float, str, str, str]] = []
    if slo_engine is not None:
        for alert in slo_engine.alerts:
            rows.append(
                (
                    alert.at,
                    "slo",
                    alert.severity,
                    "%s burning on %s (burn %s over %ss / %s over %ss)"
                    % (
                        alert.slo,
                        alert.series,
                        _fmt(alert.burn_long),
                        _fmt(alert.long_s),
                        _fmt(alert.burn_short),
                        _fmt(alert.short_s),
                    ),
                )
            )
    if anomalies is not None:
        for anomaly in anomalies.anomalies:
            rows.append(
                (
                    anomaly.at,
                    "anomaly",
                    "warning",
                    "%s on %s (value %s, score %s, baseline %s)"
                    % (
                        anomaly.kind,
                        anomaly.series,
                        _fmt(anomaly.value),
                        _fmt(anomaly.score),
                        _fmt(anomaly.baseline),
                    ),
                )
            )
    rows.sort(key=lambda r: (r[0], r[1], r[3]))
    return rows


def _remediation_table(controller) -> str:
    ordered = sorted(
        controller.records,
        key=lambda r: (r.diagnosis.detected_at, r.diagnosis.condition, r.diagnosis.subject),
    )
    rows = []
    for record in ordered:
        rows.append(
            "<tr><td>%s</td><td>%s</td><td>%s</td><td>%s</td>"
            "<td class='%s'>%s</td><td>%s</td></tr>"
            % (
                _fmt(record.diagnosis.detected_at),
                escape(record.diagnosis.condition),
                escape(record.diagnosis.subject or "—"),
                escape(record.action),
                "ok" if record.verified else "firing",
                "verified" if record.verified else "open",
                _fmt(record.mttr_s),
            )
        )
    return (
        "<table><tr><th>detected</th><th>condition</th><th>subject</th>"
        "<th>action</th><th>status</th><th>MTTR (s)</th></tr>%s</table>"
        % "".join(rows)
    )


def render_dashboard(
    pipeline,
    slo_engine=None,
    anomalies=None,
    controller=None,
    title: str = "SR3 telemetry",
) -> str:
    """The complete dashboard as one self-contained HTML string."""
    now = pipeline.sim.now
    parts = [
        "<!DOCTYPE html><html><head><meta charset='utf-8'>",
        "<title>%s</title><style>%s</style></head><body>" % (escape(title), _CSS),
        "<h1>%s</h1>" % escape(title),
        "<p class='meta'>sim clock %s s · %d series</p>"
        % (_fmt(now), len(pipeline.names())),
    ]
    if slo_engine is not None and slo_engine.objectives:
        parts.append("<h2>SLO status</h2>")
        parts.append(_slo_table(slo_engine, now))
    timeline = _timeline_rows(slo_engine, anomalies)
    if timeline:
        parts.append("<h2>Alert timeline</h2><table>")
        parts.append("<tr><th>t (s)</th><th>source</th><th>severity</th><th>what</th></tr>")
        for at, source, severity, text in timeline:
            parts.append(
                "<tr><td>%s</td><td>%s</td><td class='sev-%s'>%s</td><td>%s</td></tr>"
                % (_fmt(at), source, escape(severity), escape(severity), escape(text))
            )
        parts.append("</table>")
    if controller is not None and controller.records:
        parts.append("<h2>Remediations</h2>")
        parts.append(_remediation_table(controller))
    parts.append("<h2>Series</h2><div class='grid'>")
    parts.extend(_series_cards(pipeline))
    parts.append("</div>")
    parts.append("<footer>sr3-dashboard-1 · rendered from the simulated clock</footer>")
    parts.append("</body></html>")
    return "".join(parts)


def write_dashboard(
    path: str,
    pipeline,
    slo_engine=None,
    anomalies=None,
    controller=None,
    title: str = "SR3 telemetry",
) -> str:
    """Render and write the dashboard; returns ``path``."""
    html = render_dashboard(
        pipeline,
        slo_engine=slo_engine,
        anomalies=anomalies,
        controller=controller,
        title=title,
    )
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(html)
    return path
