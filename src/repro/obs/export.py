"""Trace export: plain dicts and Chrome ``trace_event`` JSON.

Two formats per tracer:

- :func:`trace_dict` — the full span list as a nested-friendly flat dict
  (ids + parent links), the stable format tests and tooling consume;
- :func:`chrome_trace` — the Trace Event Format understood by
  ``chrome://tracing`` and Perfetto: spans become complete ``"X"`` events,
  instants become ``"i"``, and each root span's subtree gets its own
  ``tid`` so concurrent recoveries render as parallel tracks.

Serialization is pinned (sorted keys, fixed separators, no wall-clock
fields) so identical seeds produce byte-identical artifacts — the property
the determinism tests assert.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence, Union

from repro.obs.tracer import Span, Tracer, collected_tracers

__all__ = ["trace_dict", "chrome_trace", "dumps_trace", "write_trace"]

TracerLike = Union[Tracer, Sequence[Tracer]]


def _as_tracers(tracers: Optional[TracerLike]) -> List[Tracer]:
    if tracers is None:
        return collected_tracers()
    if isinstance(tracers, Tracer):
        return [tracers]
    return list(tracers)


def _span_row(span: Span) -> Dict[str, object]:
    return {
        "id": span.span_id,
        "parent": span.parent_id,
        "name": span.name,
        "category": span.category,
        "kind": span.kind,
        "start": span.start,
        "end": span.effective_end,
        "attrs": dict(sorted(span.attrs.items())),
    }


def trace_dict(tracers: Optional[TracerLike] = None) -> Dict[str, object]:
    """The plain-dict dump: one entry per tracer, spans in creation order."""
    return {
        "format": "sr3-trace-1",
        "traces": [
            {
                "name": tracer.name,
                "spans": [_span_row(span) for span in tracer.spans],
            }
            for tracer in _as_tracers(tracers)
        ],
    }


def _root_track(span: Span, by_id: Dict[int, Span]) -> int:
    """The span's root ancestor id — used as the Chrome thread id so each
    top-level operation (a recovery, a save round) is its own track."""
    current = span
    seen = set()
    while current.parent_id is not None and current.parent_id in by_id:
        if current.span_id in seen:  # defensive: never loop on a bad link
            break
        seen.add(current.span_id)
        current = by_id[current.parent_id]
    return current.span_id


def chrome_trace(tracers: Optional[TracerLike] = None) -> Dict[str, object]:
    """Chrome ``trace_event`` JSON (load via chrome://tracing or Perfetto).

    Timestamps are virtual-clock microseconds; ``pid`` distinguishes
    simulations when several tracers are merged into one artifact.
    """
    events: List[Dict[str, object]] = []
    for pid, tracer in enumerate(_as_tracers(tracers), start=1):
        by_id = {span.span_id: span for span in tracer.spans}
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": tracer.name},
            }
        )
        for span in tracer.spans:
            end = span.effective_end
            args = dict(sorted(span.attrs.items()))
            args["span_id"] = span.span_id
            if span.parent_id is not None:
                args["parent_id"] = span.parent_id
            base = {
                "name": span.name,
                "cat": span.category or "general",
                "pid": pid,
                "tid": _root_track(span, by_id),
                "ts": span.start * 1e6,
                "args": args,
            }
            if span.kind == "instant":
                base["ph"] = "i"
                base["s"] = "t"
            else:
                base["ph"] = "X"
                base["dur"] = (end - span.start) * 1e6
            events.append(base)
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def dumps_trace(tracers: Optional[TracerLike] = None, chrome: bool = True) -> str:
    """Serialize deterministically: sorted keys, fixed separators."""
    payload = chrome_trace(tracers) if chrome else trace_dict(tracers)
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def write_trace(
    path: str,
    tracers: Optional[TracerLike] = None,
    chrome: bool = True,
) -> str:
    """Write the trace artifact to ``path``; returns the path."""
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(dumps_trace(tracers, chrome=chrome))
        fh.write("\n")
    return path
