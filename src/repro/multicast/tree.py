"""Spanning trees over DHT nodes.

:class:`SpanningTree` is the structure both Scribe dissemination and SR3's
tree-structured recovery operate on: a rooted tree whose vertices are
overlay nodes. :func:`build_balanced_tree` constructs a balanced tree with
fan-out ``2**fanout_bits`` — the paper's tunable "tree fan-out" knob
(Fig. 9d) — optionally capped at a maximum branch depth (Fig. 9c).
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterator, List, Optional, Sequence

from repro.dht.node import DhtNode
from repro.errors import MulticastError


class SpanningTree:
    """A rooted tree of overlay nodes with parent/children indexes."""

    def __init__(self, root: DhtNode) -> None:
        self.root = root
        self._parent: Dict[DhtNode, Optional[DhtNode]] = {root: None}
        self._children: Dict[DhtNode, List[DhtNode]] = {root: []}
        # Depth memo maintained on insertion: tree recovery and Scribe
        # dissemination ask for depths once per node per shard, which was
        # an O(depth) parent walk each time (O(n * depth) per build).
        self._depth: Dict[DhtNode, int] = {root: 0}

    def __contains__(self, node: DhtNode) -> bool:
        return node in self._parent

    def __len__(self) -> int:
        return len(self._parent)

    def add(self, node: DhtNode, parent: DhtNode) -> None:
        """Attach ``node`` under ``parent``; both directions are indexed."""
        if parent not in self._parent:
            raise MulticastError(f"parent {parent.name} not in tree")
        if node in self._parent:
            raise MulticastError(f"node {node.name} already in tree")
        self._parent[node] = parent
        self._children[node] = []
        self._children[parent].append(node)
        self._depth[node] = self._depth[parent] + 1

    def parent(self, node: DhtNode) -> Optional[DhtNode]:
        if node not in self._parent:
            raise MulticastError(f"{node.name} not in tree")
        return self._parent[node]

    def children(self, node: DhtNode) -> List[DhtNode]:
        if node not in self._children:
            raise MulticastError(f"{node.name} not in tree")
        return list(self._children[node])

    def child_count(self, node: DhtNode) -> int:
        """Number of children, without copying the child list."""
        if node not in self._children:
            raise MulticastError(f"{node.name} not in tree")
        return len(self._children[node])

    def members(self) -> List[DhtNode]:
        return list(self._parent)

    def leaves(self) -> List[DhtNode]:
        return [n for n, kids in self._children.items() if not kids]

    def depth_of(self, node: DhtNode) -> int:
        """Edges between ``node`` and the root."""
        try:
            return self._depth[node]
        except KeyError:
            raise MulticastError(f"{node.name} not in tree") from None

    def height(self) -> int:
        """Maximum node depth in the tree (0 for a root-only tree)."""
        return max(self._depth.values())

    def max_fanout(self) -> int:
        return max((len(kids) for kids in self._children.values()), default=0)

    def bfs(self) -> Iterator[DhtNode]:
        """Iterate nodes root-first in breadth-first order."""
        queue = deque([self.root])
        while queue:
            node = queue.popleft()
            yield node
            queue.extend(self._children[node])

    def levels(self) -> List[List[DhtNode]]:
        """Nodes grouped by depth, root level first."""
        grouped: Dict[int, List[DhtNode]] = {}
        for node in self.bfs():
            grouped.setdefault(self._depth[node], []).append(node)
        return [grouped[d] for d in sorted(grouped)]

    def validate(self) -> None:
        """Check tree invariants: connected, acyclic, consistent indexes."""
        seen = set()
        for node in self.bfs():
            if node in seen:
                raise MulticastError("cycle detected in spanning tree")
            seen.add(node)
        if len(seen) != len(self._parent):
            raise MulticastError("tree is not connected")
        for node, parent in self._parent.items():
            if parent is not None and node not in self._children[parent]:
                raise MulticastError("parent/children indexes disagree")


def build_balanced_tree(
    root: DhtNode,
    members: Sequence[DhtNode],
    fanout_bits: int = 1,
    max_depth: Optional[int] = None,
) -> SpanningTree:
    """Arrange ``members`` under ``root`` in a balanced tree.

    Fan-out is ``2**fanout_bits`` per node, matching the paper's statement
    that "the tree fan-out n determines the fan-out of each node with 2^n"
    (Fig. 9d). When ``max_depth`` is given, the tree is capped at that many
    levels below the root; extra members widen the deepest permitted level
    instead of deepening the tree (the branch-depth knob of Fig. 9c).
    """
    if fanout_bits < 0:
        raise MulticastError("fanout_bits must be non-negative")
    return build_tree(root, members, 1 << fanout_bits, max_depth)


def fanout_for_depth(member_count: int, depth: int) -> int:
    """The smallest fan-out whose complete tree of ``depth`` levels holds
    ``member_count`` nodes below the root.

    Used to honour a configured branch depth (Fig. 9c): a deeper target
    yields a narrower tree, down to a chain at ``depth >= member_count``.
    """
    if depth < 1:
        raise MulticastError("depth must be at least 1")
    if member_count <= 0:
        return 1
    fanout = 1
    while True:
        # Capacity of a complete tree with `depth` levels below the root.
        if fanout == 1:
            capacity = depth
        else:
            capacity = (fanout ** (depth + 1) - fanout) // (fanout - 1)
        if capacity >= member_count:
            return fanout
        fanout += 1


def build_tree_with_depth(
    root: DhtNode,
    members: Sequence[DhtNode],
    depth: int,
) -> SpanningTree:
    """Arrange members in a tree aiming for the configured branch depth."""
    fanout = fanout_for_depth(len(members), depth)
    return build_tree(root, members, fanout, max_depth=depth)


def build_tree(
    root: DhtNode,
    members: Sequence[DhtNode],
    fanout: int,
    max_depth: Optional[int] = None,
) -> SpanningTree:
    """Arrange ``members`` under ``root`` with a raw per-node ``fanout``."""
    if fanout < 1:
        raise MulticastError("fanout must be at least 1")
    tree = SpanningTree(root)
    pending = [m for m in members if m is not root]
    if not pending:
        return tree
    # Breadth-first fill: attach to the shallowest node with spare slots.
    frontier = deque([root])
    overflow_hosts: deque = deque()
    for node in pending:
        attached = False
        while frontier:
            parent = frontier[0]
            if tree.child_count(parent) < fanout:
                depth = tree.depth_of(parent) + 1
                if max_depth is None or depth <= max_depth:
                    tree.add(node, parent)
                    if max_depth is None or depth < max_depth:
                        frontier.append(node)
                    else:
                        overflow_hosts.append(node)
                    attached = True
                    break
            frontier.popleft()
        if not attached:
            # Depth cap reached everywhere: widen the deepest level by
            # letting capped leaves exceed the nominal fan-out.
            if not overflow_hosts:
                raise MulticastError("cannot place node: empty tree frontier")
            host = overflow_hosts.popleft()
            tree.add(node, tree.parent(host) or tree.root)
            overflow_hosts.append(host)
    tree.validate()
    return tree
