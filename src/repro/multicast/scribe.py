"""Scribe: topic-based publish/subscribe multicast over the DHT.

A topic's id hashes onto the ring; the node responsible for that id is the
topic root. A subscriber routes a JOIN message toward the root, and every
node along the route becomes a forwarder — the union of routes forms the
multicast tree (Castro et al., "SCRIBE", JSAC 2002). Publishing sends the
payload to the root, which disseminates it down the tree.

SR3 uses Scribe trees as the transport substrate of the tree-structured
recovery mechanism (Sec. 3.6 / Sec. 4: "implemented the tree-structured
mechanism on top of Scribe's topic-based publish/subscribe trees").
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.dht.node import DhtNode
from repro.dht.overlay import Overlay
from repro.errors import MulticastError
from repro.multicast.tree import SpanningTree
from repro.util.ids import NodeId, node_id_from_name

JOIN_MESSAGE_BYTES = 96
LEAVE_MESSAGE_BYTES = 64


class ScribeTopic:
    """One multicast group: a root, subscribers, and the route-union tree."""

    def __init__(self, name: str, topic_id: NodeId, root: DhtNode) -> None:
        self.name = name
        self.topic_id = topic_id
        self.root = root
        self.tree = SpanningTree(root)
        self.subscribers: Set[DhtNode] = set()

    def __repr__(self) -> str:
        return f"ScribeTopic({self.name!r}, root={self.root.name}, members={len(self.tree)})"


class ScribeSystem:
    """Manages topics over one overlay."""

    def __init__(self, overlay: Overlay) -> None:
        self.overlay = overlay
        self.topics: Dict[str, ScribeTopic] = {}
        self.control_messages_sent = 0
        # Memoized routes, valid while the overlay topology is unchanged:
        # (start id, key) -> (destination, path). Bulk joins re-resolve
        # many overlapping routes; the memo collapses repeats to a dict
        # hit while replaying the same route trace/metrics.
        self._route_cache: Dict[Tuple[int, int], Tuple[DhtNode, List[DhtNode]]] = {}
        self._route_cache_version = -1

    def _route(self, start: DhtNode, key) -> Tuple[DhtNode, List[DhtNode]]:
        version = self.overlay.topology_version
        if version != self._route_cache_version:
            self._route_cache.clear()
            self._route_cache_version = version
        cache_key = (start.node_id.value, key.value)
        hit = self._route_cache.get(cache_key)
        if hit is not None:
            dest, path = hit
            # Replay the route's observable side effects (route counter,
            # hop histogram, trace event) so a memo hit is outwardly
            # indistinguishable from recomputing the route.
            self.overlay._trace_route(start, dest, path)
            return dest, list(path)
        dest, path = self.overlay.route(start, key)
        self._route_cache[cache_key] = (dest, list(path))
        return dest, path

    def create_topic(self, name: str) -> ScribeTopic:
        """Create (or return) a topic; root = node responsible for its id."""
        if name in self.topics:
            return self.topics[name]
        topic_id = node_id_from_name(f"scribe/{name}")
        root = self.overlay.responsible_node(topic_id)
        topic = ScribeTopic(name, topic_id, root)
        self.topics[name] = topic
        return topic

    def subscribe(self, name: str, node: DhtNode) -> None:
        """Join ``node`` to the topic tree via its DHT route to the root.

        Every intermediate node on the route becomes a forwarder. The JOIN
        stops at the first node already in the tree (Scribe's key property:
        join cost is O(log N) messages and trees stay shallow).
        """
        topic = self._get(name)
        if node in topic.tree:
            topic.subscribers.add(node)
            return
        _, path = self._route(node, topic.topic_id)
        if path[-1].node_id != topic.root.node_id:
            # Root moved (e.g. after failures): re-anchor the topic.
            raise MulticastError(
                f"topic {name!r}: route ended at {path[-1].name}, root is {topic.root.name}"
            )
        # Walk from the root end back toward the subscriber, attaching each
        # node under its successor on the path.
        new_forwarders = 0
        for hop_index in range(len(path) - 2, -1, -1):
            hop = path[hop_index]
            parent = path[hop_index + 1]
            self.overlay.network.send_control(hop.host, parent.host, JOIN_MESSAGE_BYTES)
            self.control_messages_sent += 1
            if hop not in topic.tree:
                topic.tree.add(hop, parent)
                new_forwarders += 1
        topic.subscribers.add(node)
        sim = self.overlay.sim
        sim.metrics.counter("multicast.joins").add(1)
        if sim.tracer.enabled:
            sim.tracer.instant(
                f"subscribe {node.name} to {name}",
                category="multicast.subscribe",
                topic=name,
                node=node.name,
                route_hops=len(path) - 1,
                new_forwarders=new_forwarders,
            )

    def subscribe_many(self, name: str, nodes: Iterable[DhtNode]) -> None:
        """Join many subscribers to one topic in order.

        Equivalent to calling :meth:`subscribe` per node; the bulk entry
        point lets route resolution amortize across the batch via the
        route memo (overlapping JOIN paths toward one root re-resolve to
        dict hits while the topology holds still).
        """
        for node in nodes:
            self.subscribe(name, node)

    def unsubscribe(self, name: str, node: DhtNode) -> None:
        """Remove a subscriber. Forwarder state is kept (lazy pruning)."""
        topic = self._get(name)
        topic.subscribers.discard(node)
        parent = topic.tree.parent(node) if node in topic.tree else None
        if parent is not None:
            self.overlay.network.send_control(node.host, parent.host, LEAVE_MESSAGE_BYTES)
            self.control_messages_sent += 1

    def publish(self, name: str, payload_bytes: float, publisher: Optional[DhtNode] = None) -> Dict[DhtNode, int]:
        """Disseminate a payload down the tree; returns node -> depth map.

        Bytes are charged per tree edge as control traffic (dissemination
        of small recovery-coordination messages); bulk shard data instead
        travels over :class:`~repro.sim.network.Network` flows managed by
        the recovery mechanisms.
        """
        topic = self._get(name)
        if payload_bytes < 0:
            raise MulticastError("payload size must be non-negative")
        if publisher is not None and publisher is not topic.root:
            self.overlay.network.send_control(publisher.host, topic.root.host, payload_bytes)
            self.control_messages_sent += 1
        depths: Dict[DhtNode, int] = {}
        edges = 0
        for node in topic.tree.bfs():
            depths[node] = topic.tree.depth_of(node)
            for child in topic.tree.children(node):
                self.overlay.network.send_control(node.host, child.host, payload_bytes)
                self.control_messages_sent += 1
                edges += 1
        sim = self.overlay.sim
        sim.metrics.counter("multicast.publishes").add(1)
        if sim.tracer.enabled:
            sim.tracer.instant(
                f"publish {name}",
                category="multicast.publish",
                topic=name,
                payload_bytes=payload_bytes,
                edges=edges,
            )
        return depths

    def repair(self, name: str) -> None:
        """Rebuild the tree after failures: re-anchor root, re-join members.

        Scribe repairs locally (children of a failed forwarder re-join);
        rebuilding from the subscriber set reproduces the same final tree
        shape at simulation scale.
        """
        topic = self._get(name)
        survivors = [n for n in topic.subscribers if n.alive]
        root = self.overlay.responsible_node(topic.topic_id)
        topic.root = root
        topic.tree = SpanningTree(root)
        topic.subscribers = set()
        for node in survivors:
            self.subscribe(name, node)

    def _get(self, name: str) -> ScribeTopic:
        try:
            return self.topics[name]
        except KeyError:
            raise MulticastError(f"unknown topic {name!r}") from None
