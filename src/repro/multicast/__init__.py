"""Scribe-style application-level multicast on top of the DHT.

SR3's tree-structured recovery builds its shard-aggregation spanning trees
on "a scalable application-level multicast infrastructure, called Scribe"
(Sec. 3.6). This package provides topic-based trees formed by the union of
DHT routes toward the topic root, plus balanced-tree construction with
configurable fan-out for the recovery mechanism.
"""

from repro.multicast.scribe import ScribeSystem, ScribeTopic
from repro.multicast.tree import (
    SpanningTree,
    build_balanced_tree,
    build_tree,
    build_tree_with_depth,
    fanout_for_depth,
)

__all__ = [
    "ScribeSystem",
    "ScribeTopic",
    "SpanningTree",
    "build_balanced_tree",
    "build_tree",
    "build_tree_with_depth",
    "fanout_for_depth",
]
