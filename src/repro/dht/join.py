"""The Pastry join protocol, message by message.

:meth:`~repro.dht.overlay.Overlay.build` wires nodes omnisciently for
experiment scale; this module implements the *protocol* a real deployment
runs (Rowstron & Druschel, Sec. 2.3 of the Pastry paper), so tests can
check that protocol-built state converges to the omniscient wiring:

1. the newcomer X asks a bootstrap node A to route a JOIN to X's own id;
2. the JOIN traverses A = C0, C1, ..., Ck = Z, where Z is the node
   numerically closest to X;
3. every node on the path returns routing state: Ci contributes its row i
   (nodes sharing an i-digit prefix with X travel through matching rows),
   A additionally contributes row 0, and Z contributes its leaf set;
4. X assembles its tables from those contributions and announces itself
   to every node it now knows, which insert X into their own state.

All message sizes are charged to the network's control-byte counters, so
join cost is measurable (O(log N) messages).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.dht.node import DhtNode
from repro.dht.overlay import Overlay
from repro.errors import OverlayError
from repro.sim.network import Host

JOIN_REQUEST_BYTES = 96
STATE_ROW_BYTES = 320  # one routing-table row (16 entries) serialized
LEAF_SET_BYTES = 480  # a 24-entry leaf set serialized
ANNOUNCE_BYTES = 64


@dataclass
class JoinReport:
    """What one protocol join cost and touched."""

    node: DhtNode
    path_length: int
    messages: int
    control_bytes: float


def protocol_join(
    overlay: Overlay,
    host: Optional[Host] = None,
    bootstrap: Optional[DhtNode] = None,
) -> JoinReport:
    """Join one node through the real message exchange.

    Returns a :class:`JoinReport`; the node is fully wired into the
    overlay afterwards (leaf set, routing table, and the neighbours'
    state updated), equivalent to :meth:`Overlay.add_node` but with the
    cost and path of the actual protocol.
    """
    if not overlay.alive_nodes():
        raise OverlayError("cannot join an empty overlay")
    bootstrap = bootstrap or overlay.alive_nodes()[0]
    if not bootstrap.alive:
        raise OverlayError(f"bootstrap {bootstrap.name} is dead")

    index = len(overlay.nodes)
    node_host = host or overlay.network.add_host(f"node-{index}")
    newcomer = DhtNode(
        overlay._fresh_id(),
        node_host,
        leaf_set_size=overlay.leaf_set_size,
        bits_per_digit=overlay.bits_per_digit,
    )

    messages = 0
    control_bytes = 0.0

    def send(src: DhtNode, dst: DhtNode, nbytes: float) -> None:
        nonlocal messages, control_bytes
        overlay.network.send_control(src.host, dst.host, nbytes)
        messages += 1
        control_bytes += nbytes

    # Step 1-2: route the JOIN from the bootstrap toward the newcomer's id.
    send(newcomer, bootstrap, JOIN_REQUEST_BYTES)
    destination, path = overlay.route(bootstrap, newcomer.node_id)

    # Step 3: each path node Ci returns the routing rows the newcomer can
    # use. Ci shares (at least) i digits of prefix with the JOIN key, so
    # its row i (and, for the bootstrap, row 0) transfers.
    for i, hop in enumerate(path):
        rows = {i}
        if i == 0:
            rows.add(0)
        for row in rows:
            for entry in hop.routing_table.row_entries(row):
                newcomer.routing_table.add(entry)
        # Every path node is itself a candidate entry.
        newcomer.routing_table.add(hop)
        send(hop, newcomer, STATE_ROW_BYTES * len(rows))
        if i > 0:
            send(path[i - 1], hop, JOIN_REQUEST_BYTES)  # the forwarded JOIN

    # Z (numerically closest) contributes its leaf set; the newcomer's own
    # leaf set derives from Z's plus Z itself.
    leaf_candidates = [destination] + [
        n for n in destination.leaf_set.members() if n.alive
    ]
    newcomer.leaf_set.rebuild(leaf_candidates)
    send(destination, newcomer, LEAF_SET_BYTES)

    # Register with the overlay before announcing (announcements must be
    # able to route back to the newcomer).
    overlay.nodes.append(newcomer)
    overlay._by_id[newcomer.node_id] = newcomer
    overlay._index_cache = None

    # Step 4: announce to everything the newcomer now knows; receivers
    # insert the newcomer into their own routing state.
    for known in newcomer.known_nodes():
        if not known.alive:
            continue
        send(newcomer, known, ANNOUNCE_BYTES)
        known.routing_table.add(newcomer)
        if known.leaf_set.contains(newcomer.node_id):
            continue
        # A neighbour adopts the newcomer if it belongs in its leaf set.
        refreshed = list(known.leaf_set.members()) + [newcomer]
        known.leaf_set.rebuild(refreshed)

    return JoinReport(
        node=newcomer,
        path_length=len(path) - 1,
        messages=messages,
        control_bytes=control_bytes,
    )
