"""The consistent ring overlay: membership, routing, and self-repair.

The overlay owns every :class:`DhtNode`, wires their leaf sets and routing
tables, routes keys in O(log N) hops with Pastry's rule (leaf set first,
then prefix match, then numeric fallback), and repairs neighbour state when
nodes crash. Construction is "omniscient" — leaf sets and routing tables
are filled from global knowledge rather than by replaying the join
protocol message-by-message — which preserves the structures' invariants
and asymptotics while letting experiments scale to the paper's 5,000-node
overlays.
"""

from __future__ import annotations

import bisect
import math
import random
from collections.abc import Sequence as _SequenceABC
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.dht.node import DhtNode
from repro.errors import OverlayError, RoutingError
from repro.sim.kernel import Simulator
from repro.sim.network import Host, Network
from repro.util.ids import NodeId, random_node_id

HostFactory = Callable[[str], Host]


class _FilteredPool(_SequenceABC):
    """A read-only view of ``base`` with the sorted ``skips`` positions
    removed.

    ``random.Random.sample`` touches a population only through ``len()``
    and indexing, so sampling this view draws byte-identically to sampling
    the materialized filtered list — without building an O(N) copy of the
    alive set per call.
    """

    __slots__ = ("_base", "_skips", "_len")

    def __init__(self, base: Sequence, skips: List[int]) -> None:
        self._base = base
        self._skips = skips
        self._len = len(base) - len(skips)

    def __len__(self) -> int:
        return self._len

    def __getitem__(self, index: int):
        if index < 0:
            index += self._len
        if not 0 <= index < self._len:
            raise IndexError(index)
        real = index
        for skip in self._skips:
            if skip <= real:
                real += 1
            else:
                break
        return self._base[real]


class Overlay:
    """A self-organizing Pastry-style ring of :class:`DhtNode` peers."""

    MAX_ROUTE_HOPS = 128

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        leaf_set_size: int = 24,
        bits_per_digit: int = 4,
        rng: Optional[random.Random] = None,
    ) -> None:
        self.sim = sim
        self.network = network
        self.leaf_set_size = leaf_set_size
        self.bits_per_digit = bits_per_digit
        self.rng = rng or random.Random(0)
        self.nodes: List[DhtNode] = []
        self._by_id: Dict[NodeId, DhtNode] = {}
        self._index_cache = None
        # Lazily rebuilt alive-node list (self.nodes order) plus a
        # position index (id value -> offset in that list). Invalidated
        # by membership changes and by any node's liveness hook.
        self._alive_cache: Optional[List[DhtNode]] = None
        self._alive_pos: Dict[int, int] = {}
        # Alive-node tally, maintained incrementally from adoptions and
        # the per-node liveness hooks — alive_count() must not pay the
        # O(N) cache rebuild on the crash-repair path.
        self._alive_count = 0
        # Reverse leaf-set index: id value -> the nodes currently holding
        # that id in their leaf set (maintained via LeafSet observers).
        # Turns per-crash repair from an O(N) scan into a dict lookup.
        self._holders: Dict[int, Dict[DhtNode, None]] = {}
        # Monotonic counter bumped on any membership, liveness, leaf-set,
        # or routing-table change. Route memos (e.g. Scribe's) key their
        # validity on it: unchanged topology -> cached routes are exact.
        self.topology_version = 0
        self.repairs_performed = 0
        # Cached registry handles: routing is on the Scribe/recovery path.
        self._routes_counter = sim.metrics.counter("overlay.routes")
        self._hops_histogram = sim.metrics.histogram("overlay.route_hops")
        self._repairs_counter = sim.metrics.counter("overlay.repairs")

    # ------------------------------------------------------------ membership

    def build(self, count: int, host_factory: Optional[HostFactory] = None) -> List[DhtNode]:
        """Create ``count`` nodes with random ids and wire the overlay."""
        if count <= 0:
            raise OverlayError("overlay must contain at least one node")
        factory = host_factory or (lambda name: self.network.add_host(name))
        for i in range(count):
            node = DhtNode(
                self._fresh_id(),
                factory(f"node-{i}"),
                leaf_set_size=self.leaf_set_size,
                bits_per_digit=self.bits_per_digit,
            )
            self._adopt(node)
        self._wire_leaf_sets()
        self._wire_routing_tables()
        return list(self.nodes)

    def add_node(self, host: Optional[Host] = None) -> DhtNode:
        """Join one node after the initial build (the replacing-node path)."""
        index = len(self.nodes)
        node_host = host or self.network.add_host(f"node-{index}")
        node = DhtNode(
            self._fresh_id(),
            node_host,
            leaf_set_size=self.leaf_set_size,
            bits_per_digit=self.bits_per_digit,
        )
        self._adopt(node)
        # Wire the newcomer fully, then refresh the ring neighbours it
        # landed between (its own leaf-set members must adopt it).
        node.leaf_set.rebuild(self._ring_pool(node))
        node.routing_table.refresh(self.alive_nodes())
        for neighbour in node.leaf_set.members():
            neighbour.leaf_set.rebuild(self._ring_pool(neighbour))
            neighbour.routing_table.add(node)
        self.sim.tracer.instant(
            f"node joined {node.name}", category="overlay.join", node=node.name
        )
        self.sim.metrics.counter("overlay.joins").add(1)
        return node

    def _adopt(self, node: DhtNode) -> None:
        """Register a node and hook it into the overlay's caches."""
        node.join_order = len(self.nodes)
        self.nodes.append(node)
        self._by_id[node.node_id] = node
        node._on_liveness_change = self._liveness_changed
        node.leaf_set.on_membership_change = (
            lambda added, removed, _node=node: self._leafset_changed(_node, added, removed)
        )
        node.routing_table.on_change = self._bump_topology
        self._index_cache = None
        if node.alive:
            self._alive_count += 1
        self._invalidate_alive()

    def _invalidate_alive(self) -> None:
        self._alive_cache = None
        self.topology_version += 1

    def _liveness_changed(self, alive: bool) -> None:
        # Fired by DhtNode.fail()/revive() only on an actual flip.
        self._alive_count += 1 if alive else -1
        self._invalidate_alive()

    def _bump_topology(self) -> None:
        self.topology_version += 1

    def _leafset_changed(self, node: DhtNode, added: Iterable[int], removed: Iterable[int]) -> None:
        self.topology_version += 1
        holders = self._holders
        for value in added:
            holders.setdefault(value, {})[node] = None
        for value in removed:
            bucket = holders.get(value)
            if bucket is not None:
                bucket.pop(node, None)

    def _fresh_id(self) -> NodeId:
        while True:
            node_id = random_node_id(self.rng)
            if node_id not in self._by_id:
                return node_id

    def _wire_leaf_sets(self) -> None:
        ordered = sorted(self.nodes, key=lambda n: n.node_id.value)
        n = len(ordered)
        half = min(self.leaf_set_size // 2, max(0, n - 1))
        if n - 1 >= 2 * half:
            # The ring order already determines both halves: the nearest
            # `half` nodes clockwise/counter-clockwise are the window
            # itself, nearest first, exactly what `rebuild` would sort
            # out per node. Seeding directly skips 2N sorts of the
            # window by 128-bit ring distance.
            for i, node in enumerate(ordered):
                cw = [ordered[(i + off) % n] for off in range(1, half + 1)]
                ccw = [ordered[(i - off) % n] for off in range(1, half + 1)]
                node.leaf_set.seed(cw, ccw)
        else:
            # Tiny ring: window offsets overlap modulo n; let rebuild
            # resolve duplicates the way it always has.
            for i, node in enumerate(ordered):
                window = [ordered[(i + off) % n] for off in range(-half, half + 1) if off]
                node.leaf_set.rebuild(window)

    def _wire_routing_tables(self) -> None:
        n = len(self.nodes)
        if n < 2:
            return
        cols = 1 << self.bits_per_digit
        max_depth = max(1, math.ceil(math.log(n, cols))) + 2
        buckets: Dict[tuple, List[DhtNode]] = {}
        digit_cache: Dict[NodeId, tuple] = {}
        for node in self.nodes:
            digits = node.node_id.digits(self.bits_per_digit)
            digit_cache[node.node_id] = digits
            for depth in range(1, max_depth + 1):
                buckets.setdefault(digits[:depth], []).append(node)
        # Regroup the buckets per parent prefix as column arrays so the
        # fill loop below indexes `children[prefix][col]` instead of
        # hashing a fresh `prefix + (col,)` tuple per (node, row, col) —
        # ~4.5M tuple constructions at 50k nodes.
        children: Dict[tuple, List[Optional[List[DhtNode]]]] = {}
        for key, pool in buckets.items():
            arr = children.get(key[:-1])
            if arr is None:
                arr = children[key[:-1]] = [None] * cols
            arr[key[-1]] = pool
        # random.choice is `seq[self._randbelow(len(seq))]` plus an
        # emptiness check; the pools here are guarded non-empty, so call
        # _randbelow directly — identical draw sequence, one call layer
        # less on the ~4.5M picks a 50k build makes.
        randbelow = self.rng._randbelow
        for node in self.nodes:
            digits = digit_cache[node.node_id]
            table = node.routing_table
            for row in range(max_depth):
                arr = children.get(digits[:row])
                if arr is None:
                    continue
                own = digits[row]
                slots = None
                for col in range(cols):
                    if col == own:
                        continue
                    pool = arr[col]
                    if pool:
                        # The bucket construction guarantees the pick
                        # shares exactly `row` digits with the owner and
                        # differs at digit `row` (= col), so the slot is
                        # written directly — same entry, same rng draw
                        # order as routing_table.add() would produce.
                        if slots is None:
                            slots = table.row_slots(row)
                        slots[col] = pool[randbelow(len(pool))]

    # --------------------------------------------------------------- queries

    def alive_nodes(self) -> List[DhtNode]:
        return list(self._alive_list())

    def alive_count(self) -> int:
        """Number of alive nodes, O(1) from the incremental tally."""
        return self._alive_count

    def _alive_list(self) -> List[DhtNode]:
        """The cached alive-node list (self.nodes order). Callers must
        not mutate it; it is shared until the next liveness change."""
        cache = self._alive_cache
        if cache is None:
            cache = self._alive_cache = [n for n in self.nodes if n.alive]
            self._alive_pos = {n.node_id.value: i for i, n in enumerate(cache)}
        return cache

    def node_for_id(self, node_id: NodeId) -> DhtNode:
        try:
            return self._by_id[node_id]
        except KeyError:
            raise OverlayError(f"unknown node id {node_id!r}") from None

    def responsible_node(self, key: NodeId) -> DhtNode:
        """Ground truth: the alive node numerically closest to ``key``.

        Served from a sorted index (rebuilt lazily after membership
        changes) so placement of hundreds of thousands of shard replicas
        on 5,000-node overlays stays O(log N) per lookup.
        """
        values, ordered = self._sorted_index()
        if not ordered:
            raise OverlayError("overlay has no alive nodes")
        position = bisect.bisect_left(values, key.value)
        candidates = []
        # Nearest alive nodes on either side of the insertion point; scan
        # outward past any dead entries.
        for start, direction in ((position - 1, -1), (position, +1)):
            i = start
            while 0 <= i < len(ordered):
                if ordered[i].alive:
                    candidates.append(ordered[i])
                    break
                i += direction
        # Wrap-around candidates for keys near the ring's ends.
        for i in (0, len(ordered) - 1):
            if ordered[i].alive:
                candidates.append(ordered[i])
        if not candidates:
            # Sparse aliveness: fall back to a full scan.
            candidates = self.alive_nodes()
            if not candidates:
                raise OverlayError("overlay has no alive nodes")
        return min(candidates, key=lambda n: (key.distance(n.node_id), n.node_id.value))

    def _sorted_index(self):
        if self._index_cache is None:
            ordered = sorted(self.nodes, key=lambda n: n.node_id.value)
            self._index_cache = ([n.node_id.value for n in ordered], ordered)
        return self._index_cache

    def leaf_set_of(self, node: DhtNode, refresh: bool = False) -> List[DhtNode]:
        """Alive leaf-set members of ``node`` (optionally re-wired first)."""
        if refresh:
            node.leaf_set.rebuild(self._ring_pool(node))
        return [n for n in node.leaf_set.members() if n.alive]

    def _repair_leaf_set(self, holder: DhtNode) -> None:
        """Re-select ``holder``'s leaf set after a neighbour failure.

        Equivalent to ``rebuild(self._ring_pool(holder))``: when the alive
        ring is large enough that the two half-windows cannot overlap, the
        outward walks over the sorted index already yield each side's
        nearest-first member list, so the halves are installed directly
        and ``rebuild``'s two distance re-sorts are skipped. Tiny rings
        keep the sort-based path, which handles overlapping windows.
        """
        half = holder.leaf_set.half
        if self.alive_count() - 1 < 2 * half:
            holder.leaf_set.rebuild(self._ring_pool(holder))
            return
        values, ordered = self._sorted_index()
        n = len(ordered)
        position = bisect.bisect_left(values, holder.node_id.value)
        own_value = holder.node_id.value
        clockwise: List[DhtNode] = []
        counter: List[DhtNode] = []
        for direction, side in ((1, clockwise), (-1, counter)):
            i = position
            for _ in range(n - 1):
                if len(side) >= half:
                    break
                i = (i + direction) % n
                candidate = ordered[i]
                if candidate.alive and candidate.node_id.value != own_value:
                    side.append(candidate)
        holder.leaf_set.seed(clockwise, counter)

    def _ring_pool(self, owner: DhtNode) -> List[DhtNode]:
        """A candidate pool equivalent to the full alive set for
        ``owner.leaf_set.rebuild``: the nearest ``half`` alive nodes on
        each side of the ring, found by walking outward from the owner's
        position in the sorted index instead of sorting all N nodes.
        ``rebuild`` on this pool selects exactly the members it would
        select from :meth:`alive_nodes`."""
        half = owner.leaf_set.half
        values, ordered = self._sorted_index()
        n = len(ordered)
        position = bisect.bisect_left(values, owner.node_id.value)
        pool: List[DhtNode] = []
        seen = {owner.node_id.value}
        for direction in (1, -1):
            found = 0
            i = position
            for _ in range(n - 1):
                if found >= half:
                    break
                i = (i + direction) % n
                candidate = ordered[i]
                if not candidate.alive:
                    continue
                value = candidate.node_id.value
                if value not in seen:
                    seen.add(value)
                    pool.append(candidate)
                found += 1
        return pool

    # ---------------------------------------------------------------- routing

    def route(self, start: DhtNode, key: NodeId) -> Tuple[DhtNode, List[DhtNode]]:
        """Route ``key`` from ``start``; returns (destination, full path).

        Implements Pastry's forwarding rule. The path includes the start
        node and the destination; ``len(path) - 1`` is the hop count.
        """
        if not start.alive:
            raise RoutingError(f"routing from dead node {start.name}")
        current = start
        path = [current]
        for _ in range(self.MAX_ROUTE_HOPS):
            nxt = self._next_hop(current, key)
            if nxt is None:
                self._trace_route(start, current, path)
                return current, path
            current = nxt
            path.append(current)
        raise RoutingError(f"routing loop for key {key!r} starting at {start.name}")

    def _trace_route(self, start: DhtNode, dest: DhtNode, path: List[DhtNode]) -> None:
        hops = len(path) - 1
        self._routes_counter.add(1)
        self._hops_histogram.observe(hops)
        tracer = self.sim.tracer
        if tracer.enabled:
            tracer.instant(
                f"route {start.name}->{dest.name}",
                category="overlay.route",
                start=start.name,
                dest=dest.name,
                hops=hops,
                path=[n.name for n in path],
            )

    def _next_hop(self, current: DhtNode, key: NodeId) -> Optional[DhtNode]:
        # Rule 1: key within leaf-set span -> deliver to the closest leaf.
        if current.leaf_set.covers(key):
            closest = current.leaf_set.closest(key)
            if closest is not None and key.distance(closest.node_id) < key.distance(current.node_id):
                return closest
            return None
        # Rule 2: prefix routing table entry sharing one more digit.
        candidate = current.routing_table.next_hop(key)
        if candidate is not None:
            return candidate
        # Rule 3 (rare): any known alive node strictly closer to the key
        # whose shared prefix is at least as long.
        own_prefix = current.node_id.shared_prefix_length(key, self.bits_per_digit)
        own_distance = key.distance(current.node_id)
        best = None
        best_distance = own_distance
        for node in current.known_nodes():
            if not node.alive:
                continue
            if node.node_id.shared_prefix_length(key, self.bits_per_digit) < own_prefix:
                continue
            d = key.distance(node.node_id)
            if d < best_distance:
                best, best_distance = node, d
        return best

    def hops(self, start: DhtNode, key: NodeId) -> int:
        """Convenience: hop count for routing ``key`` from ``start``."""
        _, path = self.route(start, key)
        return len(path) - 1

    # ----------------------------------------------------------------- repair

    def fail_node(self, node: DhtNode, repair: bool = True) -> None:
        """Crash a node; neighbours repair their leaf sets and tables.

        Repair exchanges are charged as control traffic: each repairing
        neighbour contacts the edge of its leaf set to fetch a replacement
        (Pastry's leaf-set repair protocol).
        """
        if not node.alive:
            return
        node.fail()
        self.network.fail_host(node.host)
        self.sim.tracer.instant(
            f"node failed {node.name}", category="overlay.failure", node=node.name
        )
        self.sim.metrics.counter("overlay.failures").add(1)
        if not repair:
            return
        for holder in self._leafset_holders(node.node_id):
            if not holder.alive:
                continue
            holder.leaf_set.remove(node.node_id)
            holder.routing_table.remove(node.node_id)
            self._repair_leaf_set(holder)
            # One request/response pair with a leaf-set edge node.
            edge = holder.leaf_set.last_member()
            if edge is not None:
                self.network.send_control(holder.host, edge.host, 64)
                self.network.send_control(edge.host, holder.host, 256)
            self.repairs_performed += 1
            self._repairs_counter.add(1)

    def _leafset_holders(self, node_id: NodeId) -> List[DhtNode]:
        """Nodes that (should) hold ``node_id`` in their leaf set.

        Served from the reverse index in join order — the same order the
        previous full scan over ``self.nodes`` produced.
        """
        bucket = self._holders.get(node_id.value)
        if not bucket:
            return []
        holders = [n for n in bucket if n.alive]
        holders.sort(key=lambda n: n.join_order)
        return holders

    def replacement_for(self, failed: DhtNode) -> DhtNode:
        """The node that takes over a failed node's key range.

        Pastry hands the failed node's keys to the numerically closest
        surviving node — the paper's "replacing node" (e.g. N6 replacing N5
        in Fig. 3).
        """
        if failed.alive:
            raise OverlayError(f"{failed.name} has not failed")
        return self.responsible_node(failed.node_id)

    def sample_nodes(self, count: int, exclude: Sequence[DhtNode] = ()) -> List[DhtNode]:
        """Uniformly sample distinct alive nodes, excluding the given ones.

        The population is a lazy view over the cached alive list with the
        excluded positions masked out; ``rng.sample`` sees the same length
        and elements as the old per-call filtered copy, so the draws are
        byte-identical while each call stays O(|exclude| + count).
        """
        alive = self._alive_list()
        skips: List[int] = []
        seen = set()
        for node in exclude:
            value = node.node_id.value
            if value in seen:
                continue
            seen.add(value)
            position = self._alive_pos.get(value)
            if position is not None and alive[position] is node:
                skips.append(position)
        if skips:
            skips.sort()
            pool: Sequence[DhtNode] = _FilteredPool(alive, skips)
        else:
            pool = alive
        if count > len(pool):
            raise OverlayError(f"cannot sample {count} nodes from pool of {len(pool)}")
        return self.rng.sample(pool, count)
