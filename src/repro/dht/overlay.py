"""The consistent ring overlay: membership, routing, and self-repair.

The overlay owns every :class:`DhtNode`, wires their leaf sets and routing
tables, routes keys in O(log N) hops with Pastry's rule (leaf set first,
then prefix match, then numeric fallback), and repairs neighbour state when
nodes crash. Construction is "omniscient" — leaf sets and routing tables
are filled from global knowledge rather than by replaying the join
protocol message-by-message — which preserves the structures' invariants
and asymptotics while letting experiments scale to the paper's 5,000-node
overlays.
"""

from __future__ import annotations

import bisect
import math
import random
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.dht.node import DhtNode
from repro.errors import OverlayError, RoutingError
from repro.sim.kernel import Simulator
from repro.sim.network import Host, Network
from repro.util.ids import NodeId, random_node_id

HostFactory = Callable[[str], Host]


class Overlay:
    """A self-organizing Pastry-style ring of :class:`DhtNode` peers."""

    MAX_ROUTE_HOPS = 128

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        leaf_set_size: int = 24,
        bits_per_digit: int = 4,
        rng: Optional[random.Random] = None,
    ) -> None:
        self.sim = sim
        self.network = network
        self.leaf_set_size = leaf_set_size
        self.bits_per_digit = bits_per_digit
        self.rng = rng or random.Random(0)
        self.nodes: List[DhtNode] = []
        self._by_id: Dict[NodeId, DhtNode] = {}
        self._index_cache = None
        self.repairs_performed = 0
        # Cached registry handles: routing is on the Scribe/recovery path.
        self._routes_counter = sim.metrics.counter("overlay.routes")
        self._hops_histogram = sim.metrics.histogram("overlay.route_hops")
        self._repairs_counter = sim.metrics.counter("overlay.repairs")

    # ------------------------------------------------------------ membership

    def build(self, count: int, host_factory: Optional[HostFactory] = None) -> List[DhtNode]:
        """Create ``count`` nodes with random ids and wire the overlay."""
        if count <= 0:
            raise OverlayError("overlay must contain at least one node")
        factory = host_factory or (lambda name: self.network.add_host(name))
        for i in range(count):
            node_id = self._fresh_id()
            node = DhtNode(
                node_id,
                factory(f"node-{i}"),
                leaf_set_size=self.leaf_set_size,
                bits_per_digit=self.bits_per_digit,
            )
            self.nodes.append(node)
            self._by_id[node_id] = node
        self._index_cache = None
        self._wire_leaf_sets()
        self._wire_routing_tables()
        return list(self.nodes)

    def add_node(self, host: Optional[Host] = None) -> DhtNode:
        """Join one node after the initial build (the replacing-node path)."""
        index = len(self.nodes)
        node_host = host or self.network.add_host(f"node-{index}")
        node = DhtNode(
            self._fresh_id(),
            node_host,
            leaf_set_size=self.leaf_set_size,
            bits_per_digit=self.bits_per_digit,
        )
        self.nodes.append(node)
        self._by_id[node.node_id] = node
        self._index_cache = None
        # Wire the newcomer fully, then refresh the ring neighbours it
        # landed between (its own leaf-set members must adopt it).
        node.leaf_set.rebuild(self._ring_pool(node))
        node.routing_table.refresh(self.alive_nodes())
        for neighbour in node.leaf_set.members():
            neighbour.leaf_set.rebuild(self._ring_pool(neighbour))
            neighbour.routing_table.add(node)
        self.sim.tracer.instant(
            f"node joined {node.name}", category="overlay.join", node=node.name
        )
        self.sim.metrics.counter("overlay.joins").add(1)
        return node

    def _fresh_id(self) -> NodeId:
        while True:
            node_id = random_node_id(self.rng)
            if node_id not in self._by_id:
                return node_id

    def _wire_leaf_sets(self) -> None:
        ordered = sorted(self.nodes, key=lambda n: n.node_id.value)
        n = len(ordered)
        half = min(self.leaf_set_size // 2, max(0, n - 1))
        for i, node in enumerate(ordered):
            window = [ordered[(i + off) % n] for off in range(-half, half + 1) if off]
            node.leaf_set.rebuild(window)

    def _wire_routing_tables(self) -> None:
        n = len(self.nodes)
        if n < 2:
            return
        cols = 1 << self.bits_per_digit
        max_depth = max(1, math.ceil(math.log(n, cols))) + 2
        buckets: Dict[tuple, List[DhtNode]] = {}
        digit_cache: Dict[NodeId, tuple] = {}
        for node in self.nodes:
            digits = node.node_id.digits(self.bits_per_digit)
            digit_cache[node.node_id] = digits
            for depth in range(1, max_depth + 1):
                buckets.setdefault(digits[:depth], []).append(node)
        for node in self.nodes:
            digits = digit_cache[node.node_id]
            for row in range(max_depth):
                prefix = digits[:row]
                for col in range(cols):
                    if col == digits[row]:
                        continue
                    pool = buckets.get(prefix + (col,))
                    if pool:
                        node.routing_table.add(self.rng.choice(pool))

    # --------------------------------------------------------------- queries

    def alive_nodes(self) -> List[DhtNode]:
        return [n for n in self.nodes if n.alive]

    def node_for_id(self, node_id: NodeId) -> DhtNode:
        try:
            return self._by_id[node_id]
        except KeyError:
            raise OverlayError(f"unknown node id {node_id!r}") from None

    def responsible_node(self, key: NodeId) -> DhtNode:
        """Ground truth: the alive node numerically closest to ``key``.

        Served from a sorted index (rebuilt lazily after membership
        changes) so placement of hundreds of thousands of shard replicas
        on 5,000-node overlays stays O(log N) per lookup.
        """
        values, ordered = self._sorted_index()
        if not ordered:
            raise OverlayError("overlay has no alive nodes")
        position = bisect.bisect_left(values, key.value)
        candidates = []
        # Nearest alive nodes on either side of the insertion point; scan
        # outward past any dead entries.
        for start, direction in ((position - 1, -1), (position, +1)):
            i = start
            while 0 <= i < len(ordered):
                if ordered[i].alive:
                    candidates.append(ordered[i])
                    break
                i += direction
        # Wrap-around candidates for keys near the ring's ends.
        for i in (0, len(ordered) - 1):
            if ordered[i].alive:
                candidates.append(ordered[i])
        if not candidates:
            # Sparse aliveness: fall back to a full scan.
            candidates = self.alive_nodes()
            if not candidates:
                raise OverlayError("overlay has no alive nodes")
        return min(candidates, key=lambda n: (key.distance(n.node_id), n.node_id.value))

    def _sorted_index(self):
        if self._index_cache is None:
            ordered = sorted(self.nodes, key=lambda n: n.node_id.value)
            self._index_cache = ([n.node_id.value for n in ordered], ordered)
        return self._index_cache

    def leaf_set_of(self, node: DhtNode, refresh: bool = False) -> List[DhtNode]:
        """Alive leaf-set members of ``node`` (optionally re-wired first)."""
        if refresh:
            node.leaf_set.rebuild(self._ring_pool(node))
        return [n for n in node.leaf_set.members() if n.alive]

    def _ring_pool(self, owner: DhtNode) -> List[DhtNode]:
        """A candidate pool equivalent to the full alive set for
        ``owner.leaf_set.rebuild``: the nearest ``half`` alive nodes on
        each side of the ring, found by walking outward from the owner's
        position in the sorted index instead of sorting all N nodes.
        ``rebuild`` on this pool selects exactly the members it would
        select from :meth:`alive_nodes`."""
        half = owner.leaf_set.half
        values, ordered = self._sorted_index()
        n = len(ordered)
        position = bisect.bisect_left(values, owner.node_id.value)
        pool: List[DhtNode] = []
        seen = {owner.node_id.value}
        for direction in (1, -1):
            found = 0
            i = position
            for _ in range(n - 1):
                if found >= half:
                    break
                i = (i + direction) % n
                candidate = ordered[i]
                if not candidate.alive:
                    continue
                value = candidate.node_id.value
                if value not in seen:
                    seen.add(value)
                    pool.append(candidate)
                found += 1
        return pool

    # ---------------------------------------------------------------- routing

    def route(self, start: DhtNode, key: NodeId) -> Tuple[DhtNode, List[DhtNode]]:
        """Route ``key`` from ``start``; returns (destination, full path).

        Implements Pastry's forwarding rule. The path includes the start
        node and the destination; ``len(path) - 1`` is the hop count.
        """
        if not start.alive:
            raise RoutingError(f"routing from dead node {start.name}")
        current = start
        path = [current]
        for _ in range(self.MAX_ROUTE_HOPS):
            nxt = self._next_hop(current, key)
            if nxt is None:
                self._trace_route(start, current, path)
                return current, path
            current = nxt
            path.append(current)
        raise RoutingError(f"routing loop for key {key!r} starting at {start.name}")

    def _trace_route(self, start: DhtNode, dest: DhtNode, path: List[DhtNode]) -> None:
        hops = len(path) - 1
        self._routes_counter.add(1)
        self._hops_histogram.observe(hops)
        tracer = self.sim.tracer
        if tracer.enabled:
            tracer.instant(
                f"route {start.name}->{dest.name}",
                category="overlay.route",
                start=start.name,
                dest=dest.name,
                hops=hops,
                path=[n.name for n in path],
            )

    def _next_hop(self, current: DhtNode, key: NodeId) -> Optional[DhtNode]:
        # Rule 1: key within leaf-set span -> deliver to the closest leaf.
        if current.leaf_set.covers(key):
            closest = current.leaf_set.closest(key)
            if closest is not None and key.distance(closest.node_id) < key.distance(current.node_id):
                return closest
            return None
        # Rule 2: prefix routing table entry sharing one more digit.
        candidate = current.routing_table.next_hop(key)
        if candidate is not None:
            return candidate
        # Rule 3 (rare): any known alive node strictly closer to the key
        # whose shared prefix is at least as long.
        own_prefix = current.node_id.shared_prefix_length(key, self.bits_per_digit)
        own_distance = key.distance(current.node_id)
        best = None
        best_distance = own_distance
        for node in current.known_nodes():
            if not node.alive:
                continue
            if node.node_id.shared_prefix_length(key, self.bits_per_digit) < own_prefix:
                continue
            d = key.distance(node.node_id)
            if d < best_distance:
                best, best_distance = node, d
        return best

    def hops(self, start: DhtNode, key: NodeId) -> int:
        """Convenience: hop count for routing ``key`` from ``start``."""
        _, path = self.route(start, key)
        return len(path) - 1

    # ----------------------------------------------------------------- repair

    def fail_node(self, node: DhtNode, repair: bool = True) -> None:
        """Crash a node; neighbours repair their leaf sets and tables.

        Repair exchanges are charged as control traffic: each repairing
        neighbour contacts the edge of its leaf set to fetch a replacement
        (Pastry's leaf-set repair protocol).
        """
        if not node.alive:
            return
        node.fail()
        self.network.fail_host(node.host)
        self.sim.tracer.instant(
            f"node failed {node.name}", category="overlay.failure", node=node.name
        )
        self.sim.metrics.counter("overlay.failures").add(1)
        if not repair:
            return
        for holder in self._leafset_holders(node.node_id):
            if not holder.alive:
                continue
            holder.leaf_set.remove(node.node_id)
            holder.routing_table.remove(node.node_id)
            holder.leaf_set.rebuild(self._ring_pool(holder))
            # One request/response pair with a leaf-set edge node.
            edge = holder.leaf_set.members()[-1] if holder.leaf_set.members() else None
            if edge is not None:
                self.network.send_control(holder.host, edge.host, 64)
                self.network.send_control(edge.host, holder.host, 256)
            self.repairs_performed += 1
            self._repairs_counter.add(1)

    def _leafset_holders(self, node_id: NodeId) -> List[DhtNode]:
        """Nodes that (should) hold ``node_id`` in their leaf set."""
        return [n for n in self.nodes if n.alive and n.leaf_set.contains(node_id)]

    def replacement_for(self, failed: DhtNode) -> DhtNode:
        """The node that takes over a failed node's key range.

        Pastry hands the failed node's keys to the numerically closest
        surviving node — the paper's "replacing node" (e.g. N6 replacing N5
        in Fig. 3).
        """
        if failed.alive:
            raise OverlayError(f"{failed.name} has not failed")
        return self.responsible_node(failed.node_id)

    def sample_nodes(self, count: int, exclude: Sequence[DhtNode] = ()) -> List[DhtNode]:
        """Uniformly sample distinct alive nodes, excluding the given ones."""
        banned = {n.node_id for n in exclude}
        pool = [n for n in self.alive_nodes() if n.node_id not in banned]
        if count > len(pool):
            raise OverlayError(f"cannot sample {count} nodes from pool of {len(pool)}")
        return self.rng.sample(pool, count)
