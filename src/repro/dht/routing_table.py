"""Pastry prefix-routing table.

Row ``r`` holds nodes whose ids share exactly ``r`` leading base-``2**b``
digits with the owner; column ``c`` within a row holds a node whose
``r``-th digit is ``c``. Forwarding a message to the entry matching one
more digit of the key gives O(log N) routing (Sec. 3.2, "Routing table").
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, TYPE_CHECKING

from repro.util.ids import ID_BITS, NodeId

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.dht.node import DhtNode


class RoutingTable:
    """The routing table owned by a single DHT node."""

    def __init__(self, owner_id: NodeId, bits_per_digit: int = 4) -> None:
        if ID_BITS % bits_per_digit:
            raise ValueError("bits_per_digit must divide 128")
        self.owner_id = owner_id
        self.bits_per_digit = bits_per_digit
        self.num_rows = ID_BITS // bits_per_digit
        self.num_cols = 1 << bits_per_digit
        self._owner_digits = owner_id.digits(bits_per_digit)
        self._rows: Dict[int, Dict[int, "DhtNode"]] = {}
        # Observer fired on add/remove; the overlay uses it to version the
        # topology so route memos (Scribe) invalidate on any change.
        self.on_change = None

    def entry(self, row: int, col: int) -> Optional["DhtNode"]:
        """The node stored at (row, col), or None if the slot is empty."""
        return self._rows.get(row, {}).get(col)

    def add(self, node: "DhtNode") -> bool:
        """Insert ``node`` into its slot; returns True if the table changed.

        The slot is determined by the node id alone: row = length of the
        shared prefix with the owner, column = the first differing digit.
        An occupied slot keeps its current entry (the real Pastry prefers
        the closer node by proximity metric; with uniform latencies any
        entry is equally good).
        """
        if node.node_id == self.owner_id:
            return False
        row = self.owner_id.shared_prefix_length(node.node_id, self.bits_per_digit)
        col = node.node_id.digit(row, self.bits_per_digit)
        slots = self._rows.setdefault(row, {})
        if col in slots:
            return False
        slots[col] = node
        if self.on_change is not None:
            self.on_change()
        return True

    def remove(self, node_id: NodeId) -> bool:
        """Drop a (failed) node from the table; returns True if present."""
        row = self.owner_id.shared_prefix_length(node_id, self.bits_per_digit)
        col = node_id.digit(row, self.bits_per_digit)
        slots = self._rows.get(row)
        if slots and col in slots and slots[col].node_id == node_id:
            del slots[col]
            if not slots:
                del self._rows[row]
            if self.on_change is not None:
                self.on_change()
            return True
        return False

    def next_hop(self, key: NodeId) -> Optional["DhtNode"]:
        """The routing-table entry that shares one more digit with ``key``."""
        row = self.owner_id.shared_prefix_length(key, self.bits_per_digit)
        col = key.digit(row, self.bits_per_digit)
        candidate = self.entry(row, col)
        if candidate is not None and candidate.alive:
            return candidate
        return None

    def row_slots(self, row: int) -> Dict[int, "DhtNode"]:
        """The mutable column -> node mapping for one row.

        Omniscient overlay wiring derives (row, col) for every entry from
        its digit buckets, so it writes slots directly instead of paying
        :meth:`add`'s prefix arithmetic per entry (millions of big-int ops
        at 50k nodes).
        """
        return self._rows.setdefault(row, {})

    def all_entries(self) -> List["DhtNode"]:
        """Every node currently referenced by the table."""
        return [node for slots in self._rows.values() for node in slots.values()]

    def occupied_rows(self) -> List[int]:
        """Indices of rows holding at least one entry (for maintenance)."""
        return sorted(self._rows)

    def row_entries(self, row: int) -> List["DhtNode"]:
        """The entries in one row (for per-row maintenance pings)."""
        return list(self._rows.get(row, {}).values())

    def size(self) -> int:
        return sum(len(slots) for slots in self._rows.values())

    def refresh(self, candidates: Iterable["DhtNode"]) -> int:
        """Repopulate empty slots from a candidate pool; returns #added."""
        added = 0
        for node in candidates:
            if node.alive and self.add(node):
                added += 1
        return added
