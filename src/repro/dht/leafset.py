"""Pastry leaf set: the numerically closest neighbours on the ring.

The leaf set holds ``size/2`` nodes clockwise and ``size/2`` nodes
counter-clockwise of the owner. SR3's star-structured recovery distributes
shard replicas across the leaf set (Sec. 3.4); the paper's deployment uses
a leaf set of 24 (Sec. 5.1).
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional, TYPE_CHECKING

from repro.util.ids import NodeId

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.dht.node import DhtNode


class LeafSet:
    """The leaf set owned by a single DHT node."""

    def __init__(self, owner_id: NodeId, size: int = 24) -> None:
        if size < 2 or size % 2:
            raise ValueError("leaf set size must be even and >= 2")
        self.owner_id = owner_id
        self.size = size
        self._clockwise: List["DhtNode"] = []
        self._counter: List["DhtNode"] = []
        # Member id values for O(1) `contains` — the overlay's repair scan
        # asks every node whether it held the failed one.
        self._ids: set = set()
        # Observer called with (added_id_values, removed_id_values) on any
        # membership change. The overlay uses it to maintain a reverse
        # index (id -> holding nodes) so a crash repairs only the actual
        # holders instead of scanning all N nodes.
        self.on_membership_change: Optional[Callable[[Iterable[int], Iterable[int]], None]] = None

    @property
    def half(self) -> int:
        return self.size // 2

    def members(self) -> List["DhtNode"]:
        """All current members, counter-clockwise side first."""
        return list(self._counter) + list(self._clockwise)

    def clockwise(self) -> List["DhtNode"]:
        """Members clockwise of the owner, nearest first."""
        return list(self._clockwise)

    def counter_clockwise(self) -> List["DhtNode"]:
        """Members counter-clockwise of the owner, nearest first."""
        return list(self._counter)

    def rebuild(self, nodes: Iterable["DhtNode"]) -> None:
        """Recompute both halves from a pool of alive candidate nodes."""
        alive = [n for n in nodes if n.alive and n.node_id != self.owner_id]
        by_cw = sorted(alive, key=lambda n: self.owner_id.clockwise_distance(n.node_id))
        by_ccw = sorted(alive, key=lambda n: n.node_id.clockwise_distance(self.owner_id))
        self._set_members(by_cw[: self.half], by_ccw[: self.half])

    def seed(self, clockwise: List["DhtNode"], counter: List["DhtNode"]) -> None:
        """Install both halves directly, nearest-first.

        Omniscient wiring: the overlay already walked the sorted ring, so
        the per-node distance re-sorts of :meth:`rebuild` are redundant.
        Callers guarantee the lists are what ``rebuild`` would select.
        """
        self._set_members(list(clockwise), list(counter))

    def _set_members(self, clockwise: List["DhtNode"], counter: List["DhtNode"]) -> None:
        new_ids = {n.node_id.value for n in clockwise}
        new_ids.update(n.node_id.value for n in counter)
        old_ids = self._ids
        self._clockwise = clockwise
        self._counter = counter
        self._ids = new_ids
        if self.on_membership_change is not None and new_ids != old_ids:
            self.on_membership_change(new_ids - old_ids, old_ids - new_ids)

    def remove(self, node_id: NodeId) -> bool:
        """Drop a failed member; returns True if it was present."""
        if node_id.value not in self._ids:
            return False
        self._clockwise = [n for n in self._clockwise if n.node_id != node_id]
        self._counter = [n for n in self._counter if n.node_id != node_id]
        self._ids.discard(node_id.value)
        if self.on_membership_change is not None:
            self.on_membership_change((), (node_id.value,))
        return True

    def last_member(self) -> Optional["DhtNode"]:
        """The final entry of :meth:`members` without building the copy."""
        if self._clockwise:
            return self._clockwise[-1]
        if self._counter:
            return self._counter[-1]
        return None

    def contains(self, node_id: NodeId) -> bool:
        return node_id.value in self._ids

    def covers(self, key: NodeId) -> bool:
        """True when ``key`` falls inside the span of the leaf set.

        Pastry's routing rule: if the key is within the leaf-set range, the
        message is delivered directly to the numerically closest leaf.
        """
        if not self._clockwise or not self._counter:
            return False
        low = self._counter[-1].node_id
        high = self._clockwise[-1].node_id
        return low.clockwise_distance(key) <= low.clockwise_distance(high)

    def closest(self, key: NodeId) -> Optional["DhtNode"]:
        """The alive member (or owner-side candidate) nearest to ``key``."""
        alive = [n for n in self.members() if n.alive]
        if not alive:
            return None
        return min(alive, key=lambda n: (key.distance(n.node_id), n.node_id.value))

    def is_full(self) -> bool:
        return len(self._clockwise) == self.half and len(self._counter) == self.half
