"""A DHT node: the unit of state placement and recovery in SR3.

Each stream operator is associated with one node (Sec. 3.3, Layer 1). The
node carries its ring id, the simulated host it runs on (bandwidth,
latency), its Pastry routing state, and an in-memory shard store holding
replicas placed on it by the state layer.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, TYPE_CHECKING

from repro.dht.leafset import LeafSet
from repro.dht.routing_table import RoutingTable
from repro.util.ids import NodeId

if TYPE_CHECKING:  # pragma: no cover - type hints only
    from repro.sim.network import Host
    from repro.state.shard import ShardReplica


class DhtNode:
    """One peer of the consistent ring overlay."""

    def __init__(
        self,
        node_id: NodeId,
        host: "Host",
        leaf_set_size: int = 24,
        bits_per_digit: int = 4,
    ) -> None:
        self.node_id = node_id
        self.host = host
        self.routing_table = RoutingTable(node_id, bits_per_digit)
        self.leaf_set = LeafSet(node_id, leaf_set_size)
        self.alive = True
        # Position in the overlay's join sequence (the overlay sets this
        # when it adopts the node); -1 for nodes outside any overlay.
        self.join_order = -1
        # Overlay hook fired when liveness actually flips (with the new
        # state), so the overlay's cached alive-node index and count never
        # serve a stale view even when callers flip liveness via
        # fail()/revive() directly.
        self._on_liveness_change: Optional[Callable[[bool], None]] = None
        # Shard replicas stored on behalf of other operators, keyed by the
        # replica's globally unique key (see repro.state.shard).
        self.shard_store: Dict[object, "ShardReplica"] = {}

    @property
    def name(self) -> str:
        return self.host.name

    def __repr__(self) -> str:
        return f"DhtNode({self.name}, {self.node_id!r}, alive={self.alive})"

    # ----------------------------------------------------------- shard store

    def store_shard(self, key: object, replica: "ShardReplica") -> None:
        """Accept a shard replica for storage."""
        self.shard_store[key] = replica

    def get_shard(self, key: object) -> Optional["ShardReplica"]:
        """Fetch a stored replica, or None when absent/lost."""
        return self.shard_store.get(key)

    def drop_shard(self, key: object) -> bool:
        """Remove a replica (shard-loss injection); True if it existed."""
        return self.shard_store.pop(key, None) is not None

    def stored_shard_count(self) -> int:
        return len(self.shard_store)

    def stored_bytes(self) -> int:
        return sum(r.size_bytes for r in self.shard_store.values())

    # ------------------------------------------------------------- neighbours

    def known_nodes(self) -> List["DhtNode"]:
        """Everything this node can reach in one hop (table + leaf set)."""
        seen = {}
        for node in self.routing_table.all_entries() + self.leaf_set.members():
            seen[node.node_id] = node
        return list(seen.values())

    def fail(self) -> None:
        """Mark the node dead. The overlay handles repair and flow aborts."""
        if not self.alive:
            return
        self.alive = False
        if self._on_liveness_change is not None:
            self._on_liveness_change(False)

    def revive(self) -> None:
        if self.alive:
            return
        self.alive = True
        if self._on_liveness_change is not None:
            self._on_liveness_change(True)
