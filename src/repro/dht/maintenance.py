"""Overlay maintenance traffic: keep-alive pings and table refreshes.

Fig. 12c measures SR3's pure maintenance overhead — bytes per node per
second with no state being managed — as the overlay grows from 20 to 1,280
nodes. "Most network traffics are ping-pong messages used for maintaining
the overlay and routing ... each node pings to a limited set of nodes in
the leaf set", so bytes/node grows only linearly while the node count
grows exponentially. This module runs those rounds against the simulated
network and reports exactly that metric.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.dht.overlay import Overlay
from repro.errors import OverlayError


@dataclass(frozen=True)
class MaintenanceConfig:
    """Knobs of the keep-alive protocol.

    ``ping_bytes``/``pong_bytes`` size the liveness probe pair;
    ``leafset_period``/``routing_period`` are the probe intervals in
    seconds. Each routing round probes a single routing-table row,
    cycling through rows round-robin (Pastry's lazy table maintenance).
    """

    ping_bytes: int = 48
    pong_bytes: int = 48
    leafset_period: float = 30.0
    routing_period: float = 120.0

    def __post_init__(self) -> None:
        if self.leafset_period <= 0 or self.routing_period <= 0:
            raise ValueError("maintenance periods must be positive")
        if self.ping_bytes < 0 or self.pong_bytes < 0:
            raise ValueError("message sizes must be non-negative")


def run_maintenance_round(
    overlay: Overlay,
    config: MaintenanceConfig,
    round_index: int = 0,
    include_routing: bool = True,
) -> float:
    """Execute one maintenance round; returns total bytes exchanged.

    Every alive node pings each leaf-set member. If ``include_routing``,
    it also pings the entries of one routing-table row (selected by
    ``round_index`` round-robin).
    """
    total = 0.0
    for node in overlay.alive_nodes():
        targets = [m for m in node.leaf_set.members() if m.alive]
        if include_routing:
            rows = node.routing_table.occupied_rows()
            if rows:
                row = rows[round_index % len(rows)]
                targets.extend(m for m in node.routing_table.row_entries(row) if m.alive)
        for target in targets:
            overlay.network.send_control(node.host, target.host, config.ping_bytes)
            overlay.network.send_control(target.host, node.host, config.pong_bytes)
            total += config.ping_bytes + config.pong_bytes
    return total


def measure_maintenance(
    overlay: Overlay,
    config: MaintenanceConfig,
    duration: float = 300.0,
) -> Dict[str, float]:
    """Simulate ``duration`` seconds of maintenance; report per-node rates.

    Returns a dict with ``bytes_per_node_per_second`` (the Fig. 12c metric),
    plus the raw totals for auditing.
    """
    alive = overlay.alive_nodes()
    if not alive:
        raise OverlayError("cannot measure maintenance on an empty overlay")
    if duration <= 0:
        raise ValueError("duration must be positive")

    total_bytes = 0.0
    leafset_rounds = int(duration // config.leafset_period)
    routing_rounds = int(duration // config.routing_period)
    for i in range(leafset_rounds):
        total_bytes += run_maintenance_round(overlay, config, i, include_routing=False)
    for i in range(routing_rounds):
        # Routing rounds ping one table row each; leaf-set pings were
        # already counted above, so only charge the routing-row part.
        for node in overlay.alive_nodes():
            rows = node.routing_table.occupied_rows()
            if not rows:
                continue
            row = rows[i % len(rows)]
            for target in node.routing_table.row_entries(row):
                if not target.alive:
                    continue
                overlay.network.send_control(node.host, target.host, config.ping_bytes)
                overlay.network.send_control(target.host, node.host, config.pong_bytes)
                total_bytes += config.ping_bytes + config.pong_bytes

    per_node_per_second = total_bytes / len(alive) / duration
    return {
        "nodes": float(len(alive)),
        "duration_s": duration,
        "total_bytes": total_bytes,
        "bytes_per_node_per_second": per_node_per_second,
    }
