"""Pastry-style DHT: the consistent ring overlay SR3 stores shards on.

Layer 1 of the SR3 design (Sec. 3.3): every stream operator is associated
with a *node* holding a random 128-bit id on a circular id space. Nodes
keep a prefix-routing table (O(log N) hop routing), a leaf set (the
numerically closest neighbours, used by star-structured recovery), and the
overlay is self-organizing and self-repairing.
"""

from repro.dht.leafset import LeafSet
from repro.dht.routing_table import RoutingTable
from repro.dht.node import DhtNode
from repro.dht.overlay import Overlay
from repro.dht.maintenance import MaintenanceConfig, run_maintenance_round, measure_maintenance
from repro.dht.join import JoinReport, protocol_join
from repro.dht.failure_detector import DetectorConfig, FailureDetector

__all__ = [
    "LeafSet",
    "RoutingTable",
    "DhtNode",
    "Overlay",
    "MaintenanceConfig",
    "run_maintenance_round",
    "measure_maintenance",
    "JoinReport",
    "protocol_join",
    "DetectorConfig",
    "FailureDetector",
]
