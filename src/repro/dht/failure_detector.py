"""Heartbeat-based failure detection over the leaf set.

The recovery cost model charges a constant ``detection_delay`` before any
mechanism moves data; this module is the protocol behind that constant.
Every node periodically pings its leaf-set members ("each node pings to a
limited set of nodes in the leaf set", Sec. 5.4); a member that misses
``suspicion_threshold`` consecutive heartbeats is declared failed, and the
detector fires its callback — which is where a deployment would kick off
SR3 recovery.

Expected detection latency is therefore about
``period * (suspicion_threshold + 0.5)``, and the detector produces no
false positives while a member keeps answering.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.dht.node import DhtNode
from repro.dht.overlay import Overlay
from repro.errors import OverlayError

HEARTBEAT_BYTES = 48


@dataclass(frozen=True)
class DetectorConfig:
    """Heartbeat parameters."""

    period: float = 1.0
    suspicion_threshold: int = 3

    def __post_init__(self) -> None:
        if self.period <= 0:
            raise ValueError("period must be positive")
        if self.suspicion_threshold < 1:
            raise ValueError("suspicion_threshold must be at least 1")

    @property
    def expected_detection_delay(self) -> float:
        """Mean time from crash to declaration (half a period of phase
        uncertainty plus the threshold's worth of missed beats)."""
        return self.period * (self.suspicion_threshold + 0.5)


@dataclass
class FailureDetector:
    """Runs the heartbeat protocol for every alive node of an overlay."""

    overlay: Overlay
    config: DetectorConfig = field(default_factory=DetectorConfig)
    on_failure: Optional[Callable[[DhtNode, DhtNode, float], None]] = None

    def __post_init__(self) -> None:
        self._missed: Dict[Tuple[str, str], int] = {}
        self._declared: Set[Tuple[str, str]] = set()
        self.detections: List[Tuple[str, str, float]] = []
        self._running = False

    def start(self) -> None:
        """Begin the periodic heartbeat rounds."""
        if self._running:
            raise OverlayError("failure detector already running")
        self._running = True
        self.overlay.sim.schedule(self.config.period, self._round)

    def stop(self) -> None:
        self._running = False

    @property
    def running(self) -> bool:
        return self._running

    def _round(self) -> None:
        if not self._running:
            return
        sim = self.overlay.sim
        pings = 0
        peak_suspicion = 0
        for watcher in self.overlay.alive_nodes():
            for member in watcher.leaf_set.members():
                key = (watcher.name, member.name)
                if key in self._declared:
                    continue
                # Ping...
                pings += 1
                self.overlay.network.send_control(
                    watcher.host, member.host, HEARTBEAT_BYTES
                )
                if member.alive:
                    # ...pong: reset suspicion.
                    self.overlay.network.send_control(
                        member.host, watcher.host, HEARTBEAT_BYTES
                    )
                    self._missed[key] = 0
                else:
                    missed = self._missed.get(key, 0) + 1
                    self._missed[key] = missed
                    peak_suspicion = max(peak_suspicion, missed)
                    if missed >= self.config.suspicion_threshold:
                        self._declared.add(key)
                        self.detections.append((watcher.name, member.name, sim.now))
                        sim.tracer.instant(
                            f"detected failure of {member.name}",
                            category="overlay.detection",
                            watcher=watcher.name,
                            member=member.name,
                            missed=missed,
                        )
                        sim.metrics.counter("detector.detections").add(1)
                        if self.on_failure is not None:
                            self.on_failure(watcher, member, sim.now)
        # Telemetry: ping volume and the round's deepest suspicion level
        # (how close the protocol is to its next declaration).
        if pings:
            sim.metrics.counter("detector.heartbeats").add(pings)
        sim.metrics.series("detector.suspicion").record(sim.now, float(peak_suspicion))
        sim.schedule(self.config.period, self._round)

    def detected_by_anyone(self, node: DhtNode) -> Optional[float]:
        """The earliest time any watcher declared ``node`` failed."""
        times = [t for _, name, t in self.detections if name == node.name]
        return min(times) if times else None

    def false_positives(self) -> List[Tuple[str, str, float]]:
        """Declarations against nodes that are actually alive."""
        by_name = {n.name: n for n in self.overlay.nodes}
        return [
            (watcher, name, t)
            for watcher, name, t in self.detections
            if by_name[name].alive
        ]
