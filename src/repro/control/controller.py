"""The closed-loop remediation controller.

One :class:`Controller` iteration (:meth:`Controller.step`) is the classic
auto-remediation shape: **observe** (drain detector events, scan for
degraded links) → **diagnose** (:mod:`repro.control.diagnose`) → **plan**
(first matching :class:`~repro.control.policy.PolicyRule`) → **execute**
(:mod:`repro.control.actions`) → **verify** (the condition must be gone
*and* the chaos invariant checkers must hold). Verification failure
retries the action up to the rule's budget, then runs the rule's
escalation action; a condition that survives escalation is parked so the
loop always terminates.

Every remediation is timed on the simulated clock from the moment its
condition was detected to the moment verification passed — the MTTR the
``remediate`` benchmark reports. The controller traces ``control.loop`` /
``control.action`` / ``control.verify`` spans and feeds ``control.*``
counters plus a ``control.mttr_s`` histogram into the simulation's
metrics registry.

:class:`ControlPlane` is the thin world adapter the controller acts
through; build one with :meth:`ControlPlane.from_deployment` (bench/chaos
deployments) or :meth:`ControlPlane.from_sr3` (the public façade — see
:meth:`repro.api.SR3.attach_controller`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.control.actions import (
    ActionOutcome,
    RecoverDegraded,
    RecoverState,
    build_action,
)
from repro.control.diagnose import Diagnosis, _detection_time, diagnose
from repro.control.events import ControlEvent, EventLog, watch_detector
from repro.control.policy import PolicyRule, PolicyTable, default_policy
from repro.errors import RecoveryError


@dataclass
class ControlConfig:
    """Loop-wide knobs (per-condition policy lives in the table)."""

    #: Iteration budget for :meth:`Controller.run` — each iteration handles
    #: every fresh diagnosis, so this bounds cascades, not conditions.
    max_rounds: int = 8
    #: A host below this fraction of its nominal bandwidth is flaky.
    flaky_bw_fraction: float = 0.5
    #: A node holding this multiple of a state's per-node mean replica
    #: count is a hot shard.
    hot_shard_factor: float = 3.0
    #: A shard below this fraction of its state's mean byte size is cold
    #: (merge candidate). Zero — the default — disables the scan, keeping
    #: deployments that never opted into shard-granular remediation
    #: byte-identical.
    cold_shard_factor: float = 0.0
    #: Run the chaos invariant checkers as part of verification.
    verify_invariants: bool = True


@dataclass
class ControlPlane:
    """Everything the controller observes and acts through."""

    sim: object
    network: object
    overlay: object
    manager: object
    detector: Optional[object] = None
    #: Fired after a control-plane rewrite resets a state's chain, so an
    #: embedding that keeps pre-failure ground truth (the chaos engine)
    #: can re-anchor it to the new chain.
    on_chain_rewritten: Optional[Callable[[str], None]] = None

    @classmethod
    def from_deployment(cls, deployment, detector=None) -> "ControlPlane":
        """Adapt a bench/chaos deployment (``repro.bench.harness.Scenario``)."""
        return cls(
            sim=deployment.sim,
            network=deployment.network,
            overlay=deployment.overlay,
            manager=deployment.manager,
            detector=detector,
        )

    @classmethod
    def from_sr3(cls, sr3, detector=None) -> "ControlPlane":
        """Adapt the public :class:`repro.api.SR3` façade."""
        return cls(
            sim=sr3.ctx.sim,
            network=sr3.ctx.network,
            overlay=sr3.ctx.overlay,
            manager=sr3.manager,
            detector=detector,
        )


@dataclass
class RemediationRecord:
    """One diagnosis's journey through the loop."""

    diagnosis: Diagnosis
    action: str
    attempts: int = 0
    escalated: bool = False
    verified: bool = False
    resolved_at: Optional[float] = None
    #: When a non-blocking remediation's last recovery handle landed (set
    #: by :meth:`Controller.poll`); resolution then dates MTTR at landing,
    #: not at the post-run sweep that verifies it.
    landed_at: Optional[float] = None
    outcomes: List[ActionOutcome] = field(default_factory=list)
    violations: List[str] = field(default_factory=list)

    @property
    def mttr_s(self) -> Optional[float]:
        """Detection to verified-healthy, on the simulated clock."""
        if self.resolved_at is None:
            return None
        return self.resolved_at - self.diagnosis.detected_at

    def to_dict(self) -> Dict[str, object]:
        return {
            "diagnosis": self.diagnosis.to_dict(),
            "action": self.action,
            "attempts": self.attempts,
            "escalated": self.escalated,
            "verified": self.verified,
            "resolved_at": (
                round(self.resolved_at, 6) if self.resolved_at is not None else None
            ),
            "mttr_s": round(self.mttr_s, 6) if self.mttr_s is not None else None,
            "outcomes": [o.to_dict() for o in self.outcomes],
            "violations": list(self.violations),
        }


class Controller:
    """Policy-driven auto-remediation over one deployment."""

    def __init__(
        self,
        world: ControlPlane,
        policy: Optional[PolicyTable] = None,
        config: Optional[ControlConfig] = None,
        checkers=None,
        slo_engine=None,
        anomalies=None,
    ) -> None:
        self.world = world
        self.policy = policy if policy is not None else default_policy()
        self.config = config or ControlConfig()
        self._checkers = checkers
        #: Telemetry attachments: an :class:`~repro.obs.slo.SLOEngine` and
        #: an :class:`~repro.obs.anomaly.AnomalyDetector` pumped by
        #: :meth:`observe` — their alerts enter the loop as events.
        self.slo_engine = slo_engine
        self.anomalies = anomalies
        #: Embedding hook: called ``(state_name, handle)`` for every
        #: recovery :meth:`poll` begins, so a live harness can chain its
        #: own completion logic (revive, rollback, rewind).
        self.on_recovery_begun: Optional[Callable[[str, object], None]] = None
        self.log = EventLog()
        self.records: List[RemediationRecord] = []
        #: In-flight owner-loss remediations started via :meth:`begin_owner_loss`.
        self._open: Dict[str, Tuple[RemediationRecord, PolicyRule]] = {}
        #: Blocking remediations :meth:`poll` could not run mid-stream,
        #: executed by :meth:`sweep` once the embedding reaches quiescence.
        self._deferred: List[Tuple[RemediationRecord, PolicyRule, object]] = []
        self._parked: Set[Tuple[str, str, str]] = set()
        self._degraded_seen: Set[str] = set()
        # Verification context beyond the live world: recovery results and
        # pre-failure ground truth, bound by the chaos engine.
        self._results: Dict[str, object] = {}
        self._pre_checksums: Dict[str, Dict[int, str]] = {}
        self._pre_state: Dict[str, Dict[str, object]] = {}
        self._mechanism = "control"
        if world.detector is not None:
            watch_detector(world.detector, self.log)

    # ------------------------------------------------------------- plumbing

    def _count(self, name: str, value: float = 1.0) -> None:
        if value:
            self.world.sim.metrics.counter(f"control.{name}").add(value)

    def checkers(self):
        if self._checkers is None:
            from repro.chaos.invariants import DEFAULT_CHECKERS

            self._checkers = DEFAULT_CHECKERS
        return self._checkers

    def bind_ground_truth(
        self,
        results: Optional[Dict[str, object]] = None,
        pre_checksums: Optional[Dict[str, Dict[int, str]]] = None,
        pre_state: Optional[Dict[str, Dict[str, object]]] = None,
        mechanism: Optional[str] = None,
    ) -> None:
        """Give verification the pre-failure ground truth a campaign holds.

        With ground truth bound, the verify step audits recovered shard
        checksums and chain digests — not just the self-contained world
        invariants.
        """
        if results is not None:
            self._results = results
        if pre_checksums is not None:
            self._pre_checksums = pre_checksums
        if pre_state is not None:
            self._pre_state = pre_state
        if mechanism is not None:
            self._mechanism = mechanism

    def _check_context(self):
        """A duck-typed ``RunContext`` for the invariant checkers."""
        from types import SimpleNamespace

        return SimpleNamespace(
            scenario=SimpleNamespace(latency_bound=float("inf")),
            mechanism=self._mechanism,
            engine=SimpleNamespace(
                manager=self.world.manager,
                overlay=self.world.overlay,
                network=self.world.network,
                sim=self.world.sim,
            ),
            results=self._results,
            errors=[],
            pre_checksums=self._pre_checksums,
            pre_state=self._pre_state,
        )

    # ------------------------------------------------------------- the loop

    def observe(self) -> List[ControlEvent]:
        """Drain fresh events, pump telemetry, scan for degraded hosts."""
        events = self.log.drain()
        now = self.world.sim.now
        if self.slo_engine is not None:
            for alert in self.slo_engine.evaluate(now):
                self.log.emit(alert.to_event())
        if self.anomalies is not None:
            for anomaly in self.anomalies.scan(now):
                self.log.emit(anomaly.to_event())
        degraded = getattr(self.world.network, "degraded_hosts", None)
        if degraded is not None:
            current = {host.name: frac for host, frac in degraded(self.config.flaky_bw_fraction)}
            self._degraded_seen &= set(current)  # recovered hosts may re-flag
            for name in sorted(current):
                if name in self._degraded_seen:
                    continue
                self._degraded_seen.add(name)
                self.log.emit(
                    ControlEvent(
                        kind="node-degraded",
                        at=now,
                        node=name,
                        attrs=(("bw_fraction", round(current[name], 6)),),
                    )
                )
        events.extend(self.log.drain())
        self._count("events", len(events))
        return events

    def diagnose(self, events=()) -> List[Diagnosis]:
        return diagnose(
            self.world,
            events,
            flaky_bw_fraction=self.config.flaky_bw_fraction,
            hot_shard_factor=self.config.hot_shard_factor,
            cold_shard_factor=self.config.cold_shard_factor,
        )

    def step(self) -> List[RemediationRecord]:
        """One full observe → diagnose → plan → execute → verify pass."""
        tracer = self.world.sim.tracer
        span = tracer.start("control loop", category="control.loop")
        events = self.observe()
        fresh = [
            d
            for d in self.diagnose(events)
            if self._key(d) not in self._parked and d.state not in self._open
        ]
        self._count("diagnoses", len(fresh))
        handled: List[RemediationRecord] = []
        for diagnosis in fresh:
            record = self._remediate(diagnosis)
            if record is not None:
                handled.append(record)
        span.finish(remediations=len(handled))
        return handled

    def run(self, max_rounds: Optional[int] = None) -> List[RemediationRecord]:
        """Iterate :meth:`step` until the world is clean (or budget spent)."""
        rounds = max_rounds if max_rounds is not None else self.config.max_rounds
        handled: List[RemediationRecord] = []
        for _ in range(rounds):
            batch = self.step()
            if not batch:
                break
            handled.extend(batch)
        return handled

    @staticmethod
    def _key(diagnosis: Diagnosis) -> Tuple[str, str, str]:
        return (diagnosis.condition, diagnosis.subject, diagnosis.node or "")

    def _remediate(self, diagnosis: Diagnosis) -> Optional[RemediationRecord]:
        rule = self.policy.lookup(diagnosis)
        if rule is None:
            self._count("unmatched")
            self._parked.add(self._key(diagnosis))
            return None
        record = RemediationRecord(diagnosis=diagnosis, action=rule.action)
        self.records.append(record)
        action = build_action(rule.action, **{k: v for k, v in rule.params})
        for attempt in range(rule.max_retries + 1):
            if attempt:
                self._count("retries")
            if self._execute(record, action, diagnosis) and self._verify(
                record, diagnosis
            ):
                self._resolve(record)
                return record
        if rule.escalation is not None:
            record.escalated = True
            self._count("escalations")
            escalation = build_action(rule.escalation)
            if self._execute(record, escalation, diagnosis) and self._verify(
                record, diagnosis
            ):
                self._resolve(record)
                return record
        self._parked.add(self._key(diagnosis))
        self._count("unresolved")
        return record

    def _execute(self, record: RemediationRecord, action, diagnosis: Diagnosis) -> bool:
        tracer = self.world.sim.tracer
        span = tracer.start(
            f"control {action.name} {diagnosis.subject}",
            category="control.action",
            condition=diagnosis.condition,
        )
        outcome = action.execute(self.world, diagnosis, parent_span=span)
        span.finish(ok=outcome.ok, changed=outcome.changed)
        record.attempts += 1
        record.outcomes.append(outcome)
        self._count("actions")
        return outcome.ok

    def _verify(self, record: RemediationRecord, diagnosis: Diagnosis) -> bool:
        """The condition must be gone and the hard invariants must hold."""
        tracer = self.world.sim.tracer
        span = tracer.start(
            f"control verify {diagnosis.subject}", category="control.verify"
        )
        self._count("verifications")
        ok = True
        for current in self.diagnose():
            if self._key(current) == self._key(diagnosis):
                record.violations.append(
                    f"{diagnosis.condition} persists on {diagnosis.subject}"
                )
                ok = False
                break
        if ok and self.config.verify_invariants:
            from repro.chaos.invariants import check_invariants

            report = check_invariants(self._check_context(), self.checkers())
            for name in sorted(report.hard_violations):
                for message in report.hard_violations[name]:
                    record.violations.append(f"{name}: {message}")
                    ok = False
        span.finish(ok=ok)
        return ok

    def _resolve(self, record: RemediationRecord) -> None:
        record.verified = True
        record.resolved_at = (
            record.landed_at if record.landed_at is not None else self.world.sim.now
        )
        self._count("verified")
        mttr = record.mttr_s
        if mttr is not None:
            self.world.sim.metrics.histogram("control.mttr_s").observe(mttr)

    # ------------------------------------------- asynchronous (campaign) mode

    def begin_owner_loss(
        self,
        state_name: str,
        replacement=None,
        mechanism: Optional[str] = None,
    ):
        """Plan and *start* an owner-loss remediation, without blocking.

        The chaos engine drives the simulator itself (so mid-recovery
        fault injectors see the recovery in flight) and the remediation is
        verified later by :meth:`sweep`. Calling again for the same state
        (the engine's restart path after a replacement death) re-executes
        the same remediation record. Returns the recovery handle; raises
        :class:`RecoveryError` when no policy rule covers the loss or the
        matched rule is not a recovery.
        """
        registered = self.world.manager.states[state_name]
        open_entry = self._open.get(state_name)
        if open_entry is None:
            diagnosis = Diagnosis(
                condition="owner-lost",
                severity="critical",
                detected_at=_detection_time(
                    self.world, registered.owner, self.world.sim.now
                ),
                state=state_name,
                evidence=(("owner", registered.owner.name),),
            )
            rule = self.policy.lookup(diagnosis)
            if rule is None:
                raise RecoveryError(
                    f"no policy rule matches owner-lost for {state_name!r}"
                )
            record = RemediationRecord(diagnosis=diagnosis, action=rule.action)
            self.records.append(record)
            self._open[state_name] = (record, rule)
        else:
            record, rule = open_entry
        params = {k: v for k, v in rule.params}
        if mechanism is not None:
            params["mechanism"] = mechanism
        action = build_action(rule.action, **params)
        if not isinstance(action, RecoverState):
            raise RecoveryError(
                f"policy maps owner-lost to {rule.action!r}, which cannot "
                f"recover a state"
            )
        handle = action.begin(
            self.world, record.diagnosis, replacement=replacement
        )
        record.attempts += 1
        self._count("actions")
        return handle

    def poll(self) -> List[RemediationRecord]:
        """One non-blocking pass for loop-owning embeddings (live mode).

        A :class:`~repro.live.driver.LoadDriver` tick loop cannot tolerate
        an action calling ``run_until_idle`` mid-stream, so this pass only
        *starts* recoveries: a matched recovery rule begins its transfers
        and returns immediately (handles complete as the embedding drives
        the simulator; :attr:`on_recovery_begun` lets it chain revival
        logic), while any other matched rule is deferred for
        :meth:`sweep` to execute after quiescence. MTTR for polled
        recoveries is dated at the moment the last handle lands.
        """
        events = self.observe()
        open_keys = {
            self._key(record.diagnosis) for record, _rule in self._open.values()
        }
        fresh = [
            d
            for d in self.diagnose(events)
            if self._key(d) not in self._parked
            and self._key(d) not in open_keys
            and d.state not in self._open
        ]
        self._count("diagnoses", len(fresh))
        begun: List[RemediationRecord] = []
        for diagnosis in fresh:
            rule = self.policy.lookup(diagnosis)
            if rule is None:
                self._count("unmatched")
                self._parked.add(self._key(diagnosis))
                continue
            record = RemediationRecord(diagnosis=diagnosis, action=rule.action)
            self.records.append(record)
            action = build_action(rule.action, **{k: v for k, v in rule.params})
            if isinstance(action, RecoverDegraded):
                started = action.begin_all(self.world, diagnosis)
            elif isinstance(action, RecoverState) and diagnosis.state is not None:
                started = [
                    (diagnosis.state, action.begin(self.world, diagnosis))
                ]
            else:
                self._deferred.append((record, rule, action))
                continue
            record.attempts += 1
            self._count("actions")
            # Even an empty begin (nothing left to recover) stays open so
            # sweep() still verifies the condition actually cleared.
            self._open["poll/" + "/".join(self._key(diagnosis))] = (record, rule)
            begun.append(record)
            if started:
                outstanding = {"left": len(started)}
                for state_name, handle in started:
                    handle.on_done(self._poll_landed(record, outstanding))
                    if self.on_recovery_begun is not None:
                        self.on_recovery_begun(state_name, handle)
        return begun

    def _poll_landed(self, record: RemediationRecord, outstanding: Dict[str, int]):
        def landed(result) -> None:
            outstanding["left"] -= 1
            if outstanding["left"] == 0:
                record.landed_at = self.world.sim.now
        return landed

    def sweep(self, max_rounds: Optional[int] = None) -> List[RemediationRecord]:
        """Post-quiescence pass: settle in-flight remediations, then loop."""
        for state_name in sorted(self._open):
            record, rule = self._open.pop(state_name)
            if self._verify(record, record.diagnosis):
                self._resolve(record)
            else:
                self._parked.add(self._key(record.diagnosis))
                self._count("unresolved")
        deferred, self._deferred = self._deferred, []
        for record, rule, action in deferred:
            if self._execute(record, action, record.diagnosis) and self._verify(
                record, record.diagnosis
            ):
                self._resolve(record)
            else:
                self._parked.add(self._key(record.diagnosis))
                self._count("unresolved")
        return self.run(max_rounds)

    # --------------------------------------------------------------- report

    def report(self) -> Dict[str, object]:
        """A deterministic summary of everything the loop did."""
        ordered = sorted(
            self.records,
            key=lambda r: (
                r.diagnosis.detected_at,
                r.diagnosis.condition,
                r.diagnosis.subject,
            ),
        )
        mttrs = [r.mttr_s for r in ordered if r.mttr_s is not None]
        verified = sum(1 for r in ordered if r.verified)
        return {
            "format": "sr3-control-1",
            "summary": {
                "remediations": len(ordered),
                "verified": verified,
                "escalated": sum(1 for r in ordered if r.escalated),
                "unresolved": len(ordered) - verified,
                "actions": sum(r.attempts for r in ordered),
                "max_mttr_s": round(max(mttrs), 6) if mttrs else 0.0,
                "mean_mttr_s": (
                    round(sum(mttrs) / len(mttrs), 6) if mttrs else 0.0
                ),
            },
            "records": [r.to_dict() for r in ordered],
        }


__all__ = [
    "ControlConfig",
    "ControlPlane",
    "Controller",
    "RemediationRecord",
]
