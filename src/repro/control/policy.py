"""The declarative remediation policy table.

SR3's premise is that recovery is *customizable*; the control plane keeps
that promise by making remediation policy data, not code. A
:class:`PolicyTable` is an ordered list of :class:`PolicyRule`\\ s; the
first rule whose condition, severity filter, and subject glob match a
diagnosis wins and names the action to run, the retry budget, and the
escalation action should verification keep failing. Tables round-trip
through plain dicts, so a deployment can ship its policy next to its
scenario TOML.

:func:`default_policy` encodes the paper-faithful defaults:

=================  =================  ==================================
condition          action             escalation
=================  =================  ==================================
owner-lost         recover            — (nothing is bigger than recovery)
replica-thin       re-replicate       rewrite (fresh full save round)
chain-too-long     compact-chain      —
flaky-node         rebalance          evict-node
hot-shard          rebalance          —
shard-cold         merge-shards       —
standby-lagging    promote-standby    —
slo-burning        recover-degraded   —
metric-anomaly     rebalance          —
=================  =================  ==================================

The telemetry rows make alerts actionable out of the box: a burning SLO
proactively recovers every registered state stranded on a dead owner
(the alert names the symptom, not the corpse), and a node-scoped metric
anomaly drains the implicated node. Both are inert in deployments that
never attach a telemetry pipeline — the conditions simply never arise.
The same holds for the shard-granular rows: ``shard-cold`` needs an
opted-in ``cold_shard_factor`` and ``standby-lagging`` needs a
provisioned standby, so neither fires in a stock deployment.

:func:`shard_granular_policy` goes one step further for deployments that
want per-shard remediation: it reroutes ``hot-shard`` from wholesale
rebalancing to :class:`~repro.control.actions.SplitShard` (split the hot
shard, re-save, let placement re-scatter the halves).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fnmatch import fnmatchcase
from typing import Dict, List, Optional, Sequence, Tuple

from repro.control.diagnose import CONDITIONS, Diagnosis
from repro.errors import ConfigError


@dataclass(frozen=True)
class PolicyRule:
    """One row of the table: match filters plus the planned response.

    ``match`` is an ``fnmatch`` glob over the diagnosis subject (state
    name for state-scoped conditions, node name otherwise); ``severity``
    of ``None`` matches any. ``params`` are keyword arguments forwarded to
    the action's constructor (e.g. pinning ``mechanism="tree"`` on a
    ``recover`` rule).
    """

    condition: str
    action: str
    severity: Optional[str] = None
    match: str = "*"
    max_retries: int = 1
    escalation: Optional[str] = None
    params: Tuple[Tuple[str, object], ...] = ()

    def __post_init__(self) -> None:
        if self.condition not in CONDITIONS:
            raise ConfigError(
                f"unknown condition {self.condition!r}; known: {CONDITIONS}"
            )
        if self.max_retries < 0:
            raise ConfigError("max_retries must be non-negative")
        if isinstance(self.params, dict):
            object.__setattr__(self, "params", tuple(sorted(self.params.items())))
        else:
            object.__setattr__(self, "params", tuple(self.params))

    def matches(self, diagnosis: Diagnosis) -> bool:
        if diagnosis.condition != self.condition:
            return False
        if self.severity is not None and diagnosis.severity != self.severity:
            return False
        return fnmatchcase(diagnosis.subject, self.match)

    def to_dict(self) -> Dict[str, object]:
        return {
            "condition": self.condition,
            "action": self.action,
            "severity": self.severity,
            "match": self.match,
            "max_retries": self.max_retries,
            "escalation": self.escalation,
            "params": {k: v for k, v in self.params},
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "PolicyRule":
        spec = dict(data)
        params = spec.pop("params", {})
        if isinstance(params, dict):
            params = tuple(sorted(params.items()))
        return cls(params=tuple(params), **spec)


@dataclass
class PolicyTable:
    """An ordered rule list; first match wins."""

    rules: List[PolicyRule] = field(default_factory=list)

    def lookup(self, diagnosis: Diagnosis) -> Optional[PolicyRule]:
        for rule in self.rules:
            if rule.matches(diagnosis):
                return rule
        return None

    def extend(self, rules: Sequence[PolicyRule]) -> "PolicyTable":
        """A new table with ``rules`` prepended (overrides first-match)."""
        return PolicyTable(rules=list(rules) + list(self.rules))

    def to_dict(self) -> Dict[str, object]:
        return {"rules": [rule.to_dict() for rule in self.rules]}

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "PolicyTable":
        return cls(rules=[PolicyRule.from_dict(r) for r in data.get("rules", [])])


def default_policy(
    mechanism: Optional[str] = None, max_retries: int = 1
) -> PolicyTable:
    """The shipped policy (see the module docstring's table).

    ``mechanism`` pins proactive recovery to one mechanism name instead of
    the Fig. 7 selection heuristic — campaign mode uses this so the
    resilience matrix still compares mechanisms cell by cell.
    """
    recover_params: Tuple[Tuple[str, object], ...] = ()
    if mechanism is not None:
        recover_params = (("mechanism", mechanism),)
    return PolicyTable(
        rules=[
            PolicyRule(
                condition="owner-lost",
                action="recover",
                max_retries=max(max_retries, 2),
                params=recover_params,
            ),
            PolicyRule(
                condition="replica-thin",
                action="re-replicate",
                max_retries=max_retries,
                escalation="rewrite",
            ),
            PolicyRule(
                condition="chain-too-long",
                action="compact-chain",
                max_retries=max_retries,
            ),
            PolicyRule(
                condition="flaky-node",
                action="rebalance",
                max_retries=max_retries,
                escalation="evict-node",
            ),
            PolicyRule(
                condition="hot-shard",
                action="rebalance",
                max_retries=max_retries,
            ),
            PolicyRule(
                condition="shard-cold",
                action="merge-shards",
                max_retries=max_retries,
            ),
            PolicyRule(
                condition="standby-lagging",
                action="promote-standby",
                max_retries=max_retries,
            ),
            PolicyRule(
                condition="slo-burning",
                action="recover-degraded",
                max_retries=max_retries,
                params=recover_params,
            ),
            PolicyRule(
                condition="metric-anomaly",
                action="rebalance",
                max_retries=max_retries,
            ),
        ]
    )


def shard_granular_policy(
    mechanism: Optional[str] = None, max_retries: int = 1
) -> PolicyTable:
    """The default policy with shard-granular responses layered on top.

    One override: ``hot-shard`` splits the hot shard in place
    (``split-shard``) instead of draining the node wholesale — the
    following save round re-scatters the halves, which disperses the
    concentration as a side effect. Everything else (including the
    ``shard-cold``/``standby-lagging`` rows) is inherited from
    :func:`default_policy`.
    """
    return default_policy(mechanism=mechanism, max_retries=max_retries).extend(
        [
            PolicyRule(
                condition="hot-shard",
                action="split-shard",
                max_retries=max_retries,
                escalation="rebalance",
            ),
        ]
    )


__all__ = ["PolicyRule", "PolicyTable", "default_policy", "shard_granular_policy"]
