"""Turning observations into named, actionable conditions.

A :class:`Diagnosis` is the control plane's unit of work: one condition
(from :data:`CONDITIONS`), one subject (a protected state or an overlay
node), a severity, and the evidence that justified it. The
:func:`diagnose` scan reads the *actual* world — the recovery manager's
registry, placement plans, version chains, the overlay's membership, the
network's per-host capacity — rather than trusting any event at face
value: a ``node-failed`` event whose node has since been replaced produces
no diagnosis.

Conditions, in the order the paper's operational story motivates them:

- ``owner-lost`` — a registered state's owner is dead; the state is
  unreachable until a recovery lands it on a replacement (critical).
- ``replica-thin`` — some chain segment has fewer alive providers than
  the configured replication factor; one more failure may make the state
  unrecoverable (critical when any segment has a single provider left).
- ``chain-too-long`` — the version chain violates the compaction policy;
  recovery replay cost is drifting up.
- ``flaky-node`` — an alive node's host runs far below its nominal link
  capacity while holding shard replicas; reads through it drag every
  recovery that touches it.
- ``hot-shard`` — one node holds a disproportionate share of a state's
  replicas; losing it would thin many segments at once.
- ``shard-cold`` — two or more of a state's shards are far below the mean
  shard size; the partition is over-split and the per-shard fixed costs
  (setup, placement, chain bookkeeping) are being paid for nothing. Only
  scanned when a positive ``cold_shard_factor`` opts in.
- ``standby-lagging`` — a state has a provisioned warm standby
  (``repro.recovery.standby``) whose image no longer covers every chain
  segment; its flip-takeover guarantee is quietly eroding.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.control.events import ControlEvent

#: Every condition the diagnosis scan can produce. The first seven come
#: from the world scan; the last two are telemetry-driven (the ordering is
#: load-bearing: it is the controller's work order within a severity).
CONDITIONS = (
    "owner-lost",
    "replica-thin",
    "chain-too-long",
    "flaky-node",
    "hot-shard",
    "shard-cold",
    "standby-lagging",
    "slo-burning",
    "metric-anomaly",
)

#: Event kinds that become diagnoses directly (no world-scan equivalent).
TELEMETRY_KINDS = ("slo-burning", "metric-anomaly")

_SEVERITY_RANK = {"critical": 0, "warning": 1}


@dataclass(frozen=True)
class Diagnosis:
    """One named condition with its subject and supporting evidence."""

    condition: str
    severity: str  # "critical" | "warning"
    detected_at: float
    state: Optional[str] = None
    node: Optional[str] = None
    evidence: Tuple[Tuple[str, object], ...] = ()

    @property
    def subject(self) -> str:
        """What the policy table matches on: the state, else the node."""
        return self.state if self.state is not None else (self.node or "")

    def to_dict(self) -> Dict[str, object]:
        return {
            "condition": self.condition,
            "severity": self.severity,
            "detected_at": round(self.detected_at, 6),
            "state": self.state,
            "node": self.node,
            "evidence": {k: v for k, v in self.evidence},
        }


def link_plans(registered) -> List[object]:
    """The flat placement plans behind a registered state, base first.

    A chain-backed state exposes one flat plan per link; a flat state
    exposes its single plan. States never saved (plan ``None``) yield an
    empty list — there is nothing placed to reason about.
    """
    chain = getattr(registered, "chain", None)
    if chain is not None and chain.links:
        return [link.plan for link in chain.links]
    if registered.plan is None:
        return []
    return [registered.plan]


def _detection_time(world, node, default: float) -> float:
    """When the failure of ``node`` was first declared, if a detector ran."""
    detector = getattr(world, "detector", None)
    if detector is not None:
        declared = detector.detected_by_anyone(node)
        if declared is not None:
            return declared
    return default


def _diagnose_telemetry(events: Sequence[ControlEvent], out: List[Diagnosis]) -> None:
    """Telemetry alerts become diagnoses verbatim, dated at alert time."""
    for event in events:
        if event.kind not in TELEMETRY_KINDS:
            continue
        attrs = {k: v for k, v in event.attrs}
        default = "critical" if event.kind == "slo-burning" else "warning"
        out.append(
            Diagnosis(
                condition=event.kind,
                severity=str(attrs.get("severity", default)),
                detected_at=event.at,
                state=event.state,
                node=event.node,
                evidence=event.attrs,
            )
        )


def _diagnose_owner_lost(world, out: List[Diagnosis]) -> None:
    manager = world.manager
    detector = getattr(world, "detector", None)
    for name in sorted(manager.states):
        registered = manager.states[name]
        if registered.owner.alive or registered.plan is None:
            continue
        if detector is not None and detector.detected_by_anyone(registered.owner) is None:
            # A deployment that runs a detector learns about deaths through
            # it: the scan must not cheat past the heartbeat protocol by
            # reading ground-truth liveness the control plane cannot know.
            continue
        out.append(
            Diagnosis(
                condition="owner-lost",
                severity="critical",
                detected_at=_detection_time(world, registered.owner, world.sim.now),
                state=name,
                evidence=(("owner", registered.owner.name),),
            )
        )


def _diagnose_replica_thin(world, out: List[Diagnosis]) -> None:
    manager = world.manager
    for name in sorted(manager.states):
        registered = manager.states[name]
        thin: List[Tuple[int, int, int]] = []  # (link, shard index, providers)
        floor = registered.num_replicas
        for link_pos, plan in enumerate(link_plans(registered)):
            for index in plan.shard_indexes():
                providers = len(plan.providers_for(index))
                if providers < registered.num_replicas:
                    thin.append((link_pos, index, providers))
                    floor = min(floor, providers)
        if not thin:
            continue
        out.append(
            Diagnosis(
                condition="replica-thin",
                severity="critical" if floor <= 1 else "warning",
                detected_at=world.sim.now,
                state=name,
                evidence=(
                    ("thin_segments", len(thin)),
                    ("min_providers", floor),
                    ("num_replicas", registered.num_replicas),
                ),
            )
        )


def _diagnose_chain_too_long(world, out: List[Diagnosis]) -> None:
    manager = world.manager
    for name in sorted(manager.states):
        registered = manager.states[name]
        chain = registered.chain
        if chain is None or not chain.links:
            continue
        if not chain.needs_compaction(manager.compaction):
            continue
        out.append(
            Diagnosis(
                condition="chain-too-long",
                severity="warning",
                detected_at=world.sim.now,
                state=name,
                evidence=(
                    ("chain_length", chain.length),
                    ("delta_bytes", chain.delta_bytes),
                    ("base_bytes", chain.base_bytes),
                ),
            )
        )


def _diagnose_flaky_node(world, out: List[Diagnosis], flaky_bw_fraction: float) -> None:
    network = world.network
    degraded = getattr(network, "degraded_hosts", None)
    if degraded is None:
        return
    by_host: Dict[str, float] = {
        host.name: fraction for host, fraction in degraded(flaky_bw_fraction)
    }
    if not by_host:
        return
    for node in sorted(world.overlay.alive_nodes(), key=lambda n: n.name):
        fraction = by_host.get(node.host.name)
        if fraction is None or not node.shard_store:
            continue
        out.append(
            Diagnosis(
                condition="flaky-node",
                severity="warning",
                detected_at=world.sim.now,
                node=node.name,
                evidence=(
                    ("bw_fraction", round(fraction, 6)),
                    ("replicas_held", len(node.shard_store)),
                ),
            )
        )


def _diagnose_hot_shard(world, out: List[Diagnosis], hot_shard_factor: float) -> None:
    manager = world.manager
    for name in sorted(manager.states):
        registered = manager.states[name]
        counts: Dict[str, int] = {}
        nodes_by_name: Dict[str, object] = {}
        for plan in link_plans(registered):
            for placed in plan.placements:
                if not placed.node.alive:
                    continue
                if placed.node.get_shard(placed.replica.key) is None:
                    continue
                if getattr(placed.replica, "standby", False):
                    # A warm standby concentrates segments by design; that
                    # is provisioning, not skew to disperse.
                    continue
                counts[placed.node.name] = counts.get(placed.node.name, 0) + 1
                nodes_by_name[placed.node.name] = placed.node
        if len(counts) < 2:
            continue
        mean = sum(counts.values()) / len(counts)
        for node_name in sorted(counts):
            held = counts[node_name]
            if held >= hot_shard_factor * mean and held >= 4:
                out.append(
                    Diagnosis(
                        condition="hot-shard",
                        severity="warning",
                        detected_at=world.sim.now,
                        state=name,
                        node=node_name,
                        evidence=(
                            ("replicas_held", held),
                            ("mean_per_node", round(mean, 6)),
                        ),
                    )
                )


def _diagnose_shard_cold(world, out: List[Diagnosis], cold_shard_factor: float) -> None:
    """Two or more shards far below the state's mean size: merge fodder.

    Disabled while ``cold_shard_factor`` is zero (the default): no shard
    sits below zero times the mean, so deployments that never opt in see
    no new diagnoses.
    """
    if cold_shard_factor <= 0:
        return
    manager = world.manager
    for name in sorted(manager.states):
        registered = manager.states[name]
        shards = registered.shards
        if len(shards) <= 2:
            # Merging a 2-shard partition would collapse it entirely.
            continue
        sizes = {s.index: s.size_bytes for s in shards}
        total = float(sum(sizes.values()))
        if total <= 0:
            continue
        mean = total / len(sizes)
        cold = sorted(
            index
            for index, size in sizes.items()
            if size < cold_shard_factor * mean
        )
        if len(cold) < 2:
            continue
        out.append(
            Diagnosis(
                condition="shard-cold",
                severity="warning",
                detected_at=world.sim.now,
                state=name,
                evidence=(
                    ("cold_shards", tuple(cold)),
                    ("mean_bytes", round(mean, 6)),
                    ("factor", cold_shard_factor),
                ),
            )
        )


def _diagnose_standby_lagging(world, out: List[Diagnosis]) -> None:
    """A provisioned warm standby no longer covers every chain segment.

    Only states that actually hold standby-flagged replicas can produce
    this, so standby-free deployments are untouched. Dead owners are the
    ``owner-lost`` scan's business — this one guards the takeover
    guarantee while the primary is still up.
    """
    from repro.recovery.standby import standby_coverage, standby_node_of

    manager = world.manager
    for name in sorted(manager.states):
        registered = manager.states[name]
        if not registered.owner.alive:
            continue
        standby = standby_node_of(registered)
        if standby is None:
            continue
        covered, total = standby_coverage(registered, standby)
        if covered >= total:
            continue
        out.append(
            Diagnosis(
                condition="standby-lagging",
                severity="warning",
                detected_at=world.sim.now,
                state=name,
                node=standby.name,
                evidence=(
                    ("covered_segments", covered),
                    ("total_segments", total),
                ),
            )
        )


def diagnose(
    world,
    events: Sequence[ControlEvent] = (),
    flaky_bw_fraction: float = 0.5,
    hot_shard_factor: float = 3.0,
    cold_shard_factor: float = 0.0,
) -> List[Diagnosis]:
    """Scan the world (and fresh events) for remediable conditions.

    Returns a deterministic list: critical conditions first, then by
    condition name and subject — the order the controller works in.
    Detector events sharpen timestamps (a detector-declared failure dates
    an ``owner-lost`` diagnosis at declaration time, not scan time) but
    never create a diagnosis on their own; telemetry events
    (:data:`TELEMETRY_KINDS`) *do* — an SLO burn or a metric anomaly is an
    observation the world scan has no other way to reproduce.
    """
    out: List[Diagnosis] = []
    _diagnose_telemetry(events, out)
    _diagnose_owner_lost(world, out)
    _diagnose_replica_thin(world, out)
    _diagnose_chain_too_long(world, out)
    _diagnose_flaky_node(world, out, flaky_bw_fraction)
    _diagnose_hot_shard(world, out, hot_shard_factor)
    _diagnose_shard_cold(world, out, cold_shard_factor)
    _diagnose_standby_lagging(world, out)
    out.sort(
        key=lambda d: (
            _SEVERITY_RANK.get(d.severity, 9),
            CONDITIONS.index(d.condition),
            d.subject,
            d.node or "",
        )
    )
    return out


__all__ = ["CONDITIONS", "Diagnosis", "TELEMETRY_KINDS", "diagnose", "link_plans"]
