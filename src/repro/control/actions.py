"""Remediation actions: what the control plane can actually do.

Every action follows the same contract: ``execute(world, diagnosis)``
inspects the *current* world first and returns ``changed=False`` when the
condition is already gone — actions are idempotent, so the controller can
retry them freely. Execution drives the simulator to quiescence before
reporting, so an outcome reflects landed bytes, not scheduled intentions.

The catalog:

- :class:`RecoverState` (``recover``) — proactive recovery of a state
  whose owner died, through :meth:`RecoveryManager.recover`, using the
  Fig. 7 selection-recommended mechanism unless the policy pins one.
- :class:`RecoverDegraded` (``recover-degraded``) — the telemetry-alert
  form of recovery: scan the registry for states stranded on dead owners
  (all of them, or the one the alert binds) and recover each. Exposes a
  non-blocking ``begin_all`` for embeddings that own the event loop.
- :class:`ReReplicate` (``re-replicate``) — copy thin chain segments from
  a surviving provider onto fresh nodes until every segment is back at
  the configured replication factor. Copies preserve shard checksums and
  the chain structure (this is *not* a new save round).
- :class:`RewriteState` (``rewrite``) — a fresh full save of the current
  reconstructed image: resets the chain, restores full replication.
- :class:`CompactChain` (``compact-chain``) — rewrite, but a no-op unless
  the state actually carries a multi-link chain.
- :class:`RebalanceNode` (``rebalance``) — move replicas off a flagged
  node (all of them for a flaky node, the excess for a hot shard).
- :class:`EvictNode` (``evict-node``) — rebalance everything away, then
  remove the node from the ring (refuses to evict a state owner).
- :class:`SplitShard` (``split-shard``) — split a state's hottest shard
  in two (``m`` → ``m + 1``) and land the result with a fresh save.
- :class:`MergeShards` (``merge-shards``) — fold two cold shards into
  one (``m`` → ``m - 1``), same re-save flow.
- :class:`MigrateShard` (``migrate-shard``) — live-migrate one replica
  of the heaviest shard off a flagged node; chain and checksums are
  untouched.
- :class:`PromoteStandby` (``promote-standby``) — flip ownership to a
  warm standby (dead owner) or re-warm a lagging one (live owner).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.control.diagnose import Diagnosis, link_plans
from repro.errors import ConfigError, OverlayError, ReproError
from repro.state.placement import PlacedShard
from repro.state.shard import ShardReplica

#: Flow tag stamped on every byte the control plane moves.
CONTROL_TAG = "control.copy"


@dataclass(frozen=True)
class ActionOutcome:
    """What one action execution did (or why it could not)."""

    action: str
    ok: bool
    changed: bool
    details: Tuple[Tuple[str, object], ...] = ()
    error: Optional[str] = None

    def to_dict(self) -> Dict[str, object]:
        return {
            "action": self.action,
            "ok": self.ok,
            "changed": self.changed,
            "details": {k: v for k, v in self.details},
            "error": self.error,
        }


class Action:
    """Base class: a named, parameterized remediation."""

    name = "action"

    def __init__(self, **params) -> None:
        self.params = params

    def execute(
        self, world, diagnosis: Diagnosis, parent_span=None
    ) -> ActionOutcome:  # pragma: no cover - interface
        raise NotImplementedError

    # ------------------------------------------------------------- helpers

    def _ok(self, changed: bool, **details) -> ActionOutcome:
        return ActionOutcome(
            action=self.name,
            ok=True,
            changed=changed,
            details=tuple(sorted(details.items())),
        )

    def _fail(self, error: str, **details) -> ActionOutcome:
        return ActionOutcome(
            action=self.name,
            ok=False,
            changed=False,
            details=tuple(sorted(details.items())),
            error=error,
        )


ACTIONS: Dict[str, type] = {}


def register_action(cls):
    """Register an action class under its ``name`` (tests add their own)."""
    ACTIONS[cls.name] = cls
    return cls


def build_action(name: str, **params) -> Action:
    """Instantiate a registered action by policy-table name."""
    cls = ACTIONS.get(name)
    if cls is None:
        raise ConfigError(f"unknown action {name!r}; known: {sorted(ACTIONS)}")
    return cls(**params)


def _node_by_name(world, name: Optional[str]):
    for node in world.overlay.nodes:
        if node.name == name:
            return node
    return None


def _pick_target(world, exclude_ids, pending: Dict[str, int]):
    """The least-loaded eligible alive node (deterministic tie-break).

    ``pending`` counts replicas this action already routed to each node
    but whose transfers have not landed yet, so one action round spreads
    its copies instead of piling everything on the emptiest node.
    """
    candidates = [
        node
        for node in world.overlay.alive_nodes()
        if node.node_id not in exclude_ids
    ]
    if not candidates:
        return None
    return min(
        candidates,
        key=lambda n: (n.stored_shard_count() + pending.get(n.name, 0), n.name),
    )


def _copy_replica(world, source_node, target_node, replica, parent_span=None) -> None:
    """Ship one replica's bytes and install it on arrival."""

    def arrived(flow, key=replica.key, rep=replica, node=target_node):
        node.store_shard(key, rep)

    world.network.transfer(
        source_node.host,
        target_node.host,
        replica.size_bytes,
        on_complete=arrived,
        tag=CONTROL_TAG,
        parent_span=parent_span,
    )


_MECHANISM_FACTORIES = None


def _mechanism_instance(name: str):
    """A fresh mechanism implementation for a pinned policy name."""
    global _MECHANISM_FACTORIES
    if _MECHANISM_FACTORIES is None:
        from repro.recovery.line import LineRecovery
        from repro.recovery.speculation import SpeculativeStarRecovery
        from repro.recovery.standby import StandbyRecovery
        from repro.recovery.star import StarRecovery
        from repro.recovery.tree import TreeRecovery

        _MECHANISM_FACTORIES = {
            "star": StarRecovery,
            "line": LineRecovery,
            "tree": TreeRecovery,
            "standby": StandbyRecovery,
            "speculation": SpeculativeStarRecovery,
        }
    factory = _MECHANISM_FACTORIES.get(name)
    if factory is None:
        raise ConfigError(
            f"unknown mechanism {name!r}; known: {sorted(_MECHANISM_FACTORIES)}"
        )
    return factory()


@register_action
class RecoverState(Action):
    """Recover an owner-lost state onto a replacement node.

    ``mechanism`` (param) pins a mechanism by name; otherwise the manager
    runs the Fig. 7 selection heuristic for the state. :meth:`begin`
    starts the recovery and returns the handle without driving the
    simulator — the chaos engine uses it so mid-recovery fault injectors
    still see the recovery in flight; :meth:`execute` is the synchronous
    form the controller's sweep uses.
    """

    name = "recover"

    def begin(self, world, diagnosis: Diagnosis, replacement=None, parent_span=None):
        state_name = diagnosis.state
        registered = world.manager.states[state_name]
        if replacement is None:
            replacement = world.overlay.replacement_for(registered.owner)
        pinned = self.params.get("mechanism")
        impl = (
            _mechanism_instance(pinned)
            if pinned is not None
            else world.manager.mechanism_for(state_name)
        )
        handle = world.manager.recover(
            state_name,
            replacement=replacement,
            mechanism=impl,
            parent_span=parent_span,
        )

        def handover(result, reg=registered, node=replacement) -> None:
            reg.owner = node

        handle.on_done(handover)
        return handle

    def execute(self, world, diagnosis: Diagnosis, parent_span=None) -> ActionOutcome:
        state_name = diagnosis.state
        registered = world.manager.states.get(state_name)
        if registered is None:
            return self._fail(f"unknown state {state_name!r}")
        if registered.plan is None:
            return self._fail(f"state {state_name!r} was never saved")
        if registered.owner.alive:
            return self._ok(changed=False, owner=registered.owner.name)
        try:
            handle = self.begin(world, diagnosis, parent_span=parent_span)
            world.sim.run_until_idle()
            result = handle.result
        except (ReproError, OverlayError) as exc:
            return self._fail(str(exc))
        return self._ok(
            changed=True,
            mechanism=result.mechanism,
            replacement=result.replacement,
            duration_s=round(result.duration, 6),
        )


@register_action
class RecoverDegraded(Action):
    """Recover every dead-owner state a telemetry alert implicates.

    An SLO alert names a *symptom* (p99 burning, replay lag climbing),
    not a corpse; this action turns the symptom into recoveries by
    scanning the registry for states whose owner is dead — all of them
    when the alert carries no subject binding, just the bound state when
    it does. Parameters (``mechanism``) forward to :class:`RecoverState`.
    :meth:`begin_all` is the non-blocking form for embeddings that own
    the event loop (the live driver via :meth:`Controller.poll`);
    :meth:`execute` drives the simulator to quiescence like every other
    synchronous action.
    """

    name = "recover-degraded"

    def begin_all(self, world, diagnosis: Diagnosis, replacement=None, parent_span=None):
        """Start one recovery per implicated dead-owner state; no blocking.

        Returns ``[(state_name, handle), ...]`` — empty when the alert
        implicates nothing currently recoverable (the owner lives, or
        nothing was ever saved).
        """
        recover = RecoverState(**self.params)
        names = (
            [diagnosis.state]
            if diagnosis.state is not None
            else sorted(world.manager.states)
        )
        begun = []
        for state_name in names:
            registered = world.manager.states.get(state_name)
            if registered is None or registered.plan is None:
                continue
            if registered.owner.alive:
                continue
            sub = Diagnosis(
                condition="owner-lost",
                severity="critical",
                detected_at=diagnosis.detected_at,
                state=state_name,
                evidence=(
                    ("owner", registered.owner.name),
                    ("trigger", diagnosis.condition),
                ),
            )
            begun.append(
                (
                    state_name,
                    recover.begin(
                        world, sub, replacement=replacement, parent_span=parent_span
                    ),
                )
            )
        return begun

    def execute(self, world, diagnosis: Diagnosis, parent_span=None) -> ActionOutcome:
        try:
            begun = self.begin_all(world, diagnosis, parent_span=parent_span)
        except (ReproError, OverlayError) as exc:
            return self._fail(str(exc))
        if not begun:
            return self._ok(changed=False)
        world.sim.run_until_idle()
        return self._ok(
            changed=True,
            recovered=len(begun),
            states=",".join(name for name, _ in begun),
        )


@register_action
class ReReplicate(Action):
    """Copy thin segments back up to the configured replication factor."""

    name = "re-replicate"

    def execute(self, world, diagnosis: Diagnosis, parent_span=None) -> ActionOutcome:
        state_name = diagnosis.state
        registered = world.manager.states.get(state_name)
        if registered is None:
            return self._fail(f"unknown state {state_name!r}")
        plans = link_plans(registered)
        if not plans:
            return self._fail(f"state {state_name!r} was never saved")
        pending: Dict[str, int] = {}
        copies = 0
        for plan in plans:
            for index in plan.shard_indexes():
                providers = plan.providers_for(index)
                if len(providers) >= registered.num_replicas:
                    continue
                if not providers:
                    return self._fail(
                        f"segment {index} of {state_name!r} has no surviving "
                        f"replica; only a full recovery from another source "
                        f"can help"
                    )
                source = providers[0]
                held = {p.replica.replica_index for p in providers}
                occupied = {p.node.node_id for p in plan.for_shard(index)}
                if plan.owner is not None:
                    occupied.add(plan.owner.node_id)
                for replica_index in range(registered.num_replicas):
                    if replica_index in held:
                        continue
                    target = _pick_target(world, occupied, pending)
                    if target is None:
                        return self._fail(
                            f"no eligible node left to host a replica of "
                            f"segment {index} of {state_name!r}"
                        )
                    replica = ShardReplica(
                        source.replica.shard, replica_index, registered.num_replicas
                    )
                    _copy_replica(world, source.node, target, replica, parent_span)
                    plan.placements.append(PlacedShard(replica, target))
                    occupied.add(target.node_id)
                    pending[target.name] = pending.get(target.name, 0) + 1
                    copies += 1
        if copies == 0:
            return self._ok(changed=False)
        world.sim.run_until_idle()
        for plan in plans:
            for index in plan.shard_indexes():
                if len(plan.providers_for(index)) < registered.num_replicas:
                    return self._fail(
                        f"segment {index} of {state_name!r} still thin after "
                        f"re-replication"
                    )
        return self._ok(changed=True, copies=copies)


@register_action
class RewriteState(Action):
    """A fresh full save of the reconstructed image (resets the chain)."""

    name = "rewrite"

    def _rewrite(self, world, registered) -> ActionOutcome:
        from repro.state.partitioner import partition_snapshot, partition_synthetic
        from repro.state.version import StateVersion

        state_name = registered.state_name
        if not registered.owner.alive:
            return self._fail(
                f"owner of {state_name!r} is dead; recover it before rewriting"
            )
        try:
            snapshot = world.manager.recovered_snapshot(state_name)
            num_shards = (
                registered.chain.num_shards
                if registered.chain is not None and registered.chain.links
                else len(registered.shards)
            )
            if len(snapshot) == 0 and snapshot.size_bytes > 0:
                # Synthetic state: carry the byte size forward, bump the
                # version so the rewrite is distinguishable from the image
                # it folded.
                version = StateVersion(
                    world.sim.now, snapshot.version.sequence + 1
                )
                shards = partition_synthetic(
                    state_name, int(snapshot.size_bytes), num_shards, version
                )
            else:
                shards = partition_snapshot(snapshot, num_shards)
            world.manager.refresh_shards(state_name, shards)
            handle = world.manager.save(state_name)
            world.sim.run_until_idle()
            result = handle.result
        except ReproError as exc:
            return self._fail(str(exc))
        rewritten = getattr(world, "on_chain_rewritten", None)
        if rewritten is not None:
            rewritten(state_name)
        return self._ok(
            changed=True,
            chain_length=registered.chain.length,
            duration_s=round(result.duration, 6),
        )

    def execute(self, world, diagnosis: Diagnosis, parent_span=None) -> ActionOutcome:
        registered = world.manager.states.get(diagnosis.state)
        if registered is None:
            return self._fail(f"unknown state {diagnosis.state!r}")
        if registered.plan is None:
            return self._fail(f"state {diagnosis.state!r} was never saved")
        return self._rewrite(world, registered)


@register_action
class CompactChain(RewriteState):
    """Fold a too-long version chain into a fresh single-link base."""

    name = "compact-chain"

    def execute(self, world, diagnosis: Diagnosis, parent_span=None) -> ActionOutcome:
        registered = world.manager.states.get(diagnosis.state)
        if registered is None:
            return self._fail(f"unknown state {diagnosis.state!r}")
        chain = registered.chain
        if chain is None or chain.length <= 1:
            return self._ok(changed=False)
        return self._rewrite(world, registered)


@register_action
class RebalanceNode(Action):
    """Move replicas off a flagged node.

    A ``flaky-node`` diagnosis (node-scoped) drains every replica the node
    holds for registered states; a ``hot-shard`` diagnosis (state +
    node) moves only the excess above the state's per-node mean.
    """

    name = "rebalance"

    def _moves_for(self, world, node, diagnosis: Diagnosis) -> List[Tuple[object, object, PlacedShard]]:
        moves: List[Tuple[object, object, PlacedShard]] = []
        names = (
            [diagnosis.state]
            if diagnosis.state is not None
            else sorted(world.manager.states)
        )
        for state_name in names:
            registered = world.manager.states.get(state_name)
            if registered is None:
                continue
            held: List[Tuple[object, PlacedShard]] = []
            for plan in link_plans(registered):
                for placed in list(plan.placements):
                    # Standby copies are pinned to their standby node; they
                    # are warm capacity, not load to shed.
                    if getattr(placed.replica, "standby", False):
                        continue
                    if (
                        placed.node.node_id == node.node_id
                        and node.get_shard(placed.replica.key) is not None
                    ):
                        held.append((plan, placed))
            held.sort(key=lambda pair: repr(pair[1].replica.key))
            keep = 0
            if diagnosis.condition == "hot-shard":
                # Only shed the excess above the state's per-node mean.
                counts: Dict[str, int] = {}
                for plan in link_plans(registered):
                    for placed in plan.placements:
                        if getattr(placed.replica, "standby", False):
                            continue
                        if placed.node.alive and placed.node.get_shard(
                            placed.replica.key
                        ):
                            counts[placed.node.name] = (
                                counts.get(placed.node.name, 0) + 1
                            )
                if counts:
                    keep = int(math.ceil(sum(counts.values()) / len(counts)))
            for plan, placed in held[keep:]:
                moves.append((registered, plan, placed))
        return moves

    def execute(self, world, diagnosis: Diagnosis, parent_span=None) -> ActionOutcome:
        node = _node_by_name(world, diagnosis.node)
        if node is None or not node.alive:
            return self._ok(changed=False)
        moves = self._moves_for(world, node, diagnosis)
        if not moves:
            return self._ok(changed=False)
        pending: Dict[str, int] = {}
        moved = 0
        for registered, plan, placed in moves:
            replica = placed.replica
            occupied = {
                p.node.node_id for p in plan.for_shard(replica.shard.index)
            }
            if plan.owner is not None:
                occupied.add(plan.owner.node_id)
            target = _pick_target(world, occupied, pending)
            if target is None:
                return self._fail(
                    f"no eligible node to absorb {replica.key!r} from {node.name}"
                )

            def relocated(
                flow,
                key=replica.key,
                rep=replica,
                src=node,
                dst=target,
                the_plan=plan,
                old=placed,
            ) -> None:
                dst.store_shard(key, rep)
                src.drop_shard(key)
                the_plan.placements.remove(old)
                the_plan.placements.append(PlacedShard(rep, dst))

            world.network.transfer(
                node.host,
                target.host,
                replica.size_bytes,
                on_complete=relocated,
                tag=CONTROL_TAG,
                parent_span=parent_span,
            )
            pending[target.name] = pending.get(target.name, 0) + 1
            moved += 1
        world.sim.run_until_idle()
        leftovers = self._moves_for(world, node, diagnosis)
        if leftovers:
            return self._fail(
                f"{len(leftovers)} replicas still on {node.name} after rebalance"
            )
        return self._ok(changed=True, moved=moved, drained=node.name)


@register_action
class EvictNode(Action):
    """Drain a chronically degraded node, then remove it from the ring."""

    name = "evict-node"

    def execute(self, world, diagnosis: Diagnosis, parent_span=None) -> ActionOutcome:
        node = _node_by_name(world, diagnosis.node)
        if node is None or not node.alive:
            return self._ok(changed=False)
        owners = [
            name
            for name in sorted(world.manager.states)
            if world.manager.states[name].owner.node_id == node.node_id
        ]
        if owners:
            return self._fail(
                f"{node.name} owns {owners}; recover or migrate ownership "
                f"before eviction"
            )
        drain = RebalanceNode().execute(world, diagnosis, parent_span=parent_span)
        if not drain.ok:
            return self._fail(f"drain failed: {drain.error}")
        world.overlay.fail_node(node, repair=True)
        world.sim.run_until_idle()
        return self._ok(changed=True, evicted=node.name)


def _current_base_shards(world, registered) -> List[object]:
    """The state's current image re-partitioned at today's shard count.

    Folds any delta chain first (like :class:`RewriteState`), so the
    split/merge primitives — which operate on a base partition — always
    see a single-version, chain-link-zero shard set.
    """
    from repro.state.partitioner import partition_snapshot, partition_synthetic
    from repro.state.version import StateVersion

    snapshot = world.manager.recovered_snapshot(registered.state_name)
    num_shards = (
        registered.chain.num_shards
        if registered.chain is not None and registered.chain.links
        else len(registered.shards)
    )
    if len(snapshot) == 0 and snapshot.size_bytes > 0:
        version = StateVersion(world.sim.now, snapshot.version.sequence + 1)
        return partition_synthetic(
            registered.state_name, int(snapshot.size_bytes), num_shards, version
        )
    return partition_snapshot(snapshot, num_shards)


class _RepartitionAction(Action):
    """Shared machinery for shard-count changes (split/merge).

    Both actions fold the chain into the current image, apply the
    state-plane primitive, and land the result with a fresh full save —
    the save round re-scatters the relabeled shards across the leaf set
    and ``state_checksums()`` ground truth is preserved because the
    merged snapshot is byte-identical before and after.
    """

    def _guard(self, world, diagnosis: Diagnosis):
        state_name = diagnosis.state
        registered = (
            world.manager.states.get(state_name) if state_name is not None else None
        )
        if registered is None:
            return None, self._fail(f"unknown state {state_name!r}")
        if registered.plan is None:
            return None, self._fail(f"state {state_name!r} was never saved")
        if not registered.owner.alive:
            return None, self._fail(
                f"owner of {state_name!r} is dead; recover it before repartitioning"
            )
        return registered, None

    def _resize(self, world, registered, transform, **details) -> ActionOutcome:
        state_name = registered.state_name
        try:
            shards = transform(_current_base_shards(world, registered))
            world.manager.refresh_shards(state_name, shards)
            handle = world.manager.save(state_name)
            world.sim.run_until_idle()
            result = handle.result
        except ReproError as exc:
            return self._fail(str(exc))
        rewritten = getattr(world, "on_chain_rewritten", None)
        if rewritten is not None:
            rewritten(state_name)
        return self._ok(
            changed=True,
            num_shards=len(shards),
            duration_s=round(result.duration, 6),
            **details,
        )


@register_action
class SplitShard(_RepartitionAction):
    """Split the hottest shard of a state in two (``m`` → ``m + 1``).

    The target defaults to the state's largest shard; a policy can pin
    ``shard_index`` explicitly. Keys divide by the next hash bit, so the
    halves land deterministically and later saves re-scatter them.
    """

    name = "split-shard"

    def execute(self, world, diagnosis: Diagnosis, parent_span=None) -> ActionOutcome:
        from repro.state.partitioner import split_shard

        registered, failure = self._guard(world, diagnosis)
        if failure is not None:
            return failure
        index = self.params.get("shard_index")
        if index is None:
            hottest = max(
                registered.shards, key=lambda s: (s.size_bytes, -s.index)
            )
            index = hottest.index
        index = int(index)
        return self._resize(
            world,
            registered,
            lambda shards: split_shard(shards, index),
            split_index=index,
        )


@register_action
class MergeShards(_RepartitionAction):
    """Merge two cold shards into one (``m`` → ``m - 1``).

    The pair comes from the ``shard-cold`` diagnosis evidence when
    available (the two smallest cold shards), else the two smallest
    shards overall; ``index_a``/``index_b`` params pin it explicitly.
    A state already at two shards is left alone — merging further would
    erase the parallelism every recovery mechanism feeds on.
    """

    name = "merge-shards"

    def _pick_pair(self, diagnosis: Diagnosis, registered) -> Tuple[int, int]:
        a = self.params.get("index_a")
        b = self.params.get("index_b")
        if a is not None and b is not None:
            low, high = sorted((int(a), int(b)))
            return low, high
        by_size = {s.index: s.size_bytes for s in registered.shards}
        evidence = dict(diagnosis.evidence)
        cold = [i for i in evidence.get("cold_shards", ()) if i in by_size]
        pool = cold if len(cold) >= 2 else sorted(by_size)
        ranked = sorted(pool, key=lambda i: (by_size[i], i))
        low, high = sorted(ranked[:2])
        return low, high

    def execute(self, world, diagnosis: Diagnosis, parent_span=None) -> ActionOutcome:
        from repro.state.partitioner import merge_shard_pair

        registered, failure = self._guard(world, diagnosis)
        if failure is not None:
            return failure
        if len(registered.shards) <= 2:
            return self._ok(changed=False, num_shards=len(registered.shards))
        low, high = self._pick_pair(diagnosis, registered)
        return self._resize(
            world,
            registered,
            lambda shards: merge_shard_pair(shards, low, high),
            merged=f"{low}+{high}",
        )


@register_action
class MigrateShard(Action):
    """Move one replica of the heaviest shard off a flagged node.

    The surgical alternative to :class:`RebalanceNode`: a single replica
    of the node's largest resident shard rides a live network flow to the
    least-loaded eligible node, preserving checksums, versions, and the
    chain (no re-save, no ground-truth re-anchor). Standby copies are
    never migrated — they are pinned to their standby node.
    """

    name = "migrate-shard"

    def execute(self, world, diagnosis: Diagnosis, parent_span=None) -> ActionOutcome:
        from repro.state.placement import migrate_replica

        node = _node_by_name(world, diagnosis.node)
        if node is None or not node.alive:
            return self._ok(changed=False)
        names = (
            [diagnosis.state]
            if diagnosis.state is not None
            else sorted(world.manager.states)
        )
        best = None
        for state_name in names:
            registered = world.manager.states.get(state_name)
            if registered is None:
                continue
            for plan in link_plans(registered):
                for placed in plan.placements:
                    if getattr(placed.replica, "standby", False):
                        continue
                    if placed.node.node_id != node.node_id:
                        continue
                    if node.get_shard(placed.replica.key) is None:
                        continue
                    rank = (placed.replica.size_bytes, repr(placed.replica.key))
                    if best is None or rank > best[0]:
                        best = (rank, plan, placed)
        if best is None:
            return self._ok(changed=False)
        _, plan, placed = best
        shard_index = placed.replica.shard.index
        occupied = {p.node.node_id for p in plan.for_shard(shard_index)}
        if plan.owner is not None:
            occupied.add(plan.owner.node_id)
        target = _pick_target(world, occupied, {})
        if target is None:
            return self._fail(
                f"no eligible node to absorb shard {shard_index} from {node.name}"
            )
        try:
            migrate_replica(
                world.network,
                plan,
                shard_index,
                node,
                target,
                tag=CONTROL_TAG,
                parent_span=parent_span,
            )
        except ReproError as exc:
            return self._fail(str(exc))
        world.sim.run_until_idle()
        return self._ok(
            changed=True,
            shard=shard_index,
            source=node.name,
            target=target.name,
            bytes=round(placed.replica.size_bytes, 3),
        )


@register_action
class PromoteStandby(Action):
    """Flip ownership to the warm standby, or re-warm a lagging one.

    Dead owner: the standby node becomes the replacement and the standby
    mechanism takes over (warm segments are already local, so the
    takeover is a flip plus tail replay). Live owner (the
    ``standby-lagging`` case): the standby merely fell behind — an
    incremental :func:`~repro.recovery.standby.sync_standby` ships only
    the missing segments.
    """

    name = "promote-standby"

    def execute(self, world, diagnosis: Diagnosis, parent_span=None) -> ActionOutcome:
        from repro.recovery.standby import (
            StandbyRecovery,
            standby_coverage,
            standby_node_of,
            sync_standby,
        )

        state_name = diagnosis.state
        registered = (
            world.manager.states.get(state_name) if state_name is not None else None
        )
        if registered is None:
            return self._fail(f"unknown state {state_name!r}")
        if registered.plan is None:
            return self._fail(f"state {state_name!r} was never saved")
        standby = standby_node_of(registered)
        if standby is None:
            return self._fail(f"state {state_name!r} has no provisioned standby")
        if not registered.owner.alive:
            try:
                handle = world.manager.recover(
                    state_name,
                    replacement=standby,
                    mechanism=StandbyRecovery(),
                    parent_span=parent_span,
                )

                def handover(result, reg=registered, node=standby) -> None:
                    reg.owner = node

                handle.on_done(handover)
                world.sim.run_until_idle()
                result = handle.result
            except (ReproError, OverlayError) as exc:
                return self._fail(str(exc))
            return self._ok(
                changed=True,
                promoted=standby.name,
                mechanism=result.mechanism,
                duration_s=round(result.duration, 6),
            )
        covered, total = standby_coverage(registered, standby)
        if total and covered == total:
            return self._ok(changed=False, standby=standby.name)
        try:
            sync = sync_standby(
                world.manager.ctx, registered, standby, parent_span=parent_span
            )
            world.sim.run_until_idle()
            report = sync.report
        except ReproError as exc:
            return self._fail(str(exc))
        return self._ok(
            changed=True,
            standby=standby.name,
            copied_segments=report.copied_segments,
            copied_bytes=round(report.copied_bytes, 3),
        )


__all__ = [
    "ACTIONS",
    "Action",
    "ActionOutcome",
    "CompactChain",
    "CONTROL_TAG",
    "EvictNode",
    "MergeShards",
    "MigrateShard",
    "PromoteStandby",
    "ReReplicate",
    "RebalanceNode",
    "RecoverDegraded",
    "RecoverState",
    "RewriteState",
    "SplitShard",
    "build_action",
    "register_action",
]
