"""Control-plane events: the raw signals the controller observes.

The control loop (see :mod:`repro.control.controller`) is event-driven at
its edge: the heartbeat failure detector pushes ``node-failed`` events the
moment a member is declared dead, the controller's periodic world scan
adds ``node-degraded`` events for hosts running far below their nominal
link capacity, and the telemetry layer (:mod:`repro.obs.slo`,
:mod:`repro.obs.anomaly`) emits ``slo-burning`` / ``metric-anomaly``
alerts over continuous series. Detector and scan events are *signals*,
not conclusions — the diagnosis layer (:mod:`repro.control.diagnose`)
correlates them with the actual world state before anything acts;
telemetry alerts *are* the observation (no world scan can reproduce a
burn rate), so they become diagnoses directly.

Events carry the simulated timestamp at which the underlying condition was
*detected*; remediation MTTR is measured from that instant to the moment
verification passes, so detection latency is part of the bill the control
loop pays — exactly how the paper charges ``detection_delay`` to every
recovery.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

#: The event kinds the controller understands. ``node-failed`` comes from
#: the heartbeat detector, ``node-degraded`` from the controller's world
#: scan; ``slo-burning`` and ``metric-anomaly`` are telemetry alerts
#: (:mod:`repro.obs.slo` / :mod:`repro.obs.anomaly`) — unlike the first
#: two, they carry conditions the world scan cannot see, so the diagnosis
#: layer turns them into diagnoses directly.
EVENT_KINDS = ("node-failed", "node-degraded", "slo-burning", "metric-anomaly")


@dataclass(frozen=True)
class ControlEvent:
    """One observed signal, pinned to the simulated clock."""

    kind: str
    at: float
    node: Optional[str] = None
    state: Optional[str] = None
    attrs: Tuple[Tuple[str, object], ...] = ()

    def to_dict(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "at": round(self.at, 6),
            "node": self.node,
            "state": self.state,
            "attrs": {k: v for k, v in self.attrs},
        }


@dataclass
class EventLog:
    """An append-only event buffer with drain semantics.

    Producers (detector callbacks, world scans) :meth:`emit`; the
    controller :meth:`drain`\\ s unseen events once per loop iteration.
    Everything ever emitted stays readable via :meth:`history` for the
    report.
    """

    _events: List[ControlEvent] = field(default_factory=list)
    _cursor: int = 0

    def emit(self, event: ControlEvent) -> None:
        self._events.append(event)

    def drain(self) -> List[ControlEvent]:
        """Events emitted since the last drain."""
        fresh = self._events[self._cursor :]
        self._cursor = len(self._events)
        return fresh

    def history(self) -> List[ControlEvent]:
        return list(self._events)

    def __len__(self) -> int:
        return len(self._events)


def watch_detector(detector, log: EventLog) -> None:
    """Wire a :class:`~repro.dht.failure_detector.FailureDetector` into a log.

    Chains on any existing ``on_failure`` callback rather than replacing
    it, so a deployment that already reacts to detections keeps working.
    Duplicate declarations of the same member (every watcher fires once)
    collapse to a single event.
    """
    previous = detector.on_failure
    seen = set()

    def relay(watcher, member, at: float) -> None:
        if previous is not None:
            previous(watcher, member, at)
        if member.name not in seen:
            seen.add(member.name)
            log.emit(
                ControlEvent(
                    kind="node-failed",
                    at=at,
                    node=member.name,
                    attrs=(("watcher", watcher.name),),
                )
            )

    detector.on_failure = relay


__all__ = ["EVENT_KINDS", "ControlEvent", "EventLog", "watch_detector"]
