"""Closed-loop auto-remediation for SR3 deployments.

The control plane watches a running deployment (failure-detector events,
placement plans, version chains, per-host bandwidth), diagnoses named
conditions, plans actions from a declarative policy table, executes them
through the recovery manager, and verifies the result against the chaos
invariant checkers — retrying and escalating until the world is clean or
the policy's budget is spent.

Typical use through the public façade::

    app = SR3.create(...)
    controller = app.attach_controller()
    ...  # faults happen
    records = controller.run()

or standalone over a bench deployment::

    world = ControlPlane.from_deployment(deployment, detector=detector)
    controller = Controller(world, policy=default_policy())
    controller.run()
"""

from repro.control.actions import (
    ACTIONS,
    Action,
    ActionOutcome,
    build_action,
    register_action,
)
from repro.control.controller import (
    ControlConfig,
    Controller,
    ControlPlane,
    RemediationRecord,
)
from repro.control.diagnose import CONDITIONS, TELEMETRY_KINDS, Diagnosis, diagnose
from repro.control.events import EVENT_KINDS, ControlEvent, EventLog, watch_detector
from repro.control.policy import (
    PolicyRule,
    PolicyTable,
    default_policy,
    shard_granular_policy,
)

__all__ = [
    "ACTIONS",
    "Action",
    "ActionOutcome",
    "build_action",
    "register_action",
    "ControlConfig",
    "ControlPlane",
    "Controller",
    "RemediationRecord",
    "CONDITIONS",
    "TELEMETRY_KINDS",
    "Diagnosis",
    "diagnose",
    "EVENT_KINDS",
    "ControlEvent",
    "EventLog",
    "watch_detector",
    "PolicyRule",
    "PolicyTable",
    "default_policy",
    "shard_granular_policy",
]
