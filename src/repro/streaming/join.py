"""Incremental stream join — the stateful operator the paper's benchmarks
exercise ("stateful operators (e.g., incremental join)", Sec. 5.1).

:class:`IncrementalJoinBolt` performs a symmetric hash join of two input
streams on a shared key field. Rows from each side are buffered in the
operator's state store; every arrival immediately joins against the
buffered rows of the opposite side and emits the matches — so results
stream out incrementally instead of waiting for batch boundaries. The
buffered rows *are* the recoverable state: losing them silently drops all
future matches against past rows, which is exactly the failure SR3
protects against.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.errors import StreamRuntimeError
from repro.streaming.component import OutputCollector
from repro.streaming.stateful import StatefulBolt
from repro.streaming.tuples import StreamTuple


class IncrementalJoinBolt(StatefulBolt):
    """Symmetric hash join of two streams on ``key_field``.

    The side of each tuple is identified by its emitting component
    (``left_source`` / ``right_source``). Output fields are the key plus
    the configured value fields of both sides. State layout:
    ``(side, key) -> tuple of buffered value-rows``.

    Optionally bounds the per-key buffer (``max_rows_per_key``) so
    unbounded streams cannot grow state without limit; the oldest rows are
    evicted first (a sliding row-window join).
    """

    def __init__(
        self,
        key_field: str,
        left_source: str,
        right_source: str,
        left_fields: Sequence[str],
        right_fields: Sequence[str],
        max_rows_per_key: Optional[int] = None,
    ) -> None:
        super().__init__()
        if left_source == right_source:
            raise StreamRuntimeError("join sides must come from distinct components")
        if max_rows_per_key is not None and max_rows_per_key < 1:
            raise StreamRuntimeError("max_rows_per_key must be positive")
        self.key_field = key_field
        self.left_source = left_source
        self.right_source = right_source
        self.left_fields = tuple(left_fields)
        self.right_fields = tuple(right_fields)
        self.max_rows_per_key = max_rows_per_key

    def declare_output_fields(self) -> Tuple[str, ...]:
        return (self.key_field,) + self.left_fields + self.right_fields

    def _side_of(self, tuple_: StreamTuple) -> str:
        if tuple_.source == self.left_source:
            return "left"
        if tuple_.source == self.right_source:
            return "right"
        raise StreamRuntimeError(
            f"join received tuple from unexpected source {tuple_.source!r}"
        )

    def _row_of(self, tuple_: StreamTuple, side: str) -> tuple:
        fields = self.left_fields if side == "left" else self.right_fields
        return tuple(tuple_[f] for f in fields)

    def process(self, tuple_: StreamTuple, collector: OutputCollector) -> None:
        side = self._side_of(tuple_)
        other = "right" if side == "left" else "left"
        key = tuple_[self.key_field]
        row = self._row_of(tuple_, side)

        # Buffer this row on its own side (bounded, oldest-first eviction).
        buffered = self.state.get((side, key), ())
        buffered = buffered + (row,)
        if self.max_rows_per_key is not None and len(buffered) > self.max_rows_per_key:
            buffered = buffered[-self.max_rows_per_key :]
        self.state.put((side, key), buffered)

        # Join against everything buffered on the opposite side.
        for match in self.state.get((other, key), ()):
            left_row = row if side == "left" else match
            right_row = match if side == "left" else row
            collector.emit(
                (key,) + left_row + right_row, timestamp=tuple_.timestamp
            )

    def buffered_rows(self, side: str, key) -> tuple:
        """Inspect the buffered rows of one side (for tests/debugging)."""
        if side not in ("left", "right"):
            raise StreamRuntimeError("side must be 'left' or 'right'")
        return self.state.get((side, key), ())
