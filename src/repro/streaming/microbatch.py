"""A synchronous micro-batch engine (the Spark-Streaming execution model).

Sec. 3.1 names the execution models SR3 must serve: Storm's asynchronous
record-at-a-time dataflow (``repro.streaming.cluster``) and the
"synchronous mini-batch processing" of Spark Streaming. This module is the
latter: a source is chopped into fixed-size batches; each batch flows
through a chain of deterministic transformations; ``update_state_by_key``
(Spark's ``mapWithState``, the paper's flagship stateful operator) folds
every batch into a keyed :class:`~repro.state.store.StateStore`.

Because the transformations are deterministic and batches are numbered,
the engine also exposes DStream-style *lineage recomputation*: the state
at batch ``k`` can be rebuilt by replaying batches ``0..k`` — which is
exactly what the lineage-recovery baseline models, and what SR3's shard
recovery avoids.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from repro.errors import StreamRuntimeError
from repro.state.store import StateStore


class Transformation:
    """One deterministic per-batch operator in the chain."""

    def apply(self, batch: List[Any], engine: "MicroBatchEngine") -> List[Any]:
        raise NotImplementedError


class _Map(Transformation):
    def __init__(self, fn: Callable[[Any], Any]) -> None:
        self.fn = fn

    def apply(self, batch, engine):
        return [self.fn(item) for item in batch]


class _FlatMap(Transformation):
    def __init__(self, fn: Callable[[Any], Iterable[Any]]) -> None:
        self.fn = fn

    def apply(self, batch, engine):
        out: List[Any] = []
        for item in batch:
            out.extend(self.fn(item))
        return out


class _Filter(Transformation):
    def __init__(self, predicate: Callable[[Any], bool]) -> None:
        self.predicate = predicate

    def apply(self, batch, engine):
        return [item for item in batch if self.predicate(item)]


class _ReduceByKey(Transformation):
    """Per-batch (key, value) aggregation — stateless across batches."""

    def __init__(self, fn: Callable[[Any, Any], Any]) -> None:
        self.fn = fn

    def apply(self, batch, engine):
        grouped: Dict[Any, Any] = {}
        for item in batch:
            key, value = self._unpack(item)
            grouped[key] = value if key not in grouped else self.fn(grouped[key], value)
        return list(grouped.items())

    @staticmethod
    def _unpack(item) -> Tuple[Any, Any]:
        if not isinstance(item, tuple) or len(item) != 2:
            raise StreamRuntimeError(
                f"reduce_by_key expects (key, value) pairs, got {item!r}"
            )
        return item


class _UpdateStateByKey(Transformation):
    """Spark's ``mapWithState``: fold batch values into persistent state."""

    def __init__(self, state_name: str, fn: Callable[[Any, List[Any]], Any]) -> None:
        self.state_name = state_name
        self.fn = fn

    def apply(self, batch, engine):
        store = engine.state_store(self.state_name)
        grouped: Dict[Any, List[Any]] = {}
        for item in batch:
            key, value = _ReduceByKey._unpack(item)
            grouped.setdefault(key, []).append(value)
        out = []
        for key, values in grouped.items():
            new_value = self.fn(store.get(key), values)
            store.put(key, new_value)
            out.append((key, new_value))
        return out


class DStream:
    """A transformation chain endpoint (builder-style)."""

    def __init__(self, job: "MicroBatchJob", chain: Tuple[Transformation, ...]) -> None:
        self._job = job
        self._chain = chain

    def _extend(self, transformation: Transformation) -> "DStream":
        stream = DStream(self._job, self._chain + (transformation,))
        self._job._register(stream)
        return stream

    def map(self, fn: Callable[[Any], Any]) -> "DStream":
        return self._extend(_Map(fn))

    def flat_map(self, fn: Callable[[Any], Iterable[Any]]) -> "DStream":
        return self._extend(_FlatMap(fn))

    def filter(self, predicate: Callable[[Any], bool]) -> "DStream":
        return self._extend(_Filter(predicate))

    def reduce_by_key(self, fn: Callable[[Any, Any], Any]) -> "DStream":
        return self._extend(_ReduceByKey(fn))

    def update_state_by_key(
        self, state_name: str, fn: Callable[[Any, List[Any]], Any]
    ) -> "DStream":
        """Stateful fold across batches; state lives in ``state_name``."""
        self._job._declare_state(state_name)
        return self._extend(_UpdateStateByKey(state_name, fn))

    @property
    def chain(self) -> Tuple[Transformation, ...]:
        return self._chain


class MicroBatchJob:
    """The declared computation: a source plus transformation chains."""

    def __init__(self, name: str, batch_size: int) -> None:
        if batch_size < 1:
            raise StreamRuntimeError("batch_size must be positive")
        self.name = name
        self.batch_size = batch_size
        self._records: Optional[List[Any]] = None
        self._streams: List[DStream] = []
        self._state_names: List[str] = []

    def source(self, records: Iterable[Any]) -> DStream:
        """Declare the input; records are materialized for replayability
        (Spark keeps batch inputs reliable for lineage recomputation)."""
        if self._records is not None:
            raise StreamRuntimeError("a job has exactly one source")
        self._records = list(records)
        root = DStream(self, ())
        self._streams.append(root)
        return root

    def _register(self, stream: DStream) -> None:
        self._streams.append(stream)

    def _declare_state(self, name: str) -> None:
        if name in self._state_names:
            raise StreamRuntimeError(f"duplicate state name {name!r}")
        self._state_names.append(name)

    @property
    def records(self) -> List[Any]:
        if self._records is None:
            raise StreamRuntimeError("job has no source")
        return self._records

    def num_batches(self) -> int:
        return -(-len(self.records) // self.batch_size)

    def batch(self, index: int) -> List[Any]:
        if not 0 <= index < self.num_batches():
            raise StreamRuntimeError(f"batch index {index} out of range")
        start = index * self.batch_size
        return self.records[start : start + self.batch_size]

    def sink(self) -> DStream:
        """The longest declared chain (the job's output stream)."""
        if not self._streams:
            raise StreamRuntimeError("job has no source")
        return max(self._streams, key=lambda s: len(s.chain))


class MicroBatchEngine:
    """Runs a job batch-by-batch and owns its keyed state stores."""

    def __init__(self, job: MicroBatchJob) -> None:
        self.job = job
        self._stores: Dict[str, StateStore] = {}
        self.batches_processed = 0
        self.outputs: List[List[Any]] = []

    def state_store(self, name: str) -> StateStore:
        if name not in self._stores:
            if name not in self.job._state_names:
                raise StreamRuntimeError(f"unknown state {name!r}")
            self._stores[name] = StateStore(f"{self.job.name}/{name}")
        return self._stores[name]

    def attach_state(self, name: str, store: StateStore) -> None:
        """Bind a recovered store (the SR3 recovery path)."""
        if name not in self.job._state_names:
            raise StreamRuntimeError(f"unknown state {name!r}")
        self._stores[name] = store

    def run_batch(self) -> List[Any]:
        """Process the next pending batch synchronously."""
        if self.batches_processed >= self.job.num_batches():
            raise StreamRuntimeError("all batches already processed")
        batch = self.job.batch(self.batches_processed)
        for transformation in self.job.sink().chain:
            batch = transformation.apply(batch, self)
        self.batches_processed += 1
        self.outputs.append(batch)
        return batch

    def run(self, max_batches: Optional[int] = None) -> int:
        """Process pending batches; returns how many ran."""
        ran = 0
        while self.batches_processed < self.job.num_batches():
            if max_batches is not None and ran >= max_batches:
                break
            self.run_batch()
            ran += 1
        return ran

    def recompute_from_lineage(self, up_to_batch: Optional[int] = None) -> "MicroBatchEngine":
        """DStream lineage recovery: rebuild state by replaying batches.

        Returns a fresh engine whose stores were reconstructed by
        re-running batches ``0..up_to_batch`` (default: everything this
        engine has processed). This is the slow path SR3 replaces — cost
        grows with the lineage length — but it is exact.
        """
        target = self.batches_processed if up_to_batch is None else up_to_batch
        if target > self.job.num_batches():
            raise StreamRuntimeError("cannot recompute beyond the source")
        replica = MicroBatchEngine(self.job)
        for _ in range(target):
            replica.run_batch()
        return replica
