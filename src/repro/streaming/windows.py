"""Window operators: tumbling, sliding, and session windows.

The paper's benchmark applications "contain ... various window operators
(e.g., sliding window, tumbling window and session window)" (Sec. 5.1).
Windows here are event-time based: each incoming tuple carries a
timestamp, panes close when a later timestamp proves them complete, and
closed panes are handed to the caller for aggregation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.errors import StreamRuntimeError


@dataclass
class WindowPane:
    """One closed window: its bounds and collected items."""

    start: float
    end: float
    items: List[Any] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.items)


class TumblingWindow:
    """Fixed, non-overlapping windows of ``size`` time units."""

    def __init__(self, size: float) -> None:
        if size <= 0:
            raise StreamRuntimeError("window size must be positive")
        self.size = size
        self._panes: Dict[int, WindowPane] = {}
        self._watermark: Optional[float] = None

    def add(self, timestamp: float, item: Any) -> List[WindowPane]:
        """Insert an item; returns panes closed by the advancing time."""
        if self._watermark is not None and timestamp < self._watermark:
            # Late data joins its (still open) pane or is dropped.
            index = int(timestamp // self.size)
            pane = self._panes.get(index)
            if pane is not None:
                pane.items.append(item)
            return []
        self._watermark = timestamp
        index = int(timestamp // self.size)
        pane = self._panes.setdefault(
            index, WindowPane(index * self.size, (index + 1) * self.size)
        )
        pane.items.append(item)
        return self._close_before(index)

    def _close_before(self, open_index: int) -> List[WindowPane]:
        closed = [self._panes.pop(i) for i in sorted(self._panes) if i < open_index]
        return closed

    def flush(self) -> List[WindowPane]:
        """Close every remaining pane (end of stream)."""
        closed = [self._panes.pop(i) for i in sorted(self._panes)]
        return closed


class SlidingWindow:
    """Overlapping windows of ``size``, advancing every ``slide`` units."""

    def __init__(self, size: float, slide: float) -> None:
        if size <= 0 or slide <= 0:
            raise StreamRuntimeError("size and slide must be positive")
        if slide > size:
            raise StreamRuntimeError("slide must not exceed size (gaps would drop data)")
        self.size = size
        self.slide = slide
        self._panes: Dict[int, WindowPane] = {}

    def _indexes_for(self, timestamp: float) -> List[int]:
        last = int(timestamp // self.slide)
        first = int((timestamp - self.size) // self.slide) + 1
        return [i for i in range(max(0, first), last + 1)]

    def add(self, timestamp: float, item: Any) -> List[WindowPane]:
        """Insert into every window covering ``timestamp``; close old panes."""
        for index in self._indexes_for(timestamp):
            start = index * self.slide
            pane = self._panes.setdefault(index, WindowPane(start, start + self.size))
            pane.items.append(item)
        closed = [
            self._panes.pop(i)
            for i in sorted(self._panes)
            if self._panes[i].end <= timestamp
        ]
        return closed

    def flush(self) -> List[WindowPane]:
        return [self._panes.pop(i) for i in sorted(self._panes)]


class SessionWindow:
    """Per-key sessions that close after ``gap`` units of inactivity."""

    def __init__(self, gap: float) -> None:
        if gap <= 0:
            raise StreamRuntimeError("session gap must be positive")
        self.gap = gap
        self._sessions: Dict[Any, WindowPane] = {}
        self._last_seen: Dict[Any, float] = {}

    def add(self, key: Any, timestamp: float, item: Any) -> Optional[WindowPane]:
        """Insert an item into the key's session.

        Returns the *previous* session for this key if the gap expired
        (it is closed and replaced), else None.
        """
        closed: Optional[WindowPane] = None
        last = self._last_seen.get(key)
        if last is not None and timestamp - last > self.gap:
            closed = self._sessions.pop(key)
        session = self._sessions.get(key)
        if session is None:
            session = WindowPane(timestamp, timestamp)
            self._sessions[key] = session
        session.items.append(item)
        session.end = max(session.end, timestamp)
        self._last_seen[key] = max(last or timestamp, timestamp)
        return closed

    def expire(self, now: float) -> List[WindowPane]:
        """Close every session idle past the gap at time ``now``."""
        expired_keys = [
            key for key, last in self._last_seen.items() if now - last > self.gap
        ]
        closed = []
        for key in expired_keys:
            closed.append(self._sessions.pop(key))
            del self._last_seen[key]
        return closed

    def flush(self) -> List[WindowPane]:
        closed = list(self._sessions.values())
        self._sessions.clear()
        self._last_seen.clear()
        return closed
