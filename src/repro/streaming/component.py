"""Spouts and bolts: the vertices of a topology.

Mirrors Storm's component model (Sec. 4): "Spouts are the data sources of
the stream ... Bolts are the logical processing units. Spouts pass data to
bolts and bolts process and produce a new output stream." ``Bolt`` plays
the role of Storm's ``IRichBolt`` interface that SR3 hooks into.
"""

from __future__ import annotations

from typing import Any, Iterator, List, Optional, Sequence

from repro.errors import TopologyError
from repro.streaming.tuples import StreamTuple


class OutputCollector:
    """Collects the tuples a component emits during one invocation.

    The executor drains the collector after each call and routes the
    tuples to downstream tasks.
    """

    def __init__(self, source: str, fields: Sequence[str]) -> None:
        self.source = source
        self.fields = tuple(fields)
        self._pending: List[StreamTuple] = []

    def emit(self, values: Sequence[Any], timestamp: Optional[float] = None) -> StreamTuple:
        """Emit one tuple with this component's declared fields."""
        out = StreamTuple(
            values, self.fields, source=self.source, timestamp=timestamp
        )
        self._pending.append(out)
        return out

    def drain(self) -> List[StreamTuple]:
        drained = self._pending
        self._pending = []
        return drained


class Component:
    """Common base: declared output fields and lifecycle hooks."""

    def declare_output_fields(self) -> Sequence[str]:
        """The field names of every tuple this component emits."""
        raise NotImplementedError

    def prepare(self, context: "TaskContext") -> None:
        """Called once before the first tuple (Storm's ``prepare``/``open``)."""

    def cleanup(self) -> None:
        """Called when the topology shuts down."""


class Spout(Component):
    """A data source. Subclasses implement :meth:`next_tuple`."""

    def next_tuple(self, collector: OutputCollector) -> bool:
        """Emit zero or more tuples; return False when exhausted."""
        raise NotImplementedError


class Bolt(Component):
    """A processing unit. Subclasses implement :meth:`execute`."""

    def execute(self, tuple_: StreamTuple, collector: OutputCollector) -> None:
        raise NotImplementedError


class TaskContext:
    """What a running task knows about itself."""

    def __init__(self, component_id: str, task_index: int, parallelism: int) -> None:
        if not 0 <= task_index < parallelism:
            raise TopologyError(
                f"task index {task_index} out of range for parallelism {parallelism}"
            )
        self.component_id = component_id
        self.task_index = task_index
        self.parallelism = parallelism

    @property
    def task_id(self) -> str:
        return f"{self.component_id}[{self.task_index}]"

    def __repr__(self) -> str:
        return f"TaskContext({self.task_id})"


class FunctionBolt(Bolt):
    """Wrap a plain function ``f(tuple) -> iterable of value-sequences``.

    Convenience for map/filter-style stateless transforms:

    >>> bolt = FunctionBolt(lambda t: [(t["word"].upper(),)], ["word"])
    """

    def __init__(self, fn, output_fields: Sequence[str]) -> None:
        self._fn = fn
        self._fields = tuple(output_fields)

    def declare_output_fields(self) -> Sequence[str]:
        return self._fields

    def execute(self, tuple_: StreamTuple, collector: OutputCollector) -> None:
        for values in self._fn(tuple_) or ():
            collector.emit(values, timestamp=tuple_.timestamp)


class IteratorSpout(Spout):
    """Wrap any iterator of value-sequences as a spout."""

    def __init__(self, iterable: Iterator, output_fields: Sequence[str]) -> None:
        self._iterator = iter(iterable)
        self._fields = tuple(output_fields)

    def declare_output_fields(self) -> Sequence[str]:
        return self._fields

    def next_tuple(self, collector: OutputCollector) -> bool:
        try:
            values = next(self._iterator)
        except StopIteration:
            return False
        collector.emit(values)
        return True
