"""Stateful bolts: operators that remember past input.

"A stateful operator maintains state that captures characteristics of some
of the records processed so far and updates it with each new input"
(Sec. 3.1). Each task of a stateful bolt owns one
:class:`~repro.state.store.StateStore`; the fields-grouping upstream
guarantees a key always reaches the task owning its state entry, so the
per-task stores partition the logical state cleanly.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import StreamRuntimeError
from repro.state.store import StateStore
from repro.streaming.component import Bolt, OutputCollector, TaskContext
from repro.streaming.tuples import StreamTuple


class StatefulBolt(Bolt):
    """A bolt with a keyed state store bound per task.

    Subclasses implement :meth:`process` (instead of ``execute``) and read
    or update ``self.state``. The engine snapshots and restores the store
    around SR3 save/recovery cycles.
    """

    def __init__(self) -> None:
        self._state: Optional[StateStore] = None
        self._context: Optional[TaskContext] = None

    @property
    def state(self) -> StateStore:
        if self._state is None:
            raise StreamRuntimeError(
                "state accessed before prepare(); bolts must run inside a cluster"
            )
        return self._state

    @property
    def context(self) -> TaskContext:
        if self._context is None:
            raise StreamRuntimeError("context accessed before prepare()")
        return self._context

    def prepare(self, context: TaskContext) -> None:
        self._context = context
        if self._state is None:
            self._state = StateStore(f"{context.task_id}/state")

    def attach_state(self, store: StateStore) -> None:
        """Bind an externally managed store (used on recovery restore)."""
        self._state = store

    def execute(self, tuple_: StreamTuple, collector: OutputCollector) -> None:
        self.process(tuple_, collector)

    def process(self, tuple_: StreamTuple, collector: OutputCollector) -> None:
        raise NotImplementedError


class CountingBolt(StatefulBolt):
    """Count occurrences of a key field — the canonical stateful operator.

    Emits ``(key, count)`` on every update (word count, click counting).
    """

    def __init__(self, key_field: str) -> None:
        super().__init__()
        self.key_field = key_field

    def declare_output_fields(self):
        return (self.key_field, "count")

    def process(self, tuple_: StreamTuple, collector: OutputCollector) -> None:
        key = tuple_[self.key_field]
        count = self.state.update(key, lambda c: (c or 0) + 1)
        collector.emit((key, count), timestamp=tuple_.timestamp)


class AggregatingBolt(StatefulBolt):
    """Group-by aggregate with a user-supplied reducer.

    ``reducer(previous_value_or_None, tuple) -> new_value``; emits
    ``(key, aggregate)`` per input (the micro-promotion application's
    groupby-aggregate stage, Fig. 1 top).
    """

    def __init__(self, key_field: str, reducer, value_field: str = "aggregate") -> None:
        super().__init__()
        self.key_field = key_field
        self.value_field = value_field
        self._reducer = reducer

    def declare_output_fields(self):
        return (self.key_field, self.value_field)

    def process(self, tuple_: StreamTuple, collector: OutputCollector) -> None:
        key = tuple_[self.key_field]
        new_value = self.state.update(key, lambda prev: self._reducer(prev, tuple_))
        collector.emit((key, new_value), timestamp=tuple_.timestamp)
