"""A Storm-like stream processing engine.

The substrate SR3 integrates with (Sec. 4): applications are *topologies*
— DAGs of spouts (sources) and bolts (processing units) — executing
record-at-a-time. Bolts may be stateful; their state lives in
:class:`~repro.state.store.StateStore` hashtables and can be protected by
SR3 through :class:`~repro.streaming.backend.SR3StateBackend`.

The engine runs topologies deterministically in-process
(:class:`~repro.streaming.cluster.LocalCluster`), with real tuples flowing
through real operator code — the examples and integration tests process
actual data and recover actual state.
"""

from repro.streaming.tuples import StreamTuple
from repro.streaming.component import Bolt, OutputCollector, Spout
from repro.streaming.groupings import (
    AllGrouping,
    FieldsGrouping,
    GlobalGrouping,
    ShuffleGrouping,
)
from repro.streaming.topology import Topology, TopologyBuilder
from repro.streaming.stateful import StatefulBolt
from repro.streaming.join import IncrementalJoinBolt
from repro.streaming.microbatch import DStream, MicroBatchEngine, MicroBatchJob
from repro.streaming.windows import (
    SessionWindow,
    SlidingWindow,
    TumblingWindow,
    WindowPane,
)
from repro.streaming.cluster import LocalCluster
from repro.streaming.backend import SR3StateBackend

__all__ = [
    "StreamTuple",
    "Spout",
    "Bolt",
    "OutputCollector",
    "ShuffleGrouping",
    "FieldsGrouping",
    "GlobalGrouping",
    "AllGrouping",
    "Topology",
    "TopologyBuilder",
    "StatefulBolt",
    "IncrementalJoinBolt",
    "DStream",
    "MicroBatchEngine",
    "MicroBatchJob",
    "TumblingWindow",
    "SlidingWindow",
    "SessionWindow",
    "WindowPane",
    "LocalCluster",
    "SR3StateBackend",
]
