"""The unit of data flowing through a topology."""

from __future__ import annotations

from typing import Any, Dict, Optional, Sequence

from repro.errors import TopologyError


class StreamTuple:
    """A named-field record emitted by a spout or bolt.

    Fields are positional values paired with the emitting component's
    declared field names; ``tuple_["field"]`` reads by name.
    """

    __slots__ = ("values", "fields", "source", "stream", "timestamp")

    def __init__(
        self,
        values: Sequence[Any],
        fields: Sequence[str],
        source: str = "",
        stream: str = "default",
        timestamp: Optional[float] = None,
    ) -> None:
        if len(values) != len(fields):
            raise TopologyError(
                f"tuple has {len(values)} values but {len(fields)} declared fields"
            )
        self.values = tuple(values)
        self.fields = tuple(fields)
        self.source = source
        self.stream = stream
        self.timestamp = timestamp

    def __getitem__(self, field: str) -> Any:
        try:
            return self.values[self.fields.index(field)]
        except ValueError:
            raise KeyError(
                f"tuple from {self.source!r} has no field {field!r}; has {self.fields}"
            ) from None

    def get(self, field: str, default: Any = None) -> Any:
        try:
            return self[field]
        except KeyError:
            return default

    def as_dict(self) -> Dict[str, Any]:
        return dict(zip(self.fields, self.values))

    def __repr__(self) -> str:
        pairs = ", ".join(f"{f}={v!r}" for f, v in zip(self.fields, self.values))
        return f"StreamTuple({pairs})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, StreamTuple):
            return NotImplemented
        return self.values == other.values and self.fields == other.fields

    def __hash__(self) -> int:
        return hash((self.values, self.fields))
