"""The local topology executor.

Runs a topology deterministically in-process: each component is
instantiated once per task (its declared parallelism), spout emissions are
routed through the DAG breadth-first, and groupings choose destination
tasks exactly as Storm would. Terminal components' outputs are captured
for inspection.

Failure injection for integration tests: :meth:`kill_task` discards a
task's live instance (losing its in-memory state, like a crashed worker);
with an :class:`~repro.streaming.backend.SR3StateBackend` attached, the
cluster recovers the lost store through SR3 and resumes processing.
"""

from __future__ import annotations

import copy
from collections import deque
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import StreamRuntimeError, TopologyError
from repro.obs.tracer import NULL_TRACER
from repro.streaming.backend import SR3StateBackend
from repro.streaming.component import OutputCollector, Spout, TaskContext
from repro.streaming.stateful import StatefulBolt
from repro.streaming.topology import Topology
from repro.streaming.tuples import StreamTuple

TaskKey = Tuple[str, int]


class LocalCluster:
    """Deterministic single-process topology runtime."""

    def __init__(
        self,
        topology: Topology,
        backend: Optional[SR3StateBackend] = None,
        capture_outputs: bool = True,
        output_cap: int = 100_000,
    ) -> None:
        self.topology = topology
        self.backend = backend
        self.capture_outputs = capture_outputs
        self.output_cap = output_cap
        self._tasks: Dict[TaskKey, Any] = {}
        self._collectors: Dict[TaskKey, OutputCollector] = {}
        self._spout_done: Dict[TaskKey, bool] = {}
        self.outputs: Dict[str, List[StreamTuple]] = {}
        self.executed_counts: Dict[str, int] = {}
        self._terminal = {
            cid for cid in topology.component_ids() if not topology.downstream_of(cid)
        }
        self._instantiate()

    # ----------------------------------------------------------------- setup

    def _instantiate(self) -> None:
        for component_id in self.topology.component_ids():
            spec = self.topology.spec(component_id)
            fields = tuple(spec.component.declare_output_fields())
            for index in range(spec.parallelism):
                key = (component_id, index)
                # A single-task component runs as the declared instance;
                # parallel components need independent (deep-copied) tasks.
                if spec.parallelism == 1:
                    instance = spec.component
                else:
                    instance = copy.deepcopy(spec.component)
                context = TaskContext(component_id, index, spec.parallelism)
                instance.prepare(context)
                self._tasks[key] = instance
                self._collectors[key] = OutputCollector(component_id, fields)
                if isinstance(instance, Spout):
                    self._spout_done[key] = False
        for component_id in self.topology.component_ids():
            self.executed_counts[component_id] = 0
        if self.capture_outputs:
            for component_id in self._terminal:
                self.outputs[component_id] = []

    @property
    def _tracer(self):
        """The backend simulation's tracer, or a no-op without a backend."""
        return self.backend.sim.tracer if self.backend is not None else NULL_TRACER

    def task(self, component_id: str, index: int = 0):
        """The live instance of one task (for state inspection in tests)."""
        try:
            return self._tasks[(component_id, index)]
        except KeyError:
            raise TopologyError(f"unknown task {component_id}[{index}]") from None

    def stateful_tasks(self) -> Dict[TaskKey, StatefulBolt]:
        return {
            key: inst for key, inst in self._tasks.items() if isinstance(inst, StatefulBolt)
        }

    def state_checksums(self) -> Dict[str, str]:
        """Content digest of every stateful task's live store.

        Ground truth for chaos probes: capture before a failure, compare
        after recovery — equal digests mean the recovered stores hold
        byte-identical key/value contents.
        """
        import hashlib

        digests: Dict[str, str] = {}
        for (component_id, index), bolt in sorted(self.stateful_tasks().items()):
            hasher = hashlib.sha256()
            for key in sorted(bolt.state.keys()):
                hasher.update(repr(key).encode())
                hasher.update(b"=")
                hasher.update(repr(bolt.state.get(key)).encode())
                hasher.update(b";")
            digests[f"{component_id}[{index}]"] = hasher.hexdigest()
        return digests

    # ------------------------------------------------------------- execution

    def run(
        self,
        max_emissions: Optional[int] = None,
        checkpoint_every: Optional[int] = None,
    ) -> int:
        """Pump spouts round-robin until exhausted (or the emission cap).

        ``checkpoint_every`` enables SR3's periodic state saving
        ("SR3 periodically saves state into the DHT-based ring overlay for
        all stateful operators", Sec. 4): every that-many producing spout
        invocations, all protected task states are saved into the overlay.
        Returns the number of spout invocations that produced tuples.
        """
        if checkpoint_every is not None:
            if checkpoint_every < 1:
                raise StreamRuntimeError("checkpoint_every must be positive")
            if self.backend is None:
                raise StreamRuntimeError(
                    "periodic checkpointing needs an SR3 backend"
                )
        emissions = 0
        spout_keys = sorted(self._spout_done)
        while True:
            if max_emissions is not None and emissions >= max_emissions:
                break
            active = [k for k in spout_keys if not self._spout_done[k]]
            if not active:
                break
            for key in active:
                if max_emissions is not None and emissions >= max_emissions:
                    break
                if self._pump_spout(key):
                    emissions += 1
                    if checkpoint_every is not None and emissions % checkpoint_every == 0:
                        self.checkpoint()
        return emissions

    def _pump_spout(self, key: TaskKey) -> bool:
        spout = self._tasks[key]
        collector = self._collectors[key]
        alive = spout.next_tuple(collector)
        if not alive:
            self._spout_done[key] = True
        produced = collector.drain()
        component_id = key[0]
        self.executed_counts[component_id] += 1
        for tuple_ in produced:
            self._route(component_id, tuple_)
        return bool(produced)

    def inject(
        self,
        source_id: str,
        values,
        timestamp: Optional[float] = None,
    ) -> None:
        """Push one synthetic emission from ``source_id`` through the DAG.

        The live-traffic driver's entry point: it owns the event stream
        (arrival times, replay position) and feeds records one at a time
        instead of letting the spout pull them, so a post-failure source
        rewind is just re-injecting the same records. ``values`` must
        match the component's declared output fields.
        """
        spec = self.topology.spec(source_id)
        fields = tuple(spec.component.declare_output_fields())
        tuple_ = StreamTuple(
            tuple(values), fields, source=source_id, timestamp=timestamp
        )
        self.executed_counts[source_id] += 1
        self._route(source_id, tuple_)

    def _route(self, source_id: str, root_tuple: StreamTuple) -> None:
        """Push one emission through the DAG breadth-first."""
        queue: deque = deque([(source_id, root_tuple)])
        while queue:
            component_id, tuple_ = queue.popleft()
            if component_id in self._terminal and self.capture_outputs:
                sink = self.outputs[component_id]
                if len(sink) < self.output_cap:
                    sink.append(tuple_)
            for edge in self.topology.downstream_of(component_id):
                spec = self.topology.spec(edge.target)
                for task_index in edge.grouping.choose(tuple_, spec.parallelism):
                    for out in self._execute_bolt((edge.target, task_index), tuple_):
                        queue.append((edge.target, out))

    def _execute_bolt(self, key: TaskKey, tuple_: StreamTuple) -> List[StreamTuple]:
        bolt = self._tasks.get(key)
        if bolt is None:
            raise StreamRuntimeError(
                f"tuple routed to dead task {key[0]}[{key[1]}]; recover it first"
            )
        collector = self._collectors[key]
        bolt.execute(tuple_, collector)
        self.executed_counts[key[0]] += 1
        return collector.drain()

    def flush(self) -> None:
        """Invoke ``finish(collector)`` on bolts that define it (windows)."""
        for key in sorted(k for k in self._tasks if k not in self._spout_done):
            bolt = self._tasks.get(key)
            finish = getattr(bolt, "finish", None)
            if callable(finish):
                collector = self._collectors[key]
                finish(collector)
                for out in collector.drain():
                    self._route(key[0], out)

    def shutdown(self) -> None:
        for instance in self._tasks.values():
            if instance is not None:
                instance.cleanup()

    # ------------------------------------------------------ failure handling

    def kill_task(self, component_id: str, index: int = 0) -> None:
        """Crash one task: its instance and in-memory state are lost."""
        key = (component_id, index)
        if key not in self._tasks:
            raise TopologyError(f"unknown task {component_id}[{index}]")
        self._tasks[key] = None
        self._tracer.instant(
            f"task killed {component_id}[{index}]",
            category="streaming.failure",
            task=f"{component_id}[{index}]",
        )
        if self.backend is not None:
            self.backend.sim.metrics.counter("streaming.tasks_killed").add(1)

    def revive_task(self, component_id: str, index: int = 0, store=None):
        """Re-instantiate a killed task without driving a recovery.

        The replacement instance restarts from an empty state store — or
        from ``store`` when the caller already rebuilt one (the live
        driver recovers asynchronously through the manager, rebuilds the
        store from the landed snapshot, and only then revives). Returns
        the new instance.
        """
        key = (component_id, index)
        if key not in self._tasks:
            raise TopologyError(f"unknown task {component_id}[{index}]")
        if self._tasks[key] is not None:
            raise StreamRuntimeError(f"task {component_id}[{index}] is alive")
        spec = self.topology.spec(component_id)
        if spec.parallelism == 1:
            instance = spec.component
        else:
            instance = copy.deepcopy(spec.component)
        context = TaskContext(component_id, index, spec.parallelism)
        if isinstance(instance, StatefulBolt):
            # The crash lost the in-memory hashtable: restart from an empty
            # store, then overwrite it with the restored image if any.
            from repro.state.store import StateStore

            instance.attach_state(StateStore(f"{component_id}[{index}]/state"))
        instance.prepare(context)
        if store is not None:
            if not isinstance(instance, StatefulBolt):
                raise StreamRuntimeError(
                    f"task {component_id}[{index}] is stateless; "
                    f"it has no store to attach"
                )
            instance.attach_state(store)
        self._tasks[key] = instance
        return instance

    def recover_task(
        self, component_id: str, index: int = 0, mechanism=None
    ) -> None:
        """Re-create a killed task, restoring state through SR3 if protected.

        ``mechanism`` optionally overrides the selection heuristic (e.g. a
        :class:`~repro.recovery.speculation.SpeculativeStarRecovery`).
        Without a backend (or for stateless bolts) the task restarts
        empty — exactly the "simply start a new operator instance"
        behaviour of stateless recovery (Sec. 3.1).
        """
        instance = self.revive_task(component_id, index)
        if isinstance(instance, StatefulBolt) and self.backend is not None:
            task_id = f"{component_id}[{index}]"
            if task_id in self.backend.protected_tasks():
                span = self._tracer.start(
                    f"streaming/recover_task {task_id}",
                    category="streaming.recovery",
                    task=task_id,
                )
                store, _result = self.backend.recover_task(
                    task_id, mechanism=mechanism
                )
                span.finish()
                self.backend.sim.metrics.counter("streaming.tasks_recovered").add(1)
                instance.attach_state(store)

    # ---------------------------------------------------------- SR3 plumbing

    def protect_stateful_tasks(self) -> List[str]:
        """Register every stateful task with the SR3 backend.

        Each task is associated with a distinct DHT node, mirroring
        Layer 1's operator-to-node mapping. Returns the protected ids.
        """
        if self.backend is None:
            raise StreamRuntimeError("no SR3 backend attached to this cluster")
        overlay = self.backend.manager.ctx.overlay
        protected = []
        used = []
        for (component_id, index), bolt in sorted(self.stateful_tasks().items()):
            task_id = f"{component_id}[{index}]"
            node = overlay.sample_nodes(1, exclude=used)[0]
            used.append(node)
            self.backend.protect(task_id, bolt.state, node)
            protected.append(task_id)
        return protected

    def checkpoint(self, serial: bool = True, incremental: bool = True) -> None:
        """Save all protected task states and run the sim to completion.

        ``incremental`` lets rounds after the first ship only dirtied keys
        as delta shards (pass False to force full base rewrites).
        """
        if self.backend is None:
            raise StreamRuntimeError("no SR3 backend attached to this cluster")
        span = self._tracer.start("streaming/checkpoint", category="streaming.save")
        handles = self.backend.save_all(serial=serial, incremental=incremental)
        self.backend.sim.run_until_idle()
        span.finish(states=len(handles))
        self.backend.sim.metrics.counter("streaming.checkpoints").add(1)
        unresolved = [h.state_name for h in handles if not h.done]
        if unresolved:
            raise StreamRuntimeError(f"saves never completed: {unresolved}")
