"""The SR3 state backend: wires stateful tasks to the recovery framework.

This is the integration point of Sec. 4: "SR3 interacts with the IRichBolt
interface in Storm. If SR3 is enabled, SR3 periodically saves state into
the DHT-based ring overlay for all stateful operators (bolts)." Every
protected task maps to a DHT node (Layer 1's operator-node association);
save rounds snapshot the task's store, partition it into shards, and write
replicas into the overlay; after a failure the backend recovers the
snapshot through the selected mechanism and rebuilds the store.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.dht.node import DhtNode
from repro.errors import RecoveryError, StateError
from repro.recovery.manager import MechanismImpl, RecoveryManager
from repro.recovery.model import RecoveryResult
from repro.state.chain import partition_delta
from repro.state.partitioner import partition_snapshot
from repro.state.store import StateSnapshot, StateStore


@dataclass
class ProtectedTask:
    """One stateful task under SR3 protection."""

    task_id: str
    store: StateStore
    node: DhtNode
    num_shards: int
    num_replicas: int
    registered: bool = False
    save_rounds: int = 0
    # The image the last landed save round captured — the parent every
    # incremental round diffs against.
    last_snapshot: Optional[StateSnapshot] = None


class SR3StateBackend:
    """Snapshot/save/recover glue between tasks and the recovery manager."""

    def __init__(self, manager: RecoveryManager, num_shards: int = 4, num_replicas: int = 2) -> None:
        if num_shards < 1 or num_replicas < 1:
            raise StateError("num_shards and num_replicas must be positive")
        self.manager = manager
        self.num_shards = num_shards
        self.num_replicas = num_replicas
        self._tasks: Dict[str, ProtectedTask] = {}

    @property
    def sim(self):
        return self.manager.ctx.sim

    def protect(
        self,
        task_id: str,
        store: StateStore,
        node: DhtNode,
        num_shards: Optional[int] = None,
        num_replicas: Optional[int] = None,
    ) -> ProtectedTask:
        """Associate a task's state store with a DHT node."""
        if task_id in self._tasks:
            raise StateError(f"task {task_id!r} is already protected")
        task = ProtectedTask(
            task_id=task_id,
            store=store,
            node=node,
            num_shards=num_shards or self.num_shards,
            num_replicas=num_replicas or self.num_replicas,
        )
        self._tasks[task_id] = task
        return task

    def protected_tasks(self) -> Dict[str, ProtectedTask]:
        return dict(self._tasks)

    # ----------------------------------------------------------------- save

    def save_task(self, task_id: str, serial: bool = True, incremental: bool = True):
        """Run one save round for a task; returns the SaveHandle.

        When ``incremental`` and a previous round has landed, only the
        keys the store dirtied since that round are shipped, as a
        :class:`~repro.state.shard.DeltaShard` round appended to the
        state's version chain. The manager falls back to a full save on
        its own when the chain needs compaction or lost replicas, so the
        full partition is always registered first.
        """
        task = self._get(task_id)
        store = task.store
        dirty = store.dirty_keys()
        deleted = store.deleted_keys()
        snapshot = store.snapshot(self.sim.now)
        # Changes after this snapshot belong to the next round.
        store.mark_clean()
        shards = partition_snapshot(snapshot, task.num_shards)
        if not task.registered:
            self.manager.register(task.node, shards, task.num_replicas)
            task.registered = True
        else:
            self.manager.refresh_shards(store.name, shards)
        task.save_rounds += 1

        chain = self.manager.states[store.name].chain
        parent = task.last_snapshot
        if (
            incremental
            and parent is not None
            and chain is not None
            and chain.links
            and chain.tip_version == parent.version
        ):
            changed = {key: snapshot.get(key) for key in dirty if key in snapshot}
            deletions = [key for key in deleted if key in parent]
            delta_shards = partition_delta(
                store.name,
                changed,
                deletions,
                task.num_shards,
                version=snapshot.version,
                parent_version=parent.version,
                chain_link=chain.length,
            )
            handle = self.manager.save_delta(store.name, delta_shards, serial=serial)
        else:
            handle = self.manager.save(store.name, serial=serial)

        def landed(_result) -> None:
            task.last_snapshot = snapshot

        handle.on_done(landed)
        return handle

    def save_all(self, serial: bool = True, incremental: bool = True):
        """Save every protected task; returns the handles."""
        return [
            self.save_task(task_id, serial=serial, incremental=incremental)
            for task_id in sorted(self._tasks)
        ]

    # -------------------------------------------------------------- recovery

    def recover_task(
        self,
        task_id: str,
        replacement: Optional[DhtNode] = None,
        mechanism: Optional[MechanismImpl] = None,
    ) -> tuple:
        """Recover a task's last-saved state.

        Runs the (timed) recovery through the manager, then reconstructs
        the actual state contents from the surviving shard replicas and
        returns ``(recovered_store, recovery_result)``.
        """
        task = self._get(task_id)
        if not task.registered:
            raise RecoveryError(f"task {task_id!r} was never saved")
        if replacement is None and task.node.alive:
            # Worker process died but the machine survived: the state is
            # recovered back onto the same node.
            replacement = task.node
        handle = self.manager.recover(task.store.name, replacement, mechanism)
        result: RecoveryResult = self.manager.run([handle])[0]
        store = self._rebuild_store(task)
        return store, result

    def rebuild_store(self, task_id: str) -> StateStore:
        """Materialize a protected task's store from the recovered image.

        For callers that drive the recovery themselves (the live-traffic
        driver starts it through the manager and keeps the simulation
        running): once the recovery handle resolves, this rebuilds the
        store from the surviving replicas and rebinds it to the task.
        """
        return self._rebuild_store(self._get(task_id))

    def rollback_task(self, task_id: str, snapshot: StateSnapshot) -> StateStore:
        """Reset a *live* task's store to a checkpoint image.

        Global-rollback recovery: when one task of an operator dies, the
        surviving tasks rewind to the same consistent checkpoint barrier
        before the source replays — otherwise the replay double-counts
        on the survivors. Purely local (no network traffic): the snapshot
        is already in the worker's memory. The rolled-back image becomes
        the parent of the next incremental save round.
        """
        task = self._get(task_id)
        store = StateStore(task.store.name)
        store.restore(snapshot)
        task.store = store
        task.last_snapshot = snapshot
        return store

    def _rebuild_store(self, task: ProtectedTask) -> StateStore:
        snapshot = self.manager.recovered_snapshot(task.store.name)
        store = StateStore(task.store.name)
        store.restore(snapshot)
        task.store = store
        return store

    def _get(self, task_id: str) -> ProtectedTask:
        try:
            return self._tasks[task_id]
        except KeyError:
            raise StateError(f"task {task_id!r} is not protected") from None
