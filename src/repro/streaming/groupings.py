"""Stream groupings: how tuples route to downstream task instances.

The same four groupings Storm applications use: shuffle (round-robin,
deterministic here), fields (hash of selected fields — the partitioning
stateful bolts rely on so one key always hits the same task), global (all
tuples to task 0), and all (replicate to every task).
"""

from __future__ import annotations

import hashlib
from typing import List, Sequence

from repro.errors import TopologyError
from repro.streaming.tuples import StreamTuple


class Grouping:
    """Chooses destination task indexes for one tuple."""

    def choose(self, tuple_: StreamTuple, num_tasks: int) -> List[int]:
        raise NotImplementedError


class ShuffleGrouping(Grouping):
    """Round-robin distribution (deterministic, balanced)."""

    def __init__(self) -> None:
        self._counter = 0

    def choose(self, tuple_: StreamTuple, num_tasks: int) -> List[int]:
        index = self._counter % num_tasks
        self._counter += 1
        return [index]


class FieldsGrouping(Grouping):
    """Hash-partition on selected fields: same key, same task."""

    def __init__(self, fields: Sequence[str]) -> None:
        if not fields:
            raise TopologyError("fields grouping needs at least one field")
        self.fields = tuple(fields)

    def choose(self, tuple_: StreamTuple, num_tasks: int) -> List[int]:
        key = "\x1f".join(repr(tuple_[f]) for f in self.fields)
        digest = hashlib.sha256(key.encode("utf-8")).digest()
        return [int.from_bytes(digest[:8], "big") % num_tasks]


class GlobalGrouping(Grouping):
    """Everything to the lowest task (Storm's global grouping)."""

    def choose(self, tuple_: StreamTuple, num_tasks: int) -> List[int]:
        return [0]


class AllGrouping(Grouping):
    """Replicate every tuple to every task."""

    def choose(self, tuple_: StreamTuple, num_tasks: int) -> List[int]:
        return list(range(num_tasks))
