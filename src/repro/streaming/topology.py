"""Topologies: the DAGs applications are deployed as.

"A stream processing application's query is a directed acyclic graph (DAG)
that specifies the dataflow, Q = (V, E)" (Sec. 3.1). The builder mirrors
Storm's ``TopologyBuilder``: add spouts, add bolts with groupings on their
upstream components, then build — which validates acyclicity and computes
a topological order for deterministic execution.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.errors import TopologyError
from repro.streaming.component import Bolt, Component, Spout
from repro.streaming.groupings import Grouping, ShuffleGrouping


@dataclass(frozen=True)
class Edge:
    """One dataflow edge: upstream component -> downstream bolt."""

    source: str
    target: str
    grouping: Grouping


@dataclass
class ComponentSpec:
    """A declared component with its parallelism."""

    component_id: str
    component: Component
    parallelism: int


@dataclass
class Topology:
    """A validated, immutable application DAG."""

    name: str
    spouts: Dict[str, ComponentSpec]
    bolts: Dict[str, ComponentSpec]
    edges: List[Edge]
    order: List[str] = field(default_factory=list)

    def spec(self, component_id: str) -> ComponentSpec:
        if component_id in self.spouts:
            return self.spouts[component_id]
        if component_id in self.bolts:
            return self.bolts[component_id]
        raise TopologyError(f"unknown component {component_id!r}")

    def downstream_of(self, component_id: str) -> List[Edge]:
        return [e for e in self.edges if e.source == component_id]

    def upstream_of(self, component_id: str) -> List[Edge]:
        return [e for e in self.edges if e.target == component_id]

    def component_ids(self) -> List[str]:
        return list(self.spouts) + list(self.bolts)


class TopologyBuilder:
    """Assemble and validate a topology."""

    def __init__(self, name: str) -> None:
        if not name:
            raise TopologyError("topology needs a non-empty name")
        self.name = name
        self._spouts: Dict[str, ComponentSpec] = {}
        self._bolts: Dict[str, ComponentSpec] = {}
        self._edges: List[Edge] = []

    def set_spout(self, component_id: str, spout: Spout, parallelism: int = 1) -> "TopologyBuilder":
        self._check_fresh(component_id)
        if not isinstance(spout, Spout):
            raise TopologyError(f"{component_id!r} is not a Spout")
        self._check_parallelism(parallelism)
        self._spouts[component_id] = ComponentSpec(component_id, spout, parallelism)
        return self

    def set_bolt(
        self,
        component_id: str,
        bolt: Bolt,
        upstream: Sequence[Tuple[str, Grouping]],
        parallelism: int = 1,
    ) -> "TopologyBuilder":
        """Add a bolt subscribed to one or more upstream components.

        ``upstream`` is a list of (component_id, grouping) pairs; pass a
        bare component id to get a shuffle grouping.
        """
        self._check_fresh(component_id)
        if not isinstance(bolt, Bolt):
            raise TopologyError(f"{component_id!r} is not a Bolt")
        self._check_parallelism(parallelism)
        if not upstream:
            raise TopologyError(f"bolt {component_id!r} has no upstream components")
        self._bolts[component_id] = ComponentSpec(component_id, bolt, parallelism)
        for item in upstream:
            if isinstance(item, str):
                source, grouping = item, ShuffleGrouping()
            else:
                source, grouping = item
            self._edges.append(Edge(source, component_id, grouping))
        return self

    def build(self) -> Topology:
        """Validate and freeze the topology."""
        known = set(self._spouts) | set(self._bolts)
        for edge in self._edges:
            if edge.source not in known:
                raise TopologyError(f"edge references unknown component {edge.source!r}")
            if edge.source in self._bolts and edge.source == edge.target:
                raise TopologyError(f"self-loop on {edge.source!r}")
        if not self._spouts:
            raise TopologyError(f"topology {self.name!r} has no spouts")
        order = self._topological_order(known)
        return Topology(
            name=self.name,
            spouts=dict(self._spouts),
            bolts=dict(self._bolts),
            edges=list(self._edges),
            order=order,
        )

    def _topological_order(self, known: set) -> List[str]:
        indegree = {cid: 0 for cid in known}
        for edge in self._edges:
            indegree[edge.target] += 1
        ready = sorted(cid for cid, deg in indegree.items() if deg == 0)
        for spout_id in self._spouts:
            if indegree[spout_id] != 0:
                raise TopologyError(f"spout {spout_id!r} cannot have upstream edges")
        order: List[str] = []
        queue = list(ready)
        while queue:
            current = queue.pop(0)
            order.append(current)
            for edge in self._edges:
                if edge.source == current:
                    indegree[edge.target] -= 1
                    if indegree[edge.target] == 0:
                        queue.append(edge.target)
        if len(order) != len(known):
            cyclic = sorted(known - set(order))
            raise TopologyError(f"topology {self.name!r} has a cycle through {cyclic}")
        return order

    def _check_fresh(self, component_id: str) -> None:
        if not component_id:
            raise TopologyError("component id must be non-empty")
        if component_id in self._spouts or component_id in self._bolts:
            raise TopologyError(f"duplicate component id {component_id!r}")

    @staticmethod
    def _check_parallelism(parallelism: int) -> None:
        if parallelism < 1:
            raise TopologyError("parallelism must be at least 1")
