"""Small statistics helpers used by experiments and reports.

Implemented without numpy so the core library stays dependency-free; the
benchmark layer may still use numpy for heavier analysis.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean; raises on empty input."""
    if not values:
        raise ValueError("mean of empty sequence")
    return sum(values) / len(values)


def median(values: Sequence[float]) -> float:
    """Median; raises on empty input."""
    return percentile(values, 50.0)


def percentile(values: Sequence[float], pct: float) -> float:
    """Linear-interpolated percentile, ``pct`` in [0, 100].

    Edge cases are pinned down explicitly: an empty sequence raises
    ``ValueError`` (there is no value to return), a single element is
    every percentile of itself, ``pct=0``/``pct=100`` return the exact
    minimum/maximum with no interpolation arithmetic, and anything
    outside [0, 100] (including NaN) raises.
    """
    if not values:
        raise ValueError("percentile of empty sequence")
    if math.isnan(pct) or not 0.0 <= pct <= 100.0:
        raise ValueError(f"percentile out of range: {pct}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    if pct == 0.0:
        return ordered[0]
    if pct == 100.0:
        return ordered[-1]
    rank = (pct / 100.0) * (len(ordered) - 1)
    low = math.floor(rank)
    high = math.ceil(rank)
    if low == high:
        return ordered[low]
    frac = rank - low
    interpolated = ordered[low] * (1 - frac) + ordered[high] * frac
    # Clamp away float rounding drift so the result stays within the
    # bracketing sample values.
    return min(max(interpolated, ordered[low]), ordered[high])


def percentiles(
    values: Sequence[float], pcts: Sequence[float]
) -> Dict[float, float]:
    """Several percentiles of one sample, sorting it only once.

    The latency-histogram fast path: ``percentiles(lat, (50, 95, 99,
    99.9))`` walks the sorted sample once per requested point instead of
    re-sorting per call. Same edge-case contract as :func:`percentile`.
    """
    if not values:
        raise ValueError("percentiles of empty sequence")
    ordered = sorted(values)
    out: Dict[float, float] = {}
    n = len(ordered)
    for pct in pcts:
        if math.isnan(pct) or not 0.0 <= pct <= 100.0:
            raise ValueError(f"percentile out of range: {pct}")
        if n == 1 or pct == 0.0:
            out[pct] = ordered[0]
            continue
        if pct == 100.0:
            out[pct] = ordered[-1]
            continue
        rank = (pct / 100.0) * (n - 1)
        low = math.floor(rank)
        high = math.ceil(rank)
        if low == high:
            out[pct] = ordered[low]
            continue
        frac = rank - low
        interpolated = ordered[low] * (1 - frac) + ordered[high] * frac
        out[pct] = min(max(interpolated, ordered[low]), ordered[high])
    return out


def stdev(values: Sequence[float]) -> float:
    """Population standard deviation; 0.0 for a single sample."""
    if not values:
        raise ValueError("stdev of empty sequence")
    mu = mean(values)
    return math.sqrt(sum((v - mu) ** 2 for v in values) / len(values))


@dataclass(frozen=True)
class Summary:
    """Five-number-style summary of a sample."""

    count: int
    mean: float
    stdev: float
    minimum: float
    p50: float
    p95: float
    p99: float
    maximum: float

    def as_dict(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "mean": self.mean,
            "stdev": self.stdev,
            "min": self.minimum,
            "p50": self.p50,
            "p95": self.p95,
            "p99": self.p99,
            "max": self.maximum,
        }


def summarize(values: Iterable[float]) -> Summary:
    """Build a :class:`Summary` from any iterable of numbers."""
    data: List[float] = list(values)
    if not data:
        raise ValueError("summarize of empty sequence")
    return Summary(
        count=len(data),
        mean=mean(data),
        stdev=stdev(data),
        minimum=min(data),
        p50=percentile(data, 50),
        p95=percentile(data, 95),
        p99=percentile(data, 99),
        maximum=max(data),
    )


def normal_percentile_points(values: Sequence[float]) -> List[tuple]:
    """(value, cumulative probability) pairs for a normal-probability plot.

    Mirrors Fig. 11c: sort the sample and pair each value with its plotting
    position ``(i - 0.5) / n``.
    """
    ordered = sorted(values)
    n = len(ordered)
    if n == 0:
        raise ValueError("empty sample")
    return [(v, (i + 0.5) / n) for i, v in enumerate(ordered)]


def coefficient_of_variation(values: Sequence[float]) -> float:
    """stdev/mean — the load-imbalance metric used in the Fig. 11 analysis."""
    mu = mean(values)
    if mu == 0:
        raise ValueError("coefficient of variation undefined for zero mean")
    return stdev(values) / mu
