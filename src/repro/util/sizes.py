"""Byte-size constants, formatting, and parsing helpers."""

from __future__ import annotations

import re

KB = 1024
MB = 1024 * KB
GB = 1024 * MB

_SIZE_RE = re.compile(r"^\s*([0-9]+(?:\.[0-9]+)?)\s*(B|KB|MB|GB|TB)?\s*$", re.IGNORECASE)
_UNITS = {"B": 1, "KB": KB, "MB": MB, "GB": GB, "TB": 1024 * GB}


def format_bytes(num_bytes: float) -> str:
    """Render a byte count with a human unit, e.g. ``format_bytes(2 * MB)`` -> '2.0MB'."""
    if num_bytes < 0:
        raise ValueError("byte count must be non-negative")
    for unit in ("B", "KB", "MB", "GB"):
        if num_bytes < 1024 or unit == "GB":
            return f"{num_bytes:.1f}{unit}"
        num_bytes /= 1024.0
    raise AssertionError("unreachable")


def parse_size(text: str) -> int:
    """Parse '64MB' / '512 KB' / '1024' into a byte count."""
    match = _SIZE_RE.match(text)
    if not match:
        raise ValueError(f"unparseable size: {text!r}")
    magnitude = float(match.group(1))
    unit = (match.group(2) or "B").upper()
    return int(magnitude * _UNITS[unit])


def mbit_per_s(megabits: float) -> float:
    """Convert a link speed in megabits/second into bytes/second."""
    if megabits < 0:
        raise ValueError("bandwidth must be non-negative")
    return megabits * 1_000_000 / 8.0


def gbit_per_s(gigabits: float) -> float:
    """Convert a link speed in gigabits/second into bytes/second."""
    return mbit_per_s(gigabits * 1000)
