"""Node and object identifiers in the Pastry-style 128-bit circular id space.

A :class:`NodeId` wraps an integer in ``[0, 2**128)``. Ids are compared and
routed by digits in base ``2**b`` (Pastry's configuration parameter ``b``,
default 4, i.e. hexadecimal digits). The helpers here are pure functions so
the DHT layer stays deterministic given a seeded ``random.Random``.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass
from functools import total_ordering
from typing import Iterable

ID_BITS = 128
ID_SPACE = 1 << ID_BITS


@total_ordering
@dataclass(frozen=True)
class NodeId:
    """An identifier on the 128-bit ring.

    Instances are immutable, hashable, ordered by numeric value, and carry
    helpers for ring distance and prefix comparison used by Pastry routing.
    """

    value: int

    def __post_init__(self) -> None:
        if not 0 <= self.value < ID_SPACE:
            raise ValueError(f"NodeId out of range: {self.value!r}")

    def __int__(self) -> int:
        return self.value

    def __lt__(self, other: "NodeId") -> bool:
        return self.value < other.value

    def __repr__(self) -> str:
        return f"NodeId({self.hex()[:8]}..)"

    def hex(self) -> str:
        """The full 32-hex-digit representation, zero padded."""
        return f"{self.value:032x}"

    def digits(self, bits_per_digit: int = 4) -> tuple:
        """The id split into base-``2**bits_per_digit`` digits, MSB first.

        Memoized per ``bits_per_digit``: routing-table wiring touches the
        digit tuple of every node many times per overlay build.
        """
        cache = self.__dict__.get("_digits_cache")
        if cache is None:
            cache = {}
            object.__setattr__(self, "_digits_cache", cache)
        found = cache.get(bits_per_digit)
        if found is None:
            if ID_BITS % bits_per_digit:
                raise ValueError("bits_per_digit must divide 128")
            count = ID_BITS // bits_per_digit
            mask = (1 << bits_per_digit) - 1
            value = self.value
            found = tuple(
                (value >> (bits_per_digit * (count - 1 - i))) & mask
                for i in range(count)
            )
            cache[bits_per_digit] = found
        return found

    def digit(self, index: int, bits_per_digit: int = 4) -> int:
        """The ``index``-th (MSB-first) base-``2**b`` digit, without
        materializing the whole tuple."""
        if ID_BITS % bits_per_digit:
            raise ValueError("bits_per_digit must divide 128")
        count = ID_BITS // bits_per_digit
        shift = bits_per_digit * (count - 1 - index)
        return (self.value >> shift) & ((1 << bits_per_digit) - 1)

    def shared_prefix_length(self, other: "NodeId", bits_per_digit: int = 4) -> int:
        """Number of leading base-``2**b`` digits shared with ``other``.

        Computed from the xor's bit length: the leading equal *bits* are
        ``ID_BITS - (a ^ b).bit_length()``, and whole shared digits are
        that divided by the digit width.
        """
        if ID_BITS % bits_per_digit:
            raise ValueError("bits_per_digit must divide 128")
        diff = self.value ^ other.value
        if diff == 0:
            return ID_BITS // bits_per_digit
        return (ID_BITS - diff.bit_length()) // bits_per_digit

    def distance(self, other: "NodeId") -> int:
        """Shortest distance around the ring between the two ids."""
        diff = abs(self.value - other.value)
        return min(diff, ID_SPACE - diff)

    def clockwise_distance(self, other: "NodeId") -> int:
        """Distance from ``self`` to ``other`` travelling clockwise."""
        return (other.value - self.value) % ID_SPACE


def node_id_from_bytes(data: bytes) -> NodeId:
    """Derive a NodeId by hashing arbitrary bytes (SHA-1 widened to 128 bits)."""
    digest = hashlib.sha256(data).digest()
    return NodeId(int.from_bytes(digest[:16], "big"))


def node_id_from_name(name: str) -> NodeId:
    """Derive a stable NodeId from a human-readable name."""
    return node_id_from_bytes(name.encode("utf-8"))


def random_node_id(rng: random.Random) -> NodeId:
    """Draw a uniformly random NodeId from a seeded generator."""
    return NodeId(rng.getrandbits(ID_BITS))


def shard_key(app_name: str, state_name: str, shard_index: int, replica: int) -> NodeId:
    """The ring position where a shard replica is stored.

    SR3 scatters shard replicas across the overlay by hashing the
    (application, state, shard, replica) tuple; distinct replicas of the
    same shard land on independent ring positions, which is what gives the
    load-balance property of Fig. 11.
    """
    return node_id_from_name(f"{app_name}/{state_name}/shard-{shard_index}/r{replica}")


def ring_between(low: NodeId, target: NodeId, high: NodeId) -> bool:
    """True when ``target`` lies on the clockwise arc from ``low`` to ``high``.

    The arc is half-open: ``(low, high]``. Used by leaf-set responsibility
    checks. When ``low == high`` the arc is the whole ring.
    """
    if low.value == high.value:
        return True
    return low.clockwise_distance(target) <= low.clockwise_distance(high) and target.value != low.value


def closest_id(target: NodeId, candidates: Iterable[NodeId]) -> NodeId:
    """The candidate numerically closest to ``target`` on the ring."""
    pool = list(candidates)
    if not pool:
        raise ValueError("no candidates supplied")
    return min(pool, key=lambda c: (target.distance(c), c.value))
