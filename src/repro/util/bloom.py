"""A space-efficient Bloom filter.

The paper's click-fraud-detection example (Fig. 1, bottom) keeps its
operator state in a Bloom filter memorizing previously seen IPs/cookies.
This implementation is deterministic (double hashing over SHA-256) and
serializable, so it can be sharded, replicated, and recovered through SR3
like any other state.
"""

from __future__ import annotations

import hashlib
import math
from typing import Iterable, Tuple


class BloomFilter:
    """Classic Bloom filter with double hashing.

    Parameters
    ----------
    capacity:
        Expected number of distinct items.
    error_rate:
        Target false-positive probability at ``capacity`` items.
    """

    def __init__(self, capacity: int, error_rate: float = 0.01) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if not 0.0 < error_rate < 1.0:
            raise ValueError("error_rate must be in (0, 1)")
        self.capacity = capacity
        self.error_rate = error_rate
        self.num_bits = max(8, int(-capacity * math.log(error_rate) / (math.log(2) ** 2)))
        self.num_hashes = max(1, round(self.num_bits / capacity * math.log(2)))
        self._bits = bytearray((self.num_bits + 7) // 8)
        self._count = 0

    def __len__(self) -> int:
        return self._count

    def __contains__(self, item: str) -> bool:
        return all(self._get_bit(pos) for pos in self._positions(item))

    def _positions(self, item: str) -> Iterable[int]:
        h1, h2 = self._hash_pair(item)
        for i in range(self.num_hashes):
            yield (h1 + i * h2) % self.num_bits

    @staticmethod
    def _hash_pair(item: str) -> Tuple[int, int]:
        digest = hashlib.sha256(item.encode("utf-8")).digest()
        return int.from_bytes(digest[:8], "big"), int.from_bytes(digest[8:16], "big") | 1

    def _get_bit(self, pos: int) -> bool:
        return bool(self._bits[pos // 8] & (1 << (pos % 8)))

    def _set_bit(self, pos: int) -> None:
        self._bits[pos // 8] |= 1 << (pos % 8)

    def add(self, item: str) -> bool:
        """Insert ``item``; returns True if it was (probably) already present."""
        present = True
        for pos in self._positions(item):
            if not self._get_bit(pos):
                present = False
                self._set_bit(pos)
        if not present:
            self._count += 1
        return present

    def update(self, items: Iterable[str]) -> None:
        for item in items:
            self.add(item)

    @property
    def fill_ratio(self) -> float:
        """Fraction of bits set; ~0.5 at design capacity."""
        set_bits = sum(bin(byte).count("1") for byte in self._bits)
        return set_bits / self.num_bits

    def to_bytes(self) -> bytes:
        """Serialize to bytes (header + bit array) for SR3 state handling."""
        header = (
            self.capacity.to_bytes(8, "big")
            + int(self.error_rate * 1e9).to_bytes(8, "big")
            + self._count.to_bytes(8, "big")
        )
        return header + bytes(self._bits)

    @classmethod
    def from_bytes(cls, data: bytes) -> "BloomFilter":
        """Inverse of :meth:`to_bytes`."""
        if len(data) < 24:
            raise ValueError("truncated bloom filter payload")
        capacity = int.from_bytes(data[:8], "big")
        error_rate = int.from_bytes(data[8:16], "big") / 1e9
        count = int.from_bytes(data[16:24], "big")
        bloom = cls(capacity, error_rate)
        body = data[24:]
        if len(body) != len(bloom._bits):
            raise ValueError("bloom filter bit-array length mismatch")
        bloom._bits = bytearray(body)
        bloom._count = count
        return bloom

    def merge(self, other: "BloomFilter") -> None:
        """Bitwise-OR union with a filter of identical geometry."""
        if (self.num_bits, self.num_hashes) != (other.num_bits, other.num_hashes):
            raise ValueError("cannot merge bloom filters with different geometry")
        for i, byte in enumerate(other._bits):
            self._bits[i] |= byte
        self._count = max(self._count, other._count)
