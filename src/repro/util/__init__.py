"""Shared utilities: id generation, sizes, statistics, and a Bloom filter."""

from repro.util.ids import NodeId, random_node_id, shard_key
from repro.util.sizes import KB, MB, GB, format_bytes, parse_size
from repro.util.stats import (
    Summary,
    mean,
    median,
    percentile,
    stdev,
    summarize,
)
from repro.util.bloom import BloomFilter

__all__ = [
    "NodeId",
    "random_node_id",
    "shard_key",
    "KB",
    "MB",
    "GB",
    "format_bytes",
    "parse_size",
    "Summary",
    "mean",
    "median",
    "percentile",
    "stdev",
    "summarize",
    "BloomFilter",
]
