"""Experiment harness: regenerates every table and figure of Sec. 5.

Each ``fig*``/``table*`` function in :mod:`repro.bench.experiments` builds
a fresh scenario, runs the corresponding experiment at the paper's
parameters (scaled where noted), and returns an
:class:`~repro.bench.harness.ExperimentResult` whose rows mirror the
figure's series. :mod:`repro.bench.reporting` renders those results as the
text tables recorded in EXPERIMENTS.md.
"""

from repro.bench.harness import ExperimentResult, Scenario, build_scenario
from repro.bench.reporting import format_result, render_markdown

__all__ = [
    "ExperimentResult",
    "Scenario",
    "build_scenario",
    "format_result",
    "render_markdown",
]
