"""One function per table/figure of the paper's evaluation (Sec. 5).

Every function is deterministic given its seed and returns an
:class:`~repro.bench.harness.ExperimentResult`. Default parameters follow
the paper; several accept scaled-down sizes so the pytest benchmarks run
in seconds while ``scripts``-level runs regenerate the full figures.
"""

from __future__ import annotations

import random
from typing import Dict, List, Sequence, Tuple

from repro.bench.harness import (
    ExperimentResult,
    Scenario,
    build_scenario,
    default_shard_count,
    saved_state,
    timed_recovery,
)
from repro.dht.maintenance import MaintenanceConfig, measure_maintenance
from repro.dht.overlay import Overlay
from repro.errors import BenchmarkError
from repro.recovery.baselines.fp4s import Fp4sBaseline, Fp4sConfig
from repro.recovery.baselines.lineage import LineageBaseline, LineageConfig
from repro.recovery.baselines.replication import ReplicationBaseline
from repro.recovery.line import LineRecovery
from repro.recovery.model import run_handles
from repro.recovery.selection import (
    Mechanism,
    SelectionInputs,
    select_mechanism,
)
from repro.recovery.star import StarRecovery
from repro.recovery.tree import TreeRecovery
from repro.sim.kernel import Simulator
from repro.sim.network import Network
from repro.sim.resources import sample_grid
from repro.state.partitioner import partition_synthetic, replicate
from repro.state.placement import HashPlacement
from repro.state.version import StateVersion
from repro.util.sizes import MB
from repro.util.stats import mean, percentile

CONSTRAINED_MBIT = 100.0
DEFAULT_SIZES_MB = (8, 16, 32, 64, 128)


def _mechanisms(size_bytes: float) -> Dict[str, object]:
    """The fixed mechanism configurations used across Fig. 8."""
    return {
        "star": StarRecovery(fanout_bits=2),
        "line": LineRecovery(path_length=8),
        "tree": TreeRecovery(fanout_bits=1, sub_shards=8),
    }


def _checkpointing_recovery_time(scenario: Scenario, size_bytes: float) -> float:
    upstream = scenario.overlay.nodes[1]
    replacement = scenario.overlay.nodes[2]
    handle = scenario.checkpointing.recover(upstream, replacement, size_bytes)
    return run_handles(scenario.sim, [handle])[0].duration


# --------------------------------------------------------------------- Fig. 8


def _fig8_recovery(
    experiment_id: str,
    description: str,
    constrained: bool,
    sizes_mb: Sequence[int],
    seed: int,
) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id,
        description,
        columns=["state_mb", "checkpointing_s", "star_s", "line_s", "tree_s"],
    )
    link = CONSTRAINED_MBIT if constrained else None
    for size_mb in sizes_mb:
        size = size_mb * MB
        times: Dict[str, float] = {}
        for name, mechanism in _mechanisms(size).items():
            scenario = build_scenario(
                num_nodes=64, seed=seed, uplink_mbit=link, downlink_mbit=link
            )
            saved_state(scenario, "app/state", size)
            times[name] = timed_recovery(scenario, mechanism, "app/state").duration
        scenario = build_scenario(
            num_nodes=64, seed=seed, uplink_mbit=link, downlink_mbit=link
        )
        times["checkpointing"] = _checkpointing_recovery_time(scenario, size)
        result.add_row(
            state_mb=size_mb,
            checkpointing_s=times["checkpointing"],
            star_s=times["star"],
            line_s=times["line"],
            tree_s=times["tree"],
        )
    return result


def fig8a_recovery_no_constraint(
    sizes_mb: Sequence[int] = DEFAULT_SIZES_MB, seed: int = 0
) -> ExperimentResult:
    """Fig. 8a: recovery time vs state size, unconstrained GbE links."""
    return _fig8_recovery(
        "fig8a",
        "State recovery time vs state size (no bandwidth constraint)",
        constrained=False,
        sizes_mb=sizes_mb,
        seed=seed,
    )


def fig8b_recovery_bw_constraint(
    sizes_mb: Sequence[int] = DEFAULT_SIZES_MB, seed: int = 0
) -> ExperimentResult:
    """Fig. 8b: recovery time vs state size, 100 Mb/s per-server links."""
    return _fig8_recovery(
        "fig8b",
        "State recovery time vs state size (100 Mb/s upload constraint)",
        constrained=True,
        sizes_mb=sizes_mb,
        seed=seed,
    )


def fig8c_save_time(
    sizes_mb: Sequence[int] = DEFAULT_SIZES_MB, seed: int = 0
) -> ExperimentResult:
    """Fig. 8c: state save time vs state size (serial leaf-set writes)."""
    result = ExperimentResult(
        "fig8c",
        "State save time vs state size",
        columns=["state_mb", "checkpointing_s", "sr3_s"],
    )
    for size_mb in sizes_mb:
        size = size_mb * MB
        scenario = build_scenario(num_nodes=64, seed=seed)
        _, save_result = saved_state(scenario, "app/state", size)
        scenario2 = build_scenario(num_nodes=64, seed=seed)
        handle = scenario2.checkpointing.save(scenario2.overlay.nodes[0], size)
        scenario2.sim.run_until_idle()
        result.add_row(
            state_mb=size_mb,
            checkpointing_s=handle.result.duration,
            sr3_s=save_result.duration,
        )
    return result


# --------------------------------------------------------------------- Fig. 9


def fig9a_star_fanout(
    fanout_bits: Sequence[int] = (1, 2, 3, 4),
    sizes_mb: Sequence[int] = (8, 16, 32),
    seed: int = 0,
) -> ExperimentResult:
    """Fig. 9a: star recovery vs fan-out bit (expected ~flat)."""
    result = ExperimentResult(
        "fig9a",
        "Star-structured recovery time vs star fan-out bit",
        columns=["fanout_bit", "state_mb", "recovery_s"],
    )
    for size_mb in sizes_mb:
        for bits in fanout_bits:
            scenario = build_scenario(num_nodes=64, seed=seed)
            saved_state(scenario, "app/state", size_mb * MB)
            duration = timed_recovery(
                scenario, StarRecovery(fanout_bits=bits), "app/state"
            ).duration
            result.add_row(fanout_bit=bits, state_mb=size_mb, recovery_s=duration)
    return result


def fig9b_line_path_length(
    path_lengths: Sequence[int] = (4, 8, 16, 32, 64),
    sizes_mb: Sequence[int] = (8, 16, 32),
    seed: int = 0,
) -> ExperimentResult:
    """Fig. 9b: line recovery vs recovery path length (grows with length)."""
    result = ExperimentResult(
        "fig9b",
        "Line-structured recovery time vs path length",
        columns=["path_length", "state_mb", "recovery_s"],
    )
    for size_mb in sizes_mb:
        for length in path_lengths:
            scenario = build_scenario(
                num_nodes=max(128, 2 * length), seed=seed, placement="hash"
            )
            saved_state(
                scenario,
                "app/state",
                size_mb * MB,
                num_shards=max(length, default_shard_count(size_mb * MB)),
            )
            duration = timed_recovery(
                scenario, LineRecovery(path_length=length), "app/state"
            ).duration
            result.add_row(path_length=length, state_mb=size_mb, recovery_s=duration)
    return result


def fig9c_tree_branch_depth(
    depths: Sequence[int] = (4, 8, 16, 32, 64),
    sizes_mb: Sequence[int] = (16, 32),
    seed: int = 0,
) -> ExperimentResult:
    """Fig. 9c: tree recovery vs branch depth (grows with depth)."""
    result = ExperimentResult(
        "fig9c",
        "Tree-structured recovery time vs branch depth",
        columns=["branch_depth", "state_mb", "recovery_s"],
    )
    for size_mb in sizes_mb:
        for depth in depths:
            scenario = build_scenario(
                num_nodes=max(256, 3 * depth), seed=seed, placement="hash"
            )
            saved_state(scenario, "app/state", size_mb * MB, num_shards=4)
            duration = timed_recovery(
                scenario,
                TreeRecovery(fanout_bits=1, branch_depth=depth, sub_shards=8),
                "app/state",
            ).duration
            result.add_row(branch_depth=depth, state_mb=size_mb, recovery_s=duration)
    return result


def fig9d_tree_fanout(
    fanout_bits: Sequence[int] = (1, 2, 3, 4),
    sizes_mb: Sequence[int] = (64, 128),
    seed: int = 0,
) -> ExperimentResult:
    """Fig. 9d: tree recovery vs tree fan-out (falls as fan-out grows)."""
    result = ExperimentResult(
        "fig9d",
        "Tree-structured recovery time vs tree fan-out bit",
        columns=["fanout_bit", "state_mb", "recovery_s"],
    )
    for size_mb in sizes_mb:
        for bits in fanout_bits:
            scenario = build_scenario(num_nodes=256, seed=seed, placement="hash")
            saved_state(scenario, "app/state", size_mb * MB, num_shards=8)
            duration = timed_recovery(
                scenario,
                TreeRecovery(fanout_bits=bits, sub_shards=32),
                "app/state",
            ).duration
            result.add_row(fanout_bit=bits, state_mb=size_mb, recovery_s=duration)
    return result


# -------------------------------------------------------------------- Fig. 10


def fig10_simultaneous_failures(
    mechanism_name: str,
    failure_counts: Sequence[int] = (0, 10, 20, 30, 40),
    replicas: Sequence[int] = (2, 3),
    state_mb: int = 64,
    seed: int = 0,
) -> ExperimentResult:
    """Fig. 10: recovery time vs number of simultaneous shard failures.

    "To cause simultaneous failures, we deliberately remove some shards of
    application's state in some nodes" — each failure drops one stored
    shard replica (never the last copy of a shard).
    """
    factories = {
        "star": lambda: StarRecovery(fanout_bits=2),
        "line": lambda: LineRecovery(path_length=8),
        "tree": lambda: TreeRecovery(fanout_bits=1, sub_shards=8),
    }
    if mechanism_name not in factories:
        raise BenchmarkError(f"unknown mechanism {mechanism_name!r}")
    result = ExperimentResult(
        f"fig10_{mechanism_name}",
        f"{mechanism_name}-structured recovery time vs simultaneous shard failures",
        columns=["failures", "replicas", "recovery_s"],
    )
    # Enough shards that dropping the requested number of replicas never
    # erases a shard outright (each shard keeps >= 1 surviving copy).
    num_shards = max(32, max(failure_counts) + 8)
    for num_replicas in replicas:
        for failures in failure_counts:
            scenario = build_scenario(num_nodes=128, seed=seed, placement="hash")
            registered, _ = saved_state(
                scenario,
                "app/state",
                state_mb * MB,
                num_shards=num_shards,
                num_replicas=num_replicas,
            )
            _drop_replicas(scenario, registered, failures, seed + failures)
            duration = timed_recovery(
                scenario, factories[mechanism_name](), "app/state"
            ).duration
            result.add_row(
                failures=failures, replicas=num_replicas, recovery_s=duration
            )
    return result


def _drop_replicas(scenario: Scenario, registered, count: int, seed: int) -> None:
    """Drop ``count`` stored replicas, never erasing a shard entirely."""
    rng = random.Random(seed)
    plan = registered.plan
    droppable = list(plan.placements)
    rng.shuffle(droppable)
    dropped = 0
    for placed in droppable:
        if dropped == count:
            break
        survivors = plan.providers_for(placed.replica.shard.index)
        if len(survivors) <= 1:
            continue
        if placed.node.drop_shard(placed.replica.key):
            dropped += 1
    if dropped < count:
        raise BenchmarkError(
            f"could only drop {dropped} of {count} replicas without losing a shard"
        )


# -------------------------------------------------------------------- Fig. 11


def fig11_load_balance(
    num_apps: int,
    num_nodes: int = 5000,
    state_mb: int = 32,
    shard_kb: int = 512,
    num_replicas: int = 2,
    seed: int = 0,
) -> ExperimentResult:
    """Fig. 11: distribution of shard replicas across the overlay.

    Paper parameters: 5,000 Pastry nodes, 32 MB state per application,
    512 KB shards, replication factor two; 500 and 1,000 applications.
    """
    sim = Simulator()
    network = Network(sim)
    overlay = Overlay(sim, network, rng=random.Random(seed))
    overlay.build(num_nodes)
    placement = HashPlacement()
    num_shards = max(1, (state_mb * MB) // (shard_kb * 1024))
    for app in range(num_apps):
        shards = partition_synthetic(
            f"app-{app}/state", state_mb * MB, num_shards, StateVersion(0.0, 1)
        )
        plan = placement.place(None, replicate(shards, num_replicas), overlay)
        plan.store_all()
    counts = [node.stored_shard_count() for node in overlay.nodes]
    result = ExperimentResult(
        f"fig11_{num_apps}apps",
        f"Shard replicas per node: {num_apps} apps on {num_nodes} nodes",
        columns=["metric", "value"],
        extra={"counts": counts},
    )
    below_50 = sum(1 for c in counts if c < 50) / len(counts)
    below_100 = sum(1 for c in counts if c < 100) / len(counts)
    for metric, value in (
        ("nodes", len(counts)),
        ("apps", num_apps),
        ("mean_shards_per_node", mean(counts)),
        ("p50", percentile(counts, 50)),
        ("p95", percentile(counts, 95)),
        ("p99", percentile(counts, 99)),
        ("max", max(counts)),
        ("fraction_below_50_shards", below_50),
        ("fraction_below_100_shards", below_100),
    ):
        result.add_row(metric=metric, value=value)
    return result


# -------------------------------------------------------------------- Fig. 12


def _overhead_scenario(approach: str, seed: int, state_mb: int = 64):
    """Run one recovery and return (scenario, involved node names)."""
    scenario = build_scenario(num_nodes=64, seed=seed)
    size = state_mb * MB
    if approach == "checkpointing":
        upstream = scenario.overlay.nodes[1]
        replacement = scenario.overlay.nodes[2]
        handle = scenario.checkpointing.recover(upstream, replacement, size)
        run_handles(scenario.sim, [handle])
        return scenario, [upstream.name, replacement.name]
    mechanisms = {
        "star": StarRecovery(fanout_bits=2),
        "line": LineRecovery(path_length=8),
        "tree": TreeRecovery(fanout_bits=1, sub_shards=8),
    }
    saved_state(scenario, "app/state", size)
    timed_recovery(scenario, mechanisms[approach], "app/state")
    return scenario, list(scenario.ctx.profiles)


def _overhead_series(metric: str, seed: int, duration_s: float, step_s: float):
    approaches = ("checkpointing", "star", "line", "tree")
    grid = sample_grid(0.0, duration_s, step_s)
    series: Dict[str, List[float]] = {}
    for approach in approaches:
        scenario, involved = _overhead_scenario(approach, seed)
        profiles = [scenario.ctx.profile_for(scenario.overlay.nodes[0])]  # ensure >=1
        profiles = [
            scenario.ctx.profiles[name]
            for name in involved
            if name in scenario.ctx.profiles
        ] or profiles
        per_time = []
        for t in grid:
            if metric == "cpu":
                per_time.append(100.0 * mean([p.cpu_at(t) for p in profiles]))
            else:
                per_time.append(mean([p.memory_at(t) for p in profiles]) / MB)
        series[approach] = per_time
    return grid, series


def fig12a_cpu_overhead(seed: int = 0, duration_s: float = 50.0, step_s: float = 1.0) -> ExperimentResult:
    """Fig. 12a: mean per-node CPU (%) over the recovery window."""
    grid, series = _overhead_series("cpu", seed, duration_s, step_s)
    result = ExperimentResult(
        "fig12a",
        "Per-node CPU usage (%) during recovery",
        columns=["time_s", "checkpointing", "star", "line", "tree"],
    )
    for i, t in enumerate(grid):
        result.add_row(
            time_s=t,
            checkpointing=series["checkpointing"][i],
            star=series["star"][i],
            line=series["line"][i],
            tree=series["tree"][i],
        )
    return result


def fig12b_memory_overhead(seed: int = 0, duration_s: float = 50.0, step_s: float = 1.0) -> ExperimentResult:
    """Fig. 12b: mean per-node memory (MB) over the recovery window."""
    grid, series = _overhead_series("memory", seed, duration_s, step_s)
    result = ExperimentResult(
        "fig12b",
        "Per-node memory usage (MB) during recovery",
        columns=["time_s", "checkpointing", "star", "line", "tree"],
    )
    for i, t in enumerate(grid):
        result.add_row(
            time_s=t,
            checkpointing=series["checkpointing"][i],
            star=series["star"][i],
            line=series["line"][i],
            tree=series["tree"][i],
        )
    return result


def fig12c_network_overhead(
    node_counts: Sequence[int] = (20, 40, 80, 160, 320, 640, 1280),
    duration_s: float = 300.0,
    seed: int = 0,
) -> ExperimentResult:
    """Fig. 12c: overlay maintenance bytes per node per second vs size."""
    result = ExperimentResult(
        "fig12c",
        "Maintenance network overhead per node vs overlay size",
        columns=["num_nodes", "bytes_per_node_per_second"],
    )
    for count in node_counts:
        sim = Simulator()
        network = Network(sim)
        overlay = Overlay(sim, network, rng=random.Random(seed))
        overlay.build(count)
        report = measure_maintenance(overlay, MaintenanceConfig(), duration=duration_s)
        result.add_row(
            num_nodes=count,
            bytes_per_node_per_second=report["bytes_per_node_per_second"],
        )
    return result


# -------------------------------------------------------------------- Table 1


def table1_overview() -> ExperimentResult:
    """Table 1: state management / recovery feature matrix."""
    systems = [
        ("Muppet", "slates", "in-memory", "checkpointing", False, False, "static", "slow"),
        ("Trident", "hashtable", "in-memory", "checkpointing", False, False, "static", "slow"),
        ("Millwheel", "hashtable", "remote storage", "checkpointing", False, False, "static", "slow"),
        ("Dataflow", "hashtable", "remote storage", "checkpointing", False, False, "static", "slow"),
        ("Kafka", "hashtable", "in-memory+on-disk", "checkpointing", False, False, "static", "slow"),
        ("Samza", "hashtable", "in-memory+on-disk", "checkpointing", False, False, "static", "slow"),
        ("Flink", "hashtable", "in-memory+on-disk", "checkpointing", False, False, "static", "slow"),
        ("Flux", "hashtable", "in-memory+on-disk", "replication", False, True, "static", "high cost"),
        ("Borealis", "hashtable", "in-memory+on-disk", "replication", False, True, "static", "high cost"),
        ("Spark Streaming", "RDDs", "in-memory+on-disk", "lineage", False, True, "static", "slow for long lineages"),
        ("SR3", "hashtable", "in-memory", "DHT-based parallel", True, True, "dynamic", "fast, low cost"),
    ]
    result = ExperimentResult(
        "table1",
        "State management and recovery overview",
        columns=[
            "system",
            "data_structure",
            "state_management",
            "recovery_approach",
            "scales_to_large_state",
            "handles_multiple_failures",
            "policy",
            "traits",
        ],
    )
    for row in systems:
        result.add_row(
            system=row[0],
            data_structure=row[1],
            state_management=row[2],
            recovery_approach=row[3],
            scales_to_large_state=row[4],
            handles_multiple_failures=row[5],
            policy=row[6],
            traits=row[7],
        )
    return result


# ------------------------------------------------------------------ Ablations


def ablation_fp4s(
    sizes_mb: Sequence[int] = (32, 64, 128), seed: int = 0
) -> ExperimentResult:
    """Sec. 2.3 ablation: FP4S erasure coding vs SR3 star recovery.

    Checks the two quantified FP4S claims: 62.5% storage increment for a
    16+10 code, and roughly +10 s of coding latency at 128 MB.
    """
    result = ExperimentResult(
        "ablation_fp4s",
        "FP4S erasure recovery vs SR3 star recovery",
        columns=[
            "state_mb",
            "fp4s_recovery_s",
            "star_recovery_s",
            "fp4s_stored_bytes",
            "sr3_stored_bytes",
            "fp4s_storage_overhead",
        ],
    )
    config = Fp4sConfig()
    for size_mb in sizes_mb:
        size = size_mb * MB
        scenario = build_scenario(num_nodes=64, seed=seed)
        fp4s = Fp4sBaseline(scenario.ctx, config)
        owner = scenario.overlay.nodes[0]
        targets = scenario.overlay.sample_nodes(config.num_coded, exclude=[owner])
        save_handle = fp4s.save(owner, targets, size)
        scenario.sim.run_until_idle()
        handle = fp4s.recover(targets, scenario.overlay.nodes[-1], size)
        fp4s_time = run_handles(scenario.sim, [handle])[0].duration
        fp4s_stored = save_handle.result.bytes_transferred

        scenario2 = build_scenario(num_nodes=64, seed=seed)
        _, save_result = saved_state(scenario2, "app/state", size, num_replicas=2)
        star_time = timed_recovery(
            scenario2, StarRecovery(fanout_bits=2), "app/state"
        ).duration
        result.add_row(
            state_mb=size_mb,
            fp4s_recovery_s=fp4s_time,
            star_recovery_s=star_time,
            fp4s_stored_bytes=fp4s_stored,
            sr3_stored_bytes=save_result.bytes_transferred,
            fp4s_storage_overhead=fp4s_stored / size - 1.0,
        )
    return result


def ablation_replication_factor(
    factors: Sequence[int] = (2, 3, 4),
    state_mb: int = 64,
    seed: int = 0,
) -> ExperimentResult:
    """Design ablation: replication factor vs save cost and recovery time."""
    result = ExperimentResult(
        "ablation_replication",
        "Replication factor vs save and recovery cost (star recovery)",
        columns=["replicas", "save_s", "recovery_s", "stored_bytes"],
    )
    for factor in factors:
        scenario = build_scenario(num_nodes=128, seed=seed, placement="hash")
        _, save_result = saved_state(
            scenario, "app/state", state_mb * MB, num_replicas=factor
        )
        duration = timed_recovery(
            scenario, StarRecovery(fanout_bits=2), "app/state"
        ).duration
        result.add_row(
            replicas=factor,
            save_s=save_result.duration,
            recovery_s=duration,
            stored_bytes=save_result.bytes_transferred,
        )
    return result


def ablation_shard_count(
    shard_counts: Sequence[int] = (2, 4, 8, 16, 32),
    state_mb: int = 64,
    seed: int = 0,
) -> ExperimentResult:
    """Design ablation: shard granularity vs star recovery time."""
    result = ExperimentResult(
        "ablation_shards",
        "Shard count vs star recovery time",
        columns=["num_shards", "recovery_s"],
    )
    for count in shard_counts:
        scenario = build_scenario(num_nodes=128, seed=seed, placement="hash")
        saved_state(scenario, "app/state", state_mb * MB, num_shards=count)
        duration = timed_recovery(
            scenario, StarRecovery(fanout_bits=2), "app/state"
        ).duration
        result.add_row(num_shards=count, recovery_s=duration)
    return result


def ablation_selection_validation(
    seed: int = 0,
) -> ExperimentResult:
    """Does the Fig. 7 heuristic pick a (near-)winning mechanism?

    For every (state size, bandwidth) regime, run all three mechanisms,
    record the fastest, and compare with the heuristic's choice.
    """
    result = ExperimentResult(
        "ablation_selection",
        "Selection heuristic choice vs measured fastest mechanism",
        columns=["state_mb", "constrained", "chosen", "fastest", "chosen_s", "fastest_s"],
    )
    for size_mb in (8, 128):
        for constrained in (False, True):
            link = CONSTRAINED_MBIT if constrained else None
            times = {}
            for name, mech in _mechanisms(size_mb * MB).items():
                scenario = build_scenario(
                    num_nodes=64, seed=seed, uplink_mbit=link, downlink_mbit=link
                )
                saved_state(scenario, "app/state", size_mb * MB)
                times[name] = timed_recovery(scenario, mech, "app/state").duration
            chosen = select_mechanism(
                SelectionInputs(
                    state_bytes=size_mb * MB,
                    latency_sensitive=True,
                    bandwidth_constrained=constrained,
                )
            )
            fastest = min(times, key=times.get)
            chosen_name = chosen.value
            result.add_row(
                state_mb=size_mb,
                constrained=constrained,
                chosen=chosen_name,
                fastest=fastest,
                chosen_s=times.get(chosen_name, float("nan")),
                fastest_s=times[fastest],
            )
    return result


def ablation_detection_latency(
    periods: Sequence[float] = (0.25, 0.5, 1.0, 2.0, 4.0),
    state_mb: int = 16,
    seed: int = 0,
) -> ExperimentResult:
    """End-to-end time-to-repair vs heartbeat period.

    Runs the real heartbeat failure detector: a node crashes, leaf-set
    watchers declare it after missed heartbeats, and the declaration
    triggers SR3 recovery. Shorter heartbeat periods detect sooner at the
    price of more maintenance traffic — the trade-off behind the cost
    model's fixed ``detection_delay``.
    """
    from repro.dht.failure_detector import DetectorConfig, FailureDetector

    result = ExperimentResult(
        "ablation_detection",
        "Heartbeat period vs detection latency and total time-to-repair",
        columns=["period_s", "detection_s", "time_to_repair_s", "heartbeat_bytes"],
    )
    from repro.recovery.model import CostModel

    for period in periods:
        # The heartbeat protocol *is* the detection here; zero out the cost
        # model's fixed detection charge to avoid double counting.
        scenario = build_scenario(
            num_nodes=64, seed=seed, cost_model=CostModel(detection_delay=0.0)
        )
        registered, _ = saved_state(scenario, "app/state", state_mb * MB)
        owner = registered.owner
        handles: List = []

        def react(watcher, member, t, owner=owner, scenario=scenario, handles=handles):
            if member.name == owner.name and not handles:
                handles.extend(scenario.manager.on_failures([owner]))

        detector = FailureDetector(
            scenario.overlay,
            DetectorConfig(period=period, suspicion_threshold=3),
            on_failure=react,
        )
        control_before = scenario.network.total_control_bytes
        detector.start()
        crash_time = 5.0
        scenario.sim.schedule_at(
            crash_time, lambda: scenario.overlay.fail_node(owner, repair=False)
        )
        scenario.sim.run(until=crash_time + 120.0)
        detector.stop()
        if not handles or not handles[0].done:
            raise BenchmarkError(f"recovery never triggered at period {period}")
        recovery = handles[0].result
        detected_at = detector.detected_by_anyone(owner)
        result.add_row(
            period_s=period,
            detection_s=detected_at - crash_time,
            time_to_repair_s=recovery.finished_at - crash_time,
            heartbeat_bytes=scenario.network.total_control_bytes - control_before,
        )
    return result


def concurrent_apps_recovery(
    app_counts: Sequence[int] = (1, 4, 16, 64),
    state_mb: int = 16,
    num_nodes: int = 512,
    seed: int = 0,
) -> ExperimentResult:
    """Scalability sweep for Challenge 1: many apps fail at once.

    ``N`` applications' owner nodes crash simultaneously; the manager
    recovers all states in parallel on the shared overlay. A decentralized
    design should keep the *makespan* (time until the last state is back)
    close to a single recovery, because provider sets barely overlap.
    Replication factor three keeps every shard recoverable even when an
    eighth of the overlay fails at once.
    """
    result = ExperimentResult(
        "concurrent_apps",
        "Simultaneous recovery of N applications' states",
        columns=["apps", "makespan_s", "mean_recovery_s"],
    )
    for count in app_counts:
        scenario = build_scenario(num_nodes=num_nodes, seed=seed, placement="hash")
        owners = scenario.overlay.nodes[:count]
        for i, owner in enumerate(owners):
            shards = partition_synthetic(
                f"app-{i}/state", state_mb * MB, 4, StateVersion(0.0, 1)
            )
            scenario.manager.register(owner, shards, 3)
        scenario.manager.save_all()
        scenario.sim.run_until_idle()
        started = scenario.sim.now
        for owner in owners:
            scenario.overlay.fail_node(owner)
        handles = scenario.manager.on_failures(owners)
        results = run_handles(scenario.sim, handles)
        result.add_row(
            apps=count,
            makespan_s=max(r.finished_at for r in results) - started,
            mean_recovery_s=mean([r.duration for r in results]),
        )
    return result


def ablation_speculation(
    slowdowns_mbit: Sequence[float] = (1000.0, 50.0, 10.0, 1.0),
    state_mb: int = 32,
    seed: int = 0,
) -> ExperimentResult:
    """Future-work ablation (Sec. 6): straggler mitigation via speculation.

    One shard's provider is throttled to the given uplink; plain star
    recovery waits for it, while speculative star recovery launches a
    backup fetch from an alternate replica once the watchdog fires.
    """
    from repro.recovery.speculation import SpeculativeStarRecovery
    from repro.util.sizes import mbit_per_s

    result = ExperimentResult(
        "ablation_speculation",
        "Straggler provider uplink vs recovery time, with/without speculation",
        columns=["straggler_mbit", "star_s", "speculative_s", "speculations"],
    )
    for slow in slowdowns_mbit:
        times = {}
        speculations = 0.0
        for name, mechanism in (
            ("star", StarRecovery(fanout_bits=2)),
            ("speculative", SpeculativeStarRecovery()),
        ):
            scenario = build_scenario(
                num_nodes=64, seed=seed, uplink_mbit=1000, downlink_mbit=1000
            )
            registered, _ = saved_state(
                scenario, "app/state", state_mb * MB, num_replicas=2
            )
            straggler = registered.plan.providers_for(0)[0].node
            straggler.host.up_bw = mbit_per_s(slow)
            run = timed_recovery(scenario, mechanism, "app/state")
            times[name] = run.duration
            if name == "speculative":
                speculations = run.detail.get("speculations", 0.0)
        result.add_row(
            straggler_mbit=slow,
            star_s=times["star"],
            speculative_s=times["speculative"],
            speculations=speculations,
        )
    return result


def baseline_matrix(state_mb: int = 64, seed: int = 0) -> ExperimentResult:
    """All five recovery approaches on the same 64 MB failure."""
    size = state_mb * MB
    result = ExperimentResult(
        "baseline_matrix",
        "Recovery latency and cost across all approaches (64 MB state)",
        columns=["approach", "recovery_s", "hardware_or_storage_note"],
    )
    scenario = build_scenario(num_nodes=64, seed=seed)
    saved_state(scenario, "app/state", size)
    star = timed_recovery(scenario, StarRecovery(fanout_bits=2), "app/state").duration
    result.add_row(approach="sr3_star", recovery_s=star, hardware_or_storage_note="2x state stored")

    scenario = build_scenario(num_nodes=64, seed=seed)
    checkpointing = _checkpointing_recovery_time(scenario, size)
    result.add_row(
        approach="checkpointing",
        recovery_s=checkpointing,
        hardware_or_storage_note="remote storage + replay",
    )

    scenario = build_scenario(num_nodes=64, seed=seed)
    replication = ReplicationBaseline(scenario.ctx)
    replication.protect(scenario.overlay.nodes[0], scenario.overlay.nodes[1])
    handle = replication.recover(scenario.overlay.nodes[0], size)
    rep_time = run_handles(scenario.sim, [handle])[0].duration
    result.add_row(
        approach="replication",
        recovery_s=rep_time,
        hardware_or_storage_note="2x hardware (hot standby)",
    )

    scenario = build_scenario(num_nodes=64, seed=seed)
    lineage = LineageBaseline(scenario.ctx, LineageConfig())
    handle = lineage.recover(scenario.overlay.nodes[0], size)
    lin_time = run_handles(scenario.sim, [handle])[0].duration
    result.add_row(
        approach="lineage",
        recovery_s=lin_time,
        hardware_or_storage_note="serial re-execution of lineage",
    )

    scenario = build_scenario(num_nodes=64, seed=seed)
    fp4s = Fp4sBaseline(scenario.ctx)
    targets = scenario.overlay.sample_nodes(26, exclude=[scenario.overlay.nodes[0]])
    fp4s.save(scenario.overlay.nodes[0], targets, size)
    scenario.sim.run_until_idle()
    handle = fp4s.recover(targets, scenario.overlay.nodes[-1], size)
    fp4s_time = run_handles(scenario.sim, [handle])[0].duration
    result.add_row(
        approach="fp4s",
        recovery_s=fp4s_time,
        hardware_or_storage_note="62.5% storage increment",
    )
    return result


# ------------------------------------------------------------ save amplification


def _saveamp_cluster(seed: int, trace_name: str):
    """A word-count LocalCluster wired to a fresh SR3 deployment."""
    from repro.dht.overlay import Overlay as _Overlay
    from repro.obs.tracer import default_tracer
    from repro.recovery.manager import RecoveryManager
    from repro.recovery.model import RecoveryContext
    from repro.streaming.backend import SR3StateBackend
    from repro.streaming.cluster import LocalCluster
    from repro.workloads.wordcount import build_wordcount_topology

    sim = Simulator(tracer=default_tracer(trace_name))
    network = Network(sim)
    overlay = _Overlay(sim, network, rng=random.Random(seed))
    overlay.build(32)
    manager = RecoveryManager(RecoveryContext(sim, network, overlay))
    backend = SR3StateBackend(manager, num_shards=4, num_replicas=2)
    cluster = LocalCluster(
        build_wordcount_topology(num_sentences=4_000, seed=seed), backend=backend
    )
    cluster.protect_stateful_tasks()
    return cluster, backend


def saveamp_wordcount(
    seed: int = 0,
    warmup_sentences: int = 1_000,
    rounds: int = 3,
    round_sentences: int = 25,
) -> ExperimentResult:
    """Save amplification: incremental vs full checkpoint rounds.

    Runs word count twice over the identical sentence stream: one cluster
    rewrites the full counting state every checkpoint, the other ships
    only the keys dirtied since the previous round as delta shards
    appended to each task's version chain. With the Zipf word skew a
    short round touches a small fraction of the vocabulary, so the delta
    rounds shed most of the save traffic; after the last round one task
    is killed in each cluster and recovered, comparing chain-aware
    recovery (base + delta replay) against flat-plan recovery.
    """
    result = ExperimentResult(
        "saveamp",
        "Steady-state save bytes and recovery latency: full vs incremental",
        columns=["round", "mode", "saved_bytes", "chain_len"],
    )
    mean_round_bytes: Dict[str, float] = {}
    recovery_s: Dict[str, float] = {}
    for label, incremental in (("full", False), ("incremental", True)):
        cluster, backend = _saveamp_cluster(seed, f"saveamp-{label}")
        cluster.run(max_emissions=warmup_sentences)
        cluster.checkpoint(incremental=incremental)  # base save round
        round_bytes = []
        for round_no in range(1, rounds + 1):
            cluster.run(max_emissions=round_sentences)
            handles = backend.save_all(incremental=incremental)
            backend.sim.run_until_idle()
            shipped = sum(h.result.bytes_transferred for h in handles)
            chain_len = max(h.result.chain_len for h in handles)
            round_bytes.append(shipped)
            result.add_row(
                round=round_no, mode=label, saved_bytes=shipped, chain_len=chain_len
            )
        mean_round_bytes[label] = mean(round_bytes)
        component_id, index = sorted(cluster.stateful_tasks())[0]
        cluster.kill_task(component_id, index)
        _store, recovery = backend.recover_task(f"{component_id}[{index}]")
        recovery_s[label] = recovery.duration
    if mean_round_bytes["incremental"] <= 0:
        raise BenchmarkError("saveamp: incremental rounds shipped no bytes")
    ratio = mean_round_bytes["incremental"] / mean_round_bytes["full"]
    rec_ratio = recovery_s["incremental"] / recovery_s["full"]
    result.extra["baseline_metrics"] = {
        "saveamp/save_bytes_ratio": ratio,
        "saveamp/recovery_full_s": recovery_s["full"],
        "saveamp/recovery_chain_s": recovery_s["incremental"],
    }
    result.notes = (
        f"steady-state save amplification {1.0 / ratio:.1f}x "
        f"(delta rounds ship {ratio:.1%} of a full rewrite); "
        f"chain recovery at {rec_ratio:.3f}x the flat-plan latency"
    )
    return result


# ----------------------------------------------------------------- paper scale


def _scale_cell(
    num_nodes: int, mech_name: str, state_mb: int, seed: int
) -> Tuple[Dict[str, object], Dict[str, float]]:
    """One scale cell: build the overlay, fail every owner, recover.

    Top level and driven by plain scalars so the parallel sweep runner
    (:mod:`repro.bench.parallel`) can ship cells to spawn-fresh worker
    processes; the cell re-derives everything else deterministically from
    its ``(num_nodes, mechanism)`` key and the seed. Returns the result
    row and the cell's baseline-metric entries.
    """
    import time

    mechanism = _mechanisms(state_mb * MB)[mech_name]
    apps = max(4, num_nodes // 16)
    wall_start = time.perf_counter()
    scenario = build_scenario(
        num_nodes=num_nodes,
        seed=seed,
        uplink_mbit=1000.0,
        downlink_mbit=1000.0,
        placement="hash",
        trace_name=f"scale-{num_nodes}-{mech_name}",
    )
    owners = scenario.overlay.nodes[:apps]
    # The failure wave takes out every owner (n/16 of the ring) at
    # one instant. With hash placement a shard keeps replication
    # independent copies at ring-random nodes, so the chance a
    # shard loses all of them grows with the shard count; at 20k+
    # nodes 3 copies are no longer enough for the wave to be
    # survivable, so the large cells replicate deeper (the
    # smaller, historically gated cells keep replication 3).
    replication = 3 if num_nodes < 20000 else 5
    for i, owner in enumerate(owners):
        shards = partition_synthetic(
            f"app-{i}/state", state_mb * MB, 4, StateVersion(0.0, 1)
        )
        scenario.manager.register(owner, shards, replication)
    scenario.manager.save_all()
    scenario.sim.run_until_idle()
    started = scenario.sim.now
    for owner in owners:
        scenario.overlay.fail_node(owner)
    handles = []
    for i, owner in enumerate(owners):
        registered = scenario.manager.states[f"app-{i}/state"]
        replacement = scenario.overlay.replacement_for(owner)
        handles.append(
            mechanism.start(
                scenario.ctx, registered.plan, replacement, f"app-{i}/state"
            )
        )
    results = run_handles(scenario.sim, handles)
    wall_s = time.perf_counter() - wall_start
    makespan = max(r.finished_at for r in results) - started
    events_per_s = scenario.sim.events_processed / wall_s if wall_s > 0 else 0.0
    row: Dict[str, object] = dict(
        nodes=num_nodes,
        mechanism=mech_name,
        apps=apps,
        makespan_s=makespan,
        wall_s=round(wall_s, 2),
        events_per_s=round(events_per_s),
    )
    extras = {
        f"scale/{num_nodes}/{mech_name}": makespan,
        f"scale/{num_nodes}/{mech_name}/wall_s": round(wall_s, 2),
        f"scale/{num_nodes}/{mech_name}/events_per_s": float(round(events_per_s)),
    }
    return row, extras


def scale_overlay(
    node_counts: Sequence[int] = (512, 1024, 2048, 5000, 20000, 50000),
    state_mb: int = 16,
    seed: int = 0,
    jobs: int = 1,
) -> ExperimentResult:
    """Paper-scale recovery: 512 to 50,000 emulated nodes (Sec. 5.1).

    Each cell builds a fresh overlay of ``n`` nodes on 1 Gb/s links,
    registers ``max(4, n/16)`` applications with 16 MB of state each
    (4 shards, replication 3 — 5 at 20k+ nodes), saves everything, fails
    every owner at one instant, and recovers all states with one
    mechanism. Alongside the simulated makespan — which is deterministic
    and feeds the ``scale/{n}/{mechanism}`` perf-baseline keys — the cell
    records how long the host took to simulate it (``wall_s``) and the
    event-loop throughput (``events_per_s``). The wall-clock numbers are
    what the incremental allocator and kernel fast paths exist for; they
    are kept out of the regression gate because shared runners make them
    noisy.

    With ``jobs > 1`` the independent cells fan out across worker
    processes (:mod:`repro.bench.parallel`); rows, baseline keys, and any
    collected observability artifacts merge back in sweep order, so the
    output is byte-identical to the in-process sweep.
    """
    result = ExperimentResult(
        "scale",
        "Recovery at paper-scale overlay sizes (wall-clock + simulated)",
        columns=["nodes", "mechanism", "apps", "makespan_s", "wall_s", "events_per_s"],
    )
    cells = [
        (num_nodes, mech_name, state_mb, seed)
        for num_nodes in node_counts
        for mech_name in _mechanisms(state_mb * MB)
    ]
    if jobs and jobs > 1:
        from repro.bench.parallel import run_scale_cells

        outputs = run_scale_cells(cells, jobs)
    else:
        outputs = [_scale_cell(*cell) for cell in cells]
    extras: Dict[str, float] = {}
    for row, cell_extras in outputs:
        result.add_row(**row)
        extras.update(cell_extras)
    result.extra["baseline_metrics"] = extras
    result.notes = (
        "simulated makespans are deterministic per seed and gate the "
        "scale/* baseline keys; wall_s / events_per_s are informational"
    )
    return result


def remediate_controller(
    scenario_names: Sequence[str] = ("crash-wave", "rack-outage", "stragglers"),
    mechanism: str = "star",
    seed: int = 0,
) -> ExperimentResult:
    """MTTR of the auto-remediation control plane across chaos scenarios.

    Runs each scenario with a :class:`~repro.control.Controller` owning
    the response (``run_scenario(controller=True)``) and reports how many
    remediations it executed and verified plus the slowest
    detection-to-verified time — the closed loop's MTTR, on the simulated
    clock. ``remediate/<scenario>/mttr_s`` and ``.../actions`` are
    deterministic per seed and feed the perf-regression gate; ``wall_s``
    is informational.
    """
    import time

    from repro.chaos.campaign import run_scenario
    from repro.chaos.scenario import SCENARIOS

    result = ExperimentResult(
        "remediate",
        "Closed-loop auto-remediation across the chaos catalog",
        columns=[
            "scenario",
            "mechanism",
            "status",
            "remediations",
            "mttr_s",
            "wall_s",
        ],
    )
    extras: Dict[str, float] = {}
    for name in scenario_names:
        if name not in SCENARIOS:
            raise BenchmarkError(
                f"unknown chaos scenario {name!r}; known: {sorted(SCENARIOS)}"
            )
        scenario = SCENARIOS[name].with_seed(seed)
        wall_start = time.perf_counter()
        outcome = run_scenario(scenario, mechanism, controller=True)
        wall_s = time.perf_counter() - wall_start
        result.add_row(
            scenario=name,
            mechanism=mechanism,
            status=outcome.status,
            remediations=outcome.remediations,
            mttr_s=round(outcome.remediation_mttr_s, 6),
            wall_s=round(wall_s, 2),
        )
        extras[f"remediate/{name}/mttr_s"] = round(outcome.remediation_mttr_s, 6)
        extras[f"remediate/{name}/actions"] = float(outcome.remediations)
        extras[f"remediate/{name}/wall_s"] = round(wall_s, 2)
    result.extra["baseline_metrics"] = extras
    result.notes = (
        "mttr_s / actions are deterministic per seed and gate the "
        "remediate/* baseline keys; wall_s is informational"
    )
    return result


# ------------------------------------------------------------- live traffic


def live_recovery(
    seed: int = 0,
    duration_s: float = 30.0,
    base_rate: float = 300.0,
    peak_rate: float = 1500.0,
    bulk_state_mb: float = 32.0,
    service_rate: float = 3_000.0,
    num_nodes: int = 16,
    link_mbit: float = 200.0,
) -> ExperimentResult:
    """Recovery under sustained ingest: the user-felt view (``bench live``).

    For each mechanism, plays a flash-crowd rate curve (ramping from
    ``base_rate`` to ``peak_rate`` events/s) against the word-count
    topology, checkpoints at t=5, kills the first count task's owner at
    t=10 — right as the crowd peaks — and lets SR3 recover ``bulk_state_mb``
    of co-located state plus the counting state while the application's
    ingest and shuffle flows keep their max-min share of every link. Each
    cell runs twice: loaded (app flows registered with the allocator) and
    quiescent (same arrivals, no flows); the ratio of recovery makespans
    is the interference cost, gated per mechanism.

    ``live/{mech}/predict_error`` compares the observed loaded makespan
    against :func:`~repro.recovery.selection.predict_recovery_seconds`
    fed the same ``background_load`` fraction; it quantifies how much of
    the contention the closed form misses, and stays informational.
    """
    import time

    from repro.live.driver import LoadDriver, build_live_cell
    from repro.live.rates import FlashCrowd
    from repro.recovery.selection import predict_recovery_seconds
    from repro.util.sizes import mbit_per_s

    bulk_bytes = bulk_state_mb * MB
    kill_at = 10.0
    result = ExperimentResult(
        "live",
        "User-felt recovery under live traffic: latency phases, replay lag, drain",
        columns=[
            "mechanism",
            "load",
            "recovery_s",
            "drain_s",
            "p99_during_s",
            "replay_lag_peak",
        ],
    )
    extras: Dict[str, float] = {}
    for label, mechanism in sorted(_mechanisms(bulk_bytes).items()):
        reports: Dict[str, object] = {}
        wall_s = 0.0
        for load in ("loaded", "quiet"):
            cell = build_live_cell(
                num_nodes=num_nodes,
                seed=seed,
                link_mbit=link_mbit,
                trace_name=f"live-{label}-{load}",
            )
            rate = FlashCrowd(
                base=base_rate,
                peak=peak_rate,
                at=8.0,
                ramp=2.0,
                hold=10.0,
                decay=5.0,
            )
            driver = LoadDriver(
                cell,
                rate,
                duration=duration_s,
                service_rate=service_rate,
                checkpoint_at=(5.0,),
                kill_at=kill_at,
                mechanism=mechanism,
                bulk_state_mb=bulk_state_mb,
                app_load=(load == "loaded"),
            )
            wall_start = time.perf_counter()
            report = driver.run()
            wall_s += time.perf_counter() - wall_start
            reports[load] = report
            if report.recovery_s is None or report.drain_s is None:
                raise BenchmarkError(
                    f"live/{label}/{load}: run never recovered or never drained"
                )
            result.add_row(
                mechanism=label,
                load=load,
                recovery_s=round(report.recovery_s, 6),
                drain_s=round(report.drain_s, 6),
                p99_during_s=round(report.phase("during").p99, 6),
                replay_lag_peak=report.replay_lag_peak,
            )
        loaded = reports["loaded"]
        quiet = reports["quiet"]
        ratio = loaded.recovery_s / quiet.recovery_s
        if ratio <= 1.0:
            raise BenchmarkError(
                f"live/{label}: app-flow interference did not slow recovery "
                f"(loaded {loaded.recovery_s:.3f}s vs quiescent {quiet.recovery_s:.3f}s)"
            )
        # The closed form sees the replacement downlink's contention: its
        # ingest share plus one inbound shuffle flow, at the plateau rate
        # the crowd holds while the state moves.
        per_task = peak_rate * 16_384.0 / 4.0
        background = min(0.95, per_task * 1.5 / mbit_per_s(link_mbit))
        predicted = predict_recovery_seconds(
            label,
            SelectionInputs(state_bytes=bulk_bytes, background_load=background),
            bandwidth=mbit_per_s(link_mbit),
        )
        extras[f"live/{label}/p99_before_s"] = round(loaded.phase("before").p99, 6)
        extras[f"live/{label}/p99_during_s"] = round(loaded.phase("during").p99, 6)
        extras[f"live/{label}/p99_after_s"] = round(loaded.phase("after").p99, 6)
        extras[f"live/{label}/replay_lag_peak"] = float(loaded.replay_lag_peak)
        extras[f"live/{label}/recovery_s"] = round(loaded.recovery_s, 6)
        extras[f"live/{label}/drain_s"] = round(loaded.drain_s, 6)
        extras[f"live/{label}/interference_ratio"] = round(ratio, 6)
        extras[f"live/{label}/wall_s"] = round(wall_s, 2)
        extras[f"live/{label}/predict_error"] = round(
            (loaded.recovery_s - predicted) / predicted, 6
        )
    result.extra["baseline_metrics"] = extras
    result.notes = (
        "loaded vs quiet rows share identical arrivals; the gated "
        "interference_ratio is loaded/quiescent recovery makespan; "
        "wall_s and predict_error stay informational"
    )
    return result


# ------------------------------------------------------------ standby tier


def standby_compare(
    seed: int = 0,
    duration_s: float = 30.0,
    base_rate: float = 300.0,
    peak_rate: float = 1_500.0,
    bulk_state_mb: float = 32.0,
    service_rate: float = 3_000.0,
    num_nodes: int = 16,
    link_mbit: float = 200.0,
) -> ExperimentResult:
    """The hot-standby tier vs the star/line/tree spectrum (``bench standby``).

    Phase one runs the four tiers under the live harness at equal state
    size: same flash crowd, two checkpoint barriers (the second re-warms
    the standby incrementally), kill at t=10. The standby run provisions a
    warm replica after every barrier, so its takeover is an ownership flip
    plus tail replay — ``standby/takeover_vs_tree`` gates that the
    takeover stays under 0.2x the tree makespan, and the steady-state
    bills the other tiers never pay are reported as
    ``standby/steady_overhead_bytes`` (shuffle-bandwidth spent syncing)
    and ``standby/steady_memory_bytes`` (the warm image's footprint).

    Phase two calibrates the closed-form cost model online: five batch
    recoveries at varied sizes feed an
    :class:`~repro.recovery.online.OnlineSelector`, and the gated
    ``standby/calibrated_error`` must land strictly below
    ``standby/static_error`` — the fitted line absorbs the systematic
    contention the closed form ignores. Both serializers round-trip
    through dicts as part of the run (a mismatch fails the experiment).
    """
    import time

    from repro.live.driver import LoadDriver, build_live_cell
    from repro.live.rates import FlashCrowd
    from repro.recovery.online import OnlineSelector
    from repro.recovery.selection import SelectionExplanation, explain_selection
    from repro.recovery.standby import StandbyRecovery

    result = ExperimentResult(
        "standby",
        "Hot-standby takeover vs star/line/tree and online cost calibration",
        columns=["tier", "recovery_s", "drain_s", "p99_during_s"],
    )
    extras: Dict[str, float] = {}
    wall_start = time.perf_counter()

    tiers = dict(_mechanisms(bulk_state_mb * MB))
    tiers["standby"] = StandbyRecovery()
    recovery_times: Dict[str, float] = {}
    for label in sorted(tiers):
        is_standby = label == "standby"
        cell = build_live_cell(
            num_nodes=num_nodes,
            seed=seed,
            link_mbit=link_mbit,
            trace_name=f"standby-{label}",
        )
        rate = FlashCrowd(
            base=base_rate, peak=peak_rate, at=8.0, ramp=2.0, hold=10.0, decay=5.0
        )
        driver = LoadDriver(
            cell,
            rate,
            duration=duration_s,
            service_rate=service_rate,
            checkpoint_at=(5.0, 8.0),
            kill_at=10.0,
            mechanism=tiers[label],
            bulk_state_mb=bulk_state_mb,
            standby=is_standby,
        )
        report = driver.run()
        if report.recovery_s is None or report.drain_s is None:
            raise BenchmarkError(
                f"standby/{label}: run never recovered or never drained"
            )
        recovery_times[label] = report.recovery_s
        result.add_row(
            tier=label,
            recovery_s=round(report.recovery_s, 6),
            drain_s=round(report.drain_s, 6),
            p99_during_s=round(report.phase("during").p99, 6),
        )
        extras[f"standby/{label}/recovery_s"] = round(report.recovery_s, 6)
        if is_standby:
            extras["standby/steady_overhead_bytes"] = round(
                cell.sim.metrics.counter("standby.sync_bytes").total, 3
            )
            extras["standby/steady_memory_bytes"] = round(
                driver.standby_warm_bytes, 3
            )
            if driver.standby_syncs < 2:
                raise BenchmarkError(
                    "standby: expected an incremental re-warm per barrier, "
                    f"got {driver.standby_syncs} sync rounds"
                )

    takeover_ratio = recovery_times["standby"] / recovery_times["tree"]
    if takeover_ratio >= 0.2:
        raise BenchmarkError(
            f"standby takeover is {takeover_ratio:.3f}x the tree makespan at "
            f"{bulk_state_mb:.0f} MB; the warm tier must stay under 0.2x"
        )
    extras["standby/takeover_vs_tree"] = round(takeover_ratio, 6)

    # ---- phase two: online calibration over five observed recoveries.
    selector = OnlineSelector()
    for size_mb in DEFAULT_SIZES_MB:
        size = size_mb * MB
        scenario = build_scenario(
            num_nodes=64, seed=seed, trace_name=f"standby-cal-{size_mb}"
        )
        saved_state(scenario, "app/state", size)
        mechanism = _mechanisms(size)["tree"]
        observed = timed_recovery(scenario, mechanism, "app/state").duration
        explanation = explain_selection(SelectionInputs(state_bytes=size))
        explanation.observed_seconds["tree"] = observed
        restored = SelectionExplanation.from_dict(explanation.to_dict())
        if restored != explanation:
            raise BenchmarkError(
                "SelectionExplanation did not survive a dict round-trip"
            )
        selector.observe_explanation(restored)
    if selector.samples("tree") < 5:
        raise BenchmarkError(
            f"calibration needs >= 5 observed recoveries, got "
            f"{selector.samples('tree')}"
        )
    static_error = selector.static_error("tree")
    calibrated_error = selector.calibrated_error("tree")
    if static_error is None or calibrated_error is None:
        raise BenchmarkError("calibration produced no error estimates")
    if not calibrated_error < static_error:
        raise BenchmarkError(
            f"calibrated error {calibrated_error:.6f} is not strictly below "
            f"static error {static_error:.6f} after "
            f"{selector.samples('tree')} observations"
        )
    if OnlineSelector.from_dict(selector.to_dict()) != selector:
        raise BenchmarkError("OnlineSelector did not survive a dict round-trip")
    extras["standby/static_error"] = round(static_error, 6)
    extras["standby/calibrated_error"] = round(calibrated_error, 6)
    extras["standby/wall_s"] = round(time.perf_counter() - wall_start, 2)

    result.extra["baseline_metrics"] = extras
    result.notes = (
        "takeover_vs_tree gates the warm tier under 0.2x tree at equal "
        "state size; calibrated_error must land strictly below "
        "static_error after five observed recoveries; wall_s stays "
        "informational"
    )
    return result


# ----------------------------------------------------------- SLO telemetry


def run_slo_cell(
    mode: str,
    seed: int = 0,
    duration_s: float = 30.0,
    base_rate: float = 300.0,
    peak_rate: float = 1_500.0,
    service_rate: float = 3_000.0,
    num_nodes: int = 16,
    link_mbit: float = 200.0,
    kill_at: float = 10.0,
):
    """One live cell where the *control plane* must notice the kill.

    ``mode`` picks the sensing path. ``"burn"`` wires a telemetry
    pipeline, an SLO burn-rate engine, and an anomaly detector into the
    controller, with a policy whose only rule maps ``slo-burning`` to
    ``recover-degraded`` — recovery can start *only* from the alert.
    ``"detector"`` wires a heartbeat failure detector with a policy whose
    only rule maps ``owner-lost`` to ``recover`` — recovery can start
    only from a declaration. Both cells play the same flash-crowd
    arrivals, checkpoint at t=5, and kill the first count task's owner at
    ``kill_at``; the driver injects the fault and nothing else.

    Returns a dict with the cell, the :class:`~repro.live.metrics.
    LiveReport`, the controller, and whichever telemetry objects the mode
    wired (``pipeline`` / ``engine`` / ``anomalies`` / ``detector``) —
    the ``bench dashboard`` subcommand renders straight from it.
    """
    from repro.control import (
        ControlConfig,
        Controller,
        ControlPlane,
        PolicyRule,
        PolicyTable,
    )
    from repro.dht.failure_detector import DetectorConfig, FailureDetector
    from repro.live.driver import LoadDriver, build_live_cell
    from repro.live.rates import FlashCrowd
    from repro.obs.anomaly import AnomalyDetector
    from repro.obs.slo import SLO, BurnWindow, SLOEngine
    from repro.obs.timeseries import TelemetryConfig, TelemetryPipeline

    if mode not in ("burn", "detector"):
        raise BenchmarkError(f"unknown slo cell mode {mode!r}")
    cell = build_live_cell(
        num_nodes=num_nodes,
        seed=seed,
        link_mbit=link_mbit,
        trace_name=f"slo-{mode}",
    )
    # Both modes carry a pipeline (the dashboard renders from it); only
    # burn mode wires it into the controller's sensing path.
    pipeline = TelemetryPipeline(cell.sim, TelemetryConfig(interval=0.1))
    engine = anomalies = detector = None
    if mode == "burn":
        engine = SLOEngine(pipeline)
        engine.add(
            SLO(
                name="backlog-drains",
                series="live.backlog",
                objective="le",
                threshold=200.0,
                budget=0.1,
                windows=(
                    BurnWindow(
                        long_s=3.0, short_s=1.0, burn_rate=4.0, severity="critical"
                    ),
                ),
                description="queued tuples stay below 200",
            )
        )
        anomalies = AnomalyDetector(
            pipeline,
            series=("live.throughput",),
            window=32,
            z_threshold=6.0,
            min_points=12,
            cooldown_s=5.0,
        )
        policy = PolicyTable(
            rules=[
                PolicyRule(
                    condition="slo-burning",
                    action="recover-degraded",
                    params=(("mechanism", "star"),),
                )
            ]
        )
        world = ControlPlane(
            sim=cell.sim,
            network=cell.network,
            overlay=cell.overlay,
            manager=cell.manager,
        )
    else:
        detector = FailureDetector(
            cell.overlay, DetectorConfig(period=1.0, suspicion_threshold=3)
        )
        policy = PolicyTable(
            rules=[
                PolicyRule(
                    condition="owner-lost",
                    action="recover",
                    params=(("mechanism", "star"),),
                )
            ]
        )
        world = ControlPlane(
            sim=cell.sim,
            network=cell.network,
            overlay=cell.overlay,
            manager=cell.manager,
            detector=detector,
        )
        detector.start()
    controller = Controller(
        world,
        policy=policy,
        config=ControlConfig(verify_invariants=False),
        slo_engine=engine,
        anomalies=anomalies,
    )
    driver = LoadDriver(
        cell,
        FlashCrowd(
            base=base_rate, peak=peak_rate, at=8.0, ramp=2.0, hold=10.0, decay=5.0
        ),
        duration=duration_s,
        service_rate=service_rate,
        checkpoint_at=(5.0,),
        kill_at=kill_at,
        telemetry=pipeline,
        controller=controller,
    )
    report = driver.run()
    controller.sweep()
    return {
        "mode": mode,
        "cell": cell,
        "report": report,
        "controller": controller,
        "pipeline": pipeline,
        "engine": engine,
        "anomalies": anomalies,
        "detector": detector,
    }


def slo_observability(seed: int = 0) -> ExperimentResult:
    """Burn-rate alerting vs heartbeat detection as the recovery trigger.

    Runs :func:`run_slo_cell` twice — once sensing through the SLO
    burn-rate engine, once through the heartbeat detector — and compares
    time-to-signal and fault-to-recovered MTTR. Alert precision/recall is
    scored against the one injected fault: an alert inside the
    degradation window (kill to drain) is a true positive. All keys but
    ``slo/wall_s`` are deterministic per seed and gate the baseline.
    """
    import time

    result = ExperimentResult(
        "slo",
        "Telemetry-triggered recovery: SLO burn-rate vs heartbeat detection",
        columns=["trigger", "time_to_signal_s", "mttr_s", "alerts", "anomalies"],
    )
    extras: Dict[str, float] = {}
    wall_start = time.perf_counter()
    burn = run_slo_cell("burn", seed=seed)
    det = run_slo_cell("detector", seed=seed)
    wall_s = time.perf_counter() - wall_start

    burn_report = burn["report"]
    engine = burn["engine"]
    if not engine.alerts:
        raise BenchmarkError("slo/burn: no burn-rate alert ever fired")
    if burn_report.recovered_at is None:
        raise BenchmarkError("slo/burn: alert-triggered recovery never landed")
    killed_at = burn_report.killed_at
    time_to_alert = engine.alerts[0].at - killed_at
    mttr_burn = burn_report.recovered_at - killed_at
    # Alerts are scored against the single injected fault: anything fired
    # inside the degradation window (kill to drain) is a true positive.
    window_end = burn_report.drained_at
    if window_end is None:
        window_end = burn_report.recovered_at
    true_positives = sum(
        1 for alert in engine.alerts if killed_at <= alert.at <= window_end
    )
    precision = true_positives / len(engine.alerts)
    recall = 1.0 if true_positives else 0.0
    anomaly_count = len(burn["anomalies"].anomalies)

    det_report = det["report"]
    detector = det["detector"]
    if not detector.detections:
        raise BenchmarkError("slo/detector: the heartbeat protocol never declared")
    if det_report.recovered_at is None:
        raise BenchmarkError("slo/detector: declaration-triggered recovery never landed")
    declared_at = min(t for _, _, t in detector.detections)
    time_to_detect = declared_at - det_report.killed_at
    mttr_detector = det_report.recovered_at - det_report.killed_at

    result.add_row(
        trigger="burn-rate",
        time_to_signal_s=round(time_to_alert, 6),
        mttr_s=round(mttr_burn, 6),
        alerts=len(engine.alerts),
        anomalies=anomaly_count,
    )
    result.add_row(
        trigger="heartbeat",
        time_to_signal_s=round(time_to_detect, 6),
        mttr_s=round(mttr_detector, 6),
        alerts=0,
        anomalies=0,
    )
    extras["slo/time_to_alert_s"] = round(time_to_alert, 6)
    extras["slo/time_to_detect_s"] = round(time_to_detect, 6)
    extras["slo/mttr_burn_s"] = round(mttr_burn, 6)
    extras["slo/mttr_detector_s"] = round(mttr_detector, 6)
    extras["slo/alert_precision"] = round(precision, 6)
    extras["slo/alert_recall"] = round(recall, 6)
    extras["slo/anomalies"] = float(anomaly_count)
    extras["slo/wall_s"] = round(wall_s, 2)
    result.extra["baseline_metrics"] = extras
    result.notes = (
        "both cells inject the same fault; the controller must notice it "
        "through the named trigger alone. All slo/* keys but wall_s are "
        "deterministic per seed and gate the baseline"
    )
    return result
