"""Multiprocess sweep runner: fan independent bench/chaos cells across cores.

Both sweep surfaces of the bench CLI are embarrassingly parallel. A chaos
campaign is scenario × mechanism cells, and the scale experiment is
node-count × mechanism cells; every cell builds its own deployment from its
key and a seed alone, so a worker process reproduces it exactly. ``--jobs N``
on ``bench run`` / ``bench campaign`` routes the sweep through this module.

Determinism contract (see also DESIGN.md):

* **Cell keys.** A cell is ``(scenario, mechanism)`` for campaigns and
  ``(node_count, mechanism)`` for the scale experiment. Workers re-derive
  every random stream from the key — scenario seeds travel by value, and
  the chaos engine already seeds ``Random(f"{scenario}/{mechanism}/{seed}")``
  via SHA-512 of the string, which is process-independent.
* **Merge order.** Results and observability artifacts are merged in the
  serial sweep's submission order (cell-key order), never completion order.
  Collected tracers and metric registries are renumbered with the parent's
  collection indices on adoption, so ``--trace`` / ``--metrics-out`` /
  report artifacts come out byte-identical to the in-process sweep.
* **Spawn isolation.** Workers use the ``spawn`` start method: each is a
  fresh interpreter, so no collector state or module caches leak from the
  parent or between cells, and behaviour matches across platforms.

``--jobs 1`` (the default) never enters this module — the CLI keeps the
plain in-process loops, which the byte-identity tests compare against.
"""

from __future__ import annotations

import multiprocessing
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.obs import registry as _registry
from repro.obs import tracer as _tracer

#: One scale cell's key + inputs: (num_nodes, mechanism, state_mb, seed).
ScaleCell = Tuple[int, str, int, int]


# ------------------------------------------------------------- worker plumbing


def _observability_flags() -> Tuple[bool, bool]:
    """The parent's collection switches, shipped to workers by value."""
    return _tracer.tracing_enabled(), _registry.metrics_collection_enabled()


def _run_cell(
    fn: Callable[[], Any], tracing: bool, metrics: bool
) -> Tuple[Any, List[Dict[str, Any]], List[Dict[str, object]]]:
    """Run one cell with observability collection scoped to it.

    Enables the collection switches the parent had on, runs the cell, and
    exports (then forgets) exactly the tracers/registries the cell
    collected — so the same code is correct in a spawn-fresh worker (where
    the collectors start empty) and when run inline in the parent.
    """
    if tracing:
        _tracer.enable_tracing(True)
    if metrics:
        _registry.enable_metrics_collection(True)
    start_tracers = len(_tracer.collected_tracers()) if tracing else 0
    start_registries = len(_registry.collected_registries()) if metrics else 0
    value = fn()
    traces: List[Dict[str, Any]] = []
    registries: List[Dict[str, object]] = []
    if tracing:
        traces = _tracer.export_collected(start_tracers)
        _tracer.drop_collected(start_tracers)
    if metrics:
        registries = _registry.export_collected_registries(start_registries)
        _registry.drop_collected_registries(start_registries)
    return value, traces, registries


def _adopt_observability(
    traces: Sequence[Dict[str, Any]], registries: Sequence[Dict[str, object]]
) -> None:
    """Adopt one cell's exported artifacts into this process's collectors."""
    for payload in traces:
        _tracer.inject_collected(payload)
    for payload in registries:
        _registry.inject_registry_dump(payload)


def _map_cells(
    worker: Callable[[tuple], Any], payloads: Sequence[tuple], jobs: int
) -> List[Any]:
    """Run every payload through ``worker``, results in submission order.

    ``jobs > 1`` fans across a spawn-context :class:`ProcessPoolExecutor`;
    ``pool.map`` already yields results in submission order regardless of
    completion order, which is what the determinism contract needs.
    """
    jobs = max(1, int(jobs))
    if jobs == 1:
        return [worker(payload) for payload in payloads]
    context = multiprocessing.get_context("spawn")
    workers = min(jobs, max(1, len(payloads)))
    with ProcessPoolExecutor(max_workers=workers, mp_context=context) as pool:
        return list(pool.map(worker, payloads))


# ------------------------------------------------------------- campaign cells


def _campaign_cell_worker(payload: tuple):
    """One campaign cell, importable at top level for spawn workers."""
    scenario_name, seed, mechanism, controller, tracing, metrics = payload
    from repro.chaos.campaign import run_scenario
    from repro.chaos.scenario import SCENARIOS

    def cell():
        scenario = SCENARIOS[scenario_name]
        if seed is not None:
            scenario = scenario.with_seed(seed)
        return run_scenario(scenario, mechanism, controller=controller)

    return _run_cell(cell, tracing, metrics)


def run_campaign_parallel(
    campaign: str,
    jobs: int,
    controller: bool = False,
    seed: Optional[int] = None,
):
    """Sweep a chaos campaign across worker processes.

    Byte-identical to :func:`repro.chaos.run_campaign` for the same
    inputs: cells are fanned out in the serial loop's scenario × mechanism
    order and their outcomes (plus any collected observability artifacts)
    merged back in that order.
    """
    from repro.chaos.campaign import ResilienceReport
    from repro.chaos.scenario import campaign_scenarios

    scenarios = campaign_scenarios(campaign)
    tracing, metrics = _observability_flags()
    payloads = [
        (scenario.name, seed, mechanism, controller, tracing, metrics)
        for scenario in scenarios
        for mechanism in scenario.mechanisms
    ]
    report = ResilienceReport(campaign=campaign)
    for outcome, traces, registries in _map_cells(
        _campaign_cell_worker, payloads, jobs
    ):
        _adopt_observability(traces, registries)
        report.outcomes.append(outcome)
    return report


# ---------------------------------------------------------------- scale cells


def _scale_cell_worker(payload: tuple):
    """One scale-experiment cell, importable at top level for spawn workers."""
    num_nodes, mech_name, state_mb, seed, tracing, metrics = payload
    from repro.bench.experiments import _scale_cell

    def cell():
        return _scale_cell(num_nodes, mech_name, state_mb, seed)

    return _run_cell(cell, tracing, metrics)


def run_scale_cells(
    cells: Sequence[ScaleCell], jobs: int
) -> List[Tuple[Dict[str, object], Dict[str, float]]]:
    """Run scale cells across workers; (row, extras) pairs in sweep order."""
    tracing, metrics = _observability_flags()
    payloads = [tuple(cell) + (tracing, metrics) for cell in cells]
    results = []
    for value, traces, registries in _map_cells(_scale_cell_worker, payloads, jobs):
        _adopt_observability(traces, registries)
        results.append(value)
    return results


__all__ = [
    "run_campaign_parallel",
    "run_scale_cells",
]
