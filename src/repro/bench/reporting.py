"""Rendering experiment results as text/markdown tables and trace artifacts."""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.bench.harness import ExperimentResult
from repro.obs.export import write_trace
from repro.obs.tracer import Tracer, collected_tracers


def _format_value(value: object) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        return f"{value:.2f}"
    return str(value)


def format_result(result: ExperimentResult) -> str:
    """A fixed-width text table (for terminal output and logs)."""
    widths = {c: len(c) for c in result.columns}
    rendered_rows: List[List[str]] = []
    for row in result.rows:
        rendered = [_format_value(row[c]) for c in result.columns]
        rendered_rows.append(rendered)
        for column, cell in zip(result.columns, rendered):
            widths[column] = max(widths[column], len(cell))
    header = "  ".join(c.ljust(widths[c]) for c in result.columns)
    divider = "  ".join("-" * widths[c] for c in result.columns)
    lines = [
        f"== {result.experiment_id}: {result.description} ==",
        header,
        divider,
    ]
    for rendered in rendered_rows:
        lines.append(
            "  ".join(cell.ljust(widths[c]) for cell, c in zip(rendered, result.columns))
        )
    if result.notes:
        lines.append(f"note: {result.notes}")
    return "\n".join(lines)


def render_markdown(result: ExperimentResult) -> str:
    """A GitHub-flavoured markdown table (for EXPERIMENTS.md)."""
    header = "| " + " | ".join(result.columns) + " |"
    divider = "|" + "|".join("---" for _ in result.columns) + "|"
    lines = [header, divider]
    for row in result.rows:
        lines.append(
            "| " + " | ".join(_format_value(row[c]) for c in result.columns) + " |"
        )
    if result.notes:
        lines.append("")
        lines.append(f"*{result.notes}*")
    return "\n".join(lines)


def write_trace_artifact(
    path: str,
    tracers: Optional[Sequence[Tracer]] = None,
    chrome: bool = True,
) -> str:
    """Export the span timelines gathered during a bench run.

    Defaults to every tracer registered with the process-wide collector
    (one per simulation built while tracing was enabled); pass ``tracers``
    explicitly to export a subset. Returns the written path.
    """
    if tracers is None:
        tracers = collected_tracers()
    return write_trace(path, tracers, chrome=chrome)
