"""Command-line runner for the experiments.

Usage::

    python -m repro.bench list
    python -m repro.bench run fig8a
    python -m repro.bench run fig10 --mechanism tree --seed 3
    python -m repro.bench run all
    python -m repro.bench campaign smoke [--controller]
    python -m repro.bench control --scenario crash-wave --scenario stragglers
    python -m repro.bench dashboard --out dashboard.html

``run`` prints the regenerated series as a text table (the same rows
recorded in EXPERIMENTS.md); ``campaign`` runs a chaos resilience campaign
(see :mod:`repro.chaos`) and writes the deterministic resilience report
JSON; ``control`` runs catalog scenarios with the auto-remediation
controller in charge and reports remediation counts and MTTR per cell;
``dashboard`` runs one telemetry-sensed live cell and writes a
self-contained HTML dashboard (sparklines, SLO status, alert timeline).

The observability flags (``--trace``, ``--metrics-out``, ``--profile``,
``--flamegraph``, ``--speedscope``) work uniformly across ``run``,
``campaign``, and ``control``. ``--jobs N`` on ``run`` and ``campaign``
fans independent sweep cells (scale cells, campaign scenario × mechanism
cells) across worker processes; reports and artifacts are merged in cell
order, byte-identical to ``--jobs 1`` (see :mod:`repro.bench.parallel`).

The pre-subcommand flag style (``python -m repro.bench fig8a``,
``--campaign smoke``, ``--list``) still works but is deprecated; a note on
stderr points at the replacement.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict

from repro.bench import experiments as exp
from repro.bench.reporting import format_result, write_trace_artifact
from repro.obs.registry import (
    clear_collected_registries,
    collected_registries,
    enable_metrics_collection,
)
from repro.obs.tracer import clear_collected, enable_tracing


def _fig10(args) -> object:
    return exp.fig10_simultaneous_failures(args.mechanism, seed=args.seed)


def _fig11(args) -> object:
    return exp.fig11_load_balance(args.apps, num_nodes=args.nodes, seed=args.seed)


#: Scale sizes with committed ``scale/{n}/*`` baseline keys; any other
#: ``--scale-nodes`` value runs fine but has nothing to gate against.
SCALE_BASELINE_NODES = (512, 1024, 2048, 5000, 20000, 50000)


def _scale(args) -> object:
    counts = tuple(args.scale_nodes) if args.scale_nodes else SCALE_BASELINE_NODES
    for num_nodes in counts:
        if num_nodes not in SCALE_BASELINE_NODES:
            print(
                f"note: scale/{num_nodes}/* results are informational, "
                "no baseline key",
                file=sys.stderr,
            )
    return exp.scale_overlay(
        node_counts=counts, seed=args.seed, jobs=getattr(args, "jobs", 1)
    )


def _live(args) -> object:
    return exp.live_recovery(
        seed=args.seed,
        duration_s=args.live_duration,
        base_rate=args.live_base_rate,
        peak_rate=args.live_peak_rate,
        bulk_state_mb=args.live_state_mb,
    )


EXPERIMENTS: Dict[str, Callable] = {
    "table1": lambda args: exp.table1_overview(),
    "fig8a": lambda args: exp.fig8a_recovery_no_constraint(seed=args.seed),
    "fig8b": lambda args: exp.fig8b_recovery_bw_constraint(seed=args.seed),
    "fig8c": lambda args: exp.fig8c_save_time(seed=args.seed),
    "fig9a": lambda args: exp.fig9a_star_fanout(seed=args.seed),
    "fig9b": lambda args: exp.fig9b_line_path_length(seed=args.seed),
    "fig9c": lambda args: exp.fig9c_tree_branch_depth(seed=args.seed),
    "fig9d": lambda args: exp.fig9d_tree_fanout(seed=args.seed),
    "fig10": _fig10,
    "fig11": _fig11,
    "fig12a": lambda args: exp.fig12a_cpu_overhead(seed=args.seed),
    "fig12b": lambda args: exp.fig12b_memory_overhead(seed=args.seed),
    "fig12c": lambda args: exp.fig12c_network_overhead(seed=args.seed),
    "concurrent": lambda args: exp.concurrent_apps_recovery(seed=args.seed),
    "detection": lambda args: exp.ablation_detection_latency(seed=args.seed),
    "speculation": lambda args: exp.ablation_speculation(seed=args.seed),
    "fp4s": lambda args: exp.ablation_fp4s(seed=args.seed),
    "replication": lambda args: exp.ablation_replication_factor(seed=args.seed),
    "shards": lambda args: exp.ablation_shard_count(seed=args.seed),
    "selection": lambda args: exp.ablation_selection_validation(seed=args.seed),
    "baselines": lambda args: exp.baseline_matrix(seed=args.seed),
    "saveamp": lambda args: exp.saveamp_wordcount(seed=args.seed),
    "scale": _scale,
    "remediate": lambda args: exp.remediate_controller(
        mechanism=args.mechanism, seed=args.seed
    ),
    "live": _live,
    "standby": lambda args: exp.standby_compare(seed=args.seed),
    "slo": lambda args: exp.slo_observability(seed=args.seed),
}

#: First-token subcommands of the modern CLI; anything else falls back to
#: the deprecated flag-style parser.
SUBCOMMANDS = ("run", "campaign", "control", "dashboard", "list")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate a table/figure from the SR3 evaluation.",
    )
    parser.add_argument(
        "experiment",
        nargs="?",
        help="experiment id (see --list), or 'all'",
    )
    parser.add_argument("--list", action="store_true", help="list experiment ids")
    parser.add_argument("--seed", type=int, default=0, help="simulation seed")
    parser.add_argument(
        "--mechanism",
        choices=("star", "line", "tree"),
        default="star",
        help="mechanism for fig10",
    )
    parser.add_argument("--apps", type=int, default=100, help="applications for fig11")
    parser.add_argument("--nodes", type=int, default=1000, help="overlay size for fig11")
    parser.add_argument(
        "--scale-nodes",
        type=int,
        action="append",
        metavar="N",
        help="overlay size(s) for the scale experiment (repeatable; "
        "default: 512 1024 2048 5000 20000 50000)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="fan independent sweep cells (the scale experiment, chaos "
        "campaigns) across N worker processes; output stays "
        "byte-identical to --jobs 1 (default: 1)",
    )
    parser.add_argument(
        "--live-duration",
        type=float,
        default=30.0,
        metavar="SECONDS",
        help="live experiment: simulated run length (default: 30)",
    )
    parser.add_argument(
        "--live-base-rate",
        type=float,
        default=300.0,
        metavar="EV_PER_S",
        help="live experiment: baseline ingest rate (default: 300)",
    )
    parser.add_argument(
        "--live-peak-rate",
        type=float,
        default=1500.0,
        metavar="EV_PER_S",
        help="live experiment: flash-crowd plateau rate (default: 1500)",
    )
    parser.add_argument(
        "--live-state-mb",
        type=float,
        default=32.0,
        metavar="MB",
        help="live experiment: co-located bulk state on the kill target "
        "(default: 32)",
    )
    parser.add_argument(
        "--campaign",
        metavar="NAME",
        help="run a chaos resilience campaign ('smoke' or 'full') instead "
        "of an experiment; writes resilience-<NAME>.json next to the "
        "bench output (see --campaign-out)",
    )
    parser.add_argument(
        "--campaign-out",
        metavar="PATH",
        help="where --campaign writes the resilience report JSON "
        "(default: resilience-<NAME>.json in the working directory)",
    )
    parser.add_argument(
        "--controller",
        action="store_true",
        help="campaign mode: let the repro.control auto-remediation "
        "controller own the response in every SR3 cell",
    )
    parser.add_argument(
        "--trace",
        metavar="PATH",
        help="capture span traces of every simulation and write them to "
        "PATH as Chrome trace_event JSON (open in chrome://tracing)",
    )
    parser.add_argument(
        "--trace-format",
        choices=("chrome", "plain"),
        default="chrome",
        help="artifact format for --trace (default: chrome)",
    )
    parser.add_argument(
        "--profile",
        metavar="PATH",
        help="profile every recovery (critical path + blame attribution) "
        "and write the report JSON to PATH; implies tracing",
    )
    parser.add_argument(
        "--flamegraph",
        metavar="PATH",
        help="write collapsed-stack flamegraph lines (flamegraph.pl / "
        "speedscope import format) to PATH; implies tracing",
    )
    parser.add_argument(
        "--speedscope",
        metavar="PATH",
        help="write a speedscope JSON document to PATH "
        "(open at https://www.speedscope.app); implies tracing",
    )
    parser.add_argument(
        "--metrics-out",
        metavar="PATH",
        help="dump every simulation's metrics registry (counters, series, "
        "histograms) to PATH as deterministic JSON",
    )
    parser.add_argument(
        "--baseline",
        metavar="PATH",
        help="perf-regression gate: compare each recovery's makespan "
        "against the baseline at PATH (written on first run); implies "
        "tracing; exits 3 on regression",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="merge this run's metrics into the --baseline file instead of "
        "comparing (keys from other experiments' runs are kept)",
    )
    parser.add_argument(
        "--baseline-tolerance",
        type=float,
        default=None,
        metavar="FRAC",
        help="relative slowdown tolerated by --baseline (default: 0.20)",
    )
    return parser


def print_listing(args) -> None:
    """Enumerate everything the CLI can run or gate on.

    Sections: experiment ids, the chaos scenario catalog and campaigns,
    and — when the baseline artifact exists — its perf-gate keys.
    """
    import os

    from repro.chaos import CAMPAIGNS, SCENARIOS

    print("experiments:")
    for name in EXPERIMENTS:
        print(f"  {name}")
    print("chaos scenarios:")
    for name in sorted(SCENARIOS):
        print(f"  {name}")
    print("chaos campaigns:")
    for name in sorted(CAMPAIGNS):
        print(f"  {name} ({len(CAMPAIGNS[name])} scenarios)")
    baseline_path = args.baseline or "BENCH_sr3.json"
    if os.path.exists(baseline_path):
        from repro.bench.baseline import load_baseline

        print(f"baseline keys ({baseline_path}):")
        for key in sorted(load_baseline(baseline_path)):
            print(f"  {key}")


def run_campaign_cli(args) -> int:
    """Run a chaos campaign and write the resilience report JSON."""
    from repro.chaos import run_campaign
    from repro.errors import SimulationError

    controller = getattr(args, "controller", False)
    jobs = getattr(args, "jobs", 1) or 1
    try:
        if jobs > 1:
            from repro.bench.parallel import run_campaign_parallel

            report = run_campaign_parallel(args.campaign, jobs, controller=controller)
        else:
            report = run_campaign(args.campaign, controller=controller)
    except SimulationError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    print(report.format_matrix())
    out_path = args.campaign_out or f"resilience-{args.campaign}.json"
    with open(out_path, "w") as fh:
        fh.write(report.to_json())
    print(f"resilience report written to {out_path}", file=sys.stderr)
    return 1 if report.counts()["failed"] else 0


def run_control_cli(
    scenario_names=None, mechanism: str = "star", out: str = None
) -> int:
    """Run catalog scenarios with the remediation controller in charge.

    Prints one line per cell (status, remediation count, MTTR) and writes
    the resilience report JSON. Exit codes: 0 all cells clean, 1 a cell
    failed its invariants or remediated nothing, 2 unknown scenario.
    """
    from repro.chaos import SCENARIOS, run_campaign

    names = list(scenario_names) if scenario_names else sorted(SCENARIOS)
    unknown = [n for n in names if n not in SCENARIOS]
    if unknown:
        print(
            f"unknown scenario(s) {unknown}; known: {sorted(SCENARIOS)}",
            file=sys.stderr,
        )
        return 2
    report = run_campaign(
        "control",
        scenarios=[SCENARIOS[n] for n in names],
        mechanisms=[mechanism],
        controller=True,
    )
    width = max(len(n) for n in names)
    idle = 0
    for outcome in sorted(report.outcomes, key=lambda o: o.scenario):
        print(
            f"{outcome.scenario.ljust(width)}  {outcome.status:9s}  "
            f"remediations={outcome.remediations}  "
            f"mttr_s={outcome.remediation_mttr_s:.3f}"
        )
        if outcome.remediations == 0:
            idle += 1
    out_path = out or "resilience-control.json"
    with open(out_path, "w") as fh:
        fh.write(report.to_json())
    print(f"resilience report written to {out_path}", file=sys.stderr)
    if report.counts()["failed"]:
        return 1
    if idle:
        print(
            f"{idle} scenario(s) finished without a verified remediation",
            file=sys.stderr,
        )
        return 1
    return 0


def _add_observability_flags(parser) -> None:
    """The telemetry flags shared by every subcommand (satellite of the
    continuous-telemetry work: one observability surface, not per-command
    snowflakes)."""
    parser.add_argument(
        "--trace",
        metavar="PATH",
        help="capture span traces of every simulation and write them to "
        "PATH as Chrome trace_event JSON",
    )
    parser.add_argument(
        "--trace-format",
        choices=("chrome", "plain"),
        default="chrome",
        help="artifact format for --trace (default: chrome)",
    )
    parser.add_argument(
        "--profile",
        metavar="PATH",
        help="profile every recovery and write the report JSON to PATH; "
        "implies tracing",
    )
    parser.add_argument(
        "--flamegraph",
        metavar="PATH",
        help="write collapsed-stack flamegraph lines to PATH; implies tracing",
    )
    parser.add_argument(
        "--speedscope",
        metavar="PATH",
        help="write a speedscope JSON document to PATH; implies tracing",
    )
    parser.add_argument(
        "--metrics-out",
        metavar="PATH",
        help="dump every simulation's metrics registry to PATH as "
        "deterministic JSON",
    )


def _with_observability(args, runner) -> int:
    """Run ``runner`` with the shared observability flags honoured.

    Mirrors what ``run`` does in :func:`_run_legacy`: enable collection
    up front, write trace/profile/metrics artifacts after — so
    ``campaign`` and ``control`` produce the same artifacts from the same
    flags.
    """
    tracing = bool(
        args.trace or args.profile or args.flamegraph or args.speedscope
    )
    if tracing:
        clear_collected()
        enable_tracing(True)
    if args.metrics_out:
        clear_collected_registries()
        enable_metrics_collection(True)
    exit_code = 0
    try:
        exit_code = runner()
    finally:
        if args.trace:
            path = write_trace_artifact(
                args.trace, chrome=args.trace_format == "chrome"
            )
            print(f"trace written to {path}", file=sys.stderr)
        if tracing or args.metrics_out:
            artifacts = argparse.Namespace(
                profile=args.profile,
                flamegraph=args.flamegraph,
                speedscope=args.speedscope,
                metrics_out=args.metrics_out,
                baseline=None,
                update_baseline=False,
                baseline_tolerance=None,
            )
            artifact_code = write_profile_artifacts(artifacts)
            enable_tracing(False)
            enable_metrics_collection(False)
            exit_code = exit_code or artifact_code
    return exit_code


def run_dashboard_cli(args) -> int:
    """Run one telemetry-sensed live cell and write the HTML dashboard."""
    from repro.bench.experiments import run_slo_cell
    from repro.errors import ReproError
    from repro.obs.dashboard import write_dashboard

    try:
        outcome = run_slo_cell(args.mode, seed=args.seed, duration_s=args.duration)
    except ReproError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    engine = outcome["engine"]
    anomalies = outcome["anomalies"]
    write_dashboard(
        args.out,
        outcome["pipeline"],
        slo_engine=engine,
        anomalies=anomalies,
        controller=outcome["controller"],
        title=f"SR3 telemetry — {args.mode} cell (seed {args.seed})",
    )
    timeline = []
    if engine is not None:
        timeline += [
            (a.at, f"slo-burning {a.slo} ({a.severity}, burn {a.burn_long:.2f})")
            for a in engine.alerts
        ]
    if anomalies is not None:
        timeline += [
            (a.at, f"metric-anomaly {a.kind} on {a.series} (score {a.score:.1f})")
            for a in anomalies.anomalies
        ]
    detector = outcome["detector"]
    if detector is not None and detector.detections:
        declared = min(t for _, _, t in detector.detections)
        timeline.append((declared, "node-failed declared by heartbeat detector"))
    for at, line in sorted(timeline):
        print(f"  t={at:7.2f}s  {line}")
    report = outcome["report"]
    if report.recovered_at is not None and report.killed_at is not None:
        print(
            f"  recovered {report.recovered_at - report.killed_at:.2f}s "
            f"after the kill"
        )
    print(f"dashboard written to {args.out}", file=sys.stderr)
    return 0


def write_profile_artifacts(args, extra_metrics=None) -> int:
    """Write profile/flamegraph/baseline artifacts after a traced run.

    ``extra_metrics`` are experiment-provided baseline entries (e.g. the
    saveamp byte ratios) merged into the measured makespans before the
    gate runs. Returns the process exit code: 0 unless the baseline gate
    tripped (3).
    """
    import json

    from repro.bench.baseline import (
        DEFAULT_TOLERANCE,
        baseline_metrics,
        compare_to_baseline,
        load_baseline,
        write_baseline,
    )
    from repro.obs.flamegraph import write_flamegraph, write_speedscope
    from repro.obs.profile import build_report

    exit_code = 0
    report = None
    if args.profile or args.baseline:
        report = build_report()
    if args.profile:
        with open(args.profile, "w", encoding="utf-8") as fh:
            fh.write(report.to_json())
        print(f"profile written to {args.profile}", file=sys.stderr)
    if args.flamegraph:
        write_flamegraph(args.flamegraph)
        print(f"flamegraph written to {args.flamegraph}", file=sys.stderr)
    if args.speedscope:
        write_speedscope(args.speedscope)
        print(f"speedscope document written to {args.speedscope}", file=sys.stderr)
    if args.baseline:
        import os

        measured = baseline_metrics(report.profiles)
        if extra_metrics:
            measured.update(extra_metrics)
        if args.update_baseline or not os.path.exists(args.baseline):
            # Merge semantics: keys from other experiments' runs survive,
            # this run's keys overwrite their previous values.
            merged = (
                load_baseline(args.baseline)
                if os.path.exists(args.baseline)
                else {}
            )
            merged.update(measured)
            write_baseline(args.baseline, merged)
            print(f"baseline written to {args.baseline}", file=sys.stderr)
        else:
            tolerance = (
                args.baseline_tolerance
                if args.baseline_tolerance is not None
                else DEFAULT_TOLERANCE
            )
            comparison = compare_to_baseline(
                load_baseline(args.baseline), measured, tolerance
            )
            print(comparison.summary(), file=sys.stderr)
            if not comparison.ok:
                exit_code = 3
    if args.metrics_out:
        payload = {
            "format": "sr3-metrics-1",
            "registries": [r.dump() for r in collected_registries()],
        }
        with open(args.metrics_out, "w", encoding="utf-8") as fh:
            fh.write(json.dumps(payload, sort_keys=True, separators=(",", ":")))
            fh.write("\n")
        print(f"metrics written to {args.metrics_out}", file=sys.stderr)
    return exit_code


def _dispatch_subcommand(argv) -> int:
    """Route a ``run``/``campaign``/``control``/``list`` invocation."""
    import argparse as _argparse

    command, rest = argv[0], argv[1:]
    if command == "run":
        if not rest or rest[0].startswith("-"):
            print(
                "usage: python -m repro.bench run <experiment> [flags]",
                file=sys.stderr,
            )
            return 2
        return _run_legacy(rest)
    if command == "list":
        return _run_legacy(["--list"] + rest)
    if command == "campaign":
        parser = _argparse.ArgumentParser(prog="python -m repro.bench campaign")
        parser.add_argument("name", help="campaign name ('smoke' or 'full')")
        parser.add_argument(
            "--controller",
            action="store_true",
            help="let the repro.control auto-remediation controller own "
            "the response in every SR3 cell",
        )
        parser.add_argument(
            "--out",
            metavar="PATH",
            help="resilience report path (default: resilience-<NAME>.json)",
        )
        parser.add_argument(
            "--jobs",
            type=int,
            default=1,
            metavar="N",
            help="fan campaign cells across N worker processes; the report "
            "is byte-identical to --jobs 1 (default: 1)",
        )
        _add_observability_flags(parser)
        args = parser.parse_args(rest)
        campaign_args = _argparse.Namespace(
            campaign=args.name,
            campaign_out=args.out,
            controller=args.controller,
            jobs=args.jobs,
        )
        return _with_observability(args, lambda: run_campaign_cli(campaign_args))
    if command == "dashboard":
        parser = _argparse.ArgumentParser(prog="python -m repro.bench dashboard")
        parser.add_argument(
            "--out",
            metavar="PATH",
            default="dashboard.html",
            help="where to write the self-contained HTML (default: "
            "dashboard.html)",
        )
        parser.add_argument(
            "--mode",
            choices=("burn", "detector"),
            default="burn",
            help="sensing path for the cell: SLO burn-rate alerting or the "
            "heartbeat failure detector (default: burn)",
        )
        parser.add_argument("--seed", type=int, default=0, help="simulation seed")
        parser.add_argument(
            "--duration",
            type=float,
            default=30.0,
            metavar="SECONDS",
            help="simulated run length (default: 30)",
        )
        args = parser.parse_args(rest)
        return run_dashboard_cli(args)
    # command == "control"
    parser = _argparse.ArgumentParser(prog="python -m repro.bench control")
    parser.add_argument(
        "--scenario",
        action="append",
        metavar="NAME",
        help="chaos scenario to run (repeatable; default: the full catalog)",
    )
    parser.add_argument(
        "--mechanism",
        choices=("star", "line", "tree", "standby", "speculation"),
        default="star",
        help="recovery mechanism the controller's policy pins (default: star)",
    )
    parser.add_argument(
        "--out",
        metavar="PATH",
        help="resilience report path (default: resilience-control.json)",
    )
    _add_observability_flags(parser)
    args = parser.parse_args(rest)
    return _with_observability(
        args, lambda: run_control_cli(args.scenario, args.mechanism, args.out)
    )


def main(argv=None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] in SUBCOMMANDS:
        return _dispatch_subcommand(list(argv))
    if argv:
        print(
            "note: flag-style invocation is deprecated; use "
            "'python -m repro.bench run|campaign|control|list' "
            "(each takes --help)",
            file=sys.stderr,
        )
    return _run_legacy(list(argv))


def _run_legacy(argv) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.campaign:
        return run_campaign_cli(args)
    if args.list or args.experiment is None:
        print_listing(args)
        return 0
    tracing = bool(
        args.trace or args.profile or args.flamegraph or args.speedscope or args.baseline
    )
    if tracing:
        clear_collected()
        enable_tracing(True)
    if args.metrics_out:
        clear_collected_registries()
        enable_metrics_collection(True)
    exit_code = 0
    extra_metrics: Dict[str, float] = {}

    def run_one(fn) -> None:
        result = fn(args)
        extras = getattr(result, "extra", {}) or {}
        extra_metrics.update(extras.get("baseline_metrics", {}))
        print(format_result(result))

    try:
        if args.experiment == "all":
            for name, fn in EXPERIMENTS.items():
                run_one(fn)
                print()
        else:
            fn = EXPERIMENTS.get(args.experiment)
            if fn is None:
                print(
                    f"unknown experiment {args.experiment!r}; try --list",
                    file=sys.stderr,
                )
                return 2
            run_one(fn)
    finally:
        if args.trace:
            path = write_trace_artifact(
                args.trace, chrome=args.trace_format == "chrome"
            )
            print(f"trace written to {path}", file=sys.stderr)
        if tracing or args.metrics_out:
            exit_code = write_profile_artifacts(args, extra_metrics)
            enable_tracing(False)
            enable_metrics_collection(False)
    return exit_code


if __name__ == "__main__":
    sys.exit(main())
