"""Shared scaffolding for the experiments: scenarios and result records."""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.dht.node import DhtNode
from repro.dht.overlay import Overlay
from repro.errors import BenchmarkError
from repro.obs.tracer import Tracer, default_tracer
from repro.recovery.baselines.checkpointing import CheckpointConfig, CheckpointingBaseline
from repro.recovery.manager import RecoveryManager
from repro.recovery.model import CostModel, RecoveryContext, run_handles
from repro.sim.kernel import Simulator
from repro.sim.network import Network, RemoteStorage
from repro.state.partitioner import partition_synthetic
from repro.state.placement import HashPlacement, LeafSetPlacement
from repro.state.version import StateVersion
from repro.util.sizes import MB, mbit_per_s


@dataclass
class ExperimentResult:
    """One regenerated table/figure: id, column names, and data rows."""

    experiment_id: str
    description: str
    columns: List[str]
    rows: List[Dict[str, object]] = field(default_factory=list)
    notes: str = ""
    extra: Dict[str, object] = field(default_factory=dict)

    def add_row(self, **values: object) -> None:
        missing = [c for c in self.columns if c not in values]
        if missing:
            raise BenchmarkError(f"{self.experiment_id}: row missing columns {missing}")
        self.rows.append(values)

    def column(self, name: str) -> List[object]:
        if name not in self.columns:
            raise BenchmarkError(f"{self.experiment_id}: unknown column {name!r}")
        return [row[name] for row in self.rows]

    def series(self, filter_col: str, filter_value: object, value_col: str) -> List[object]:
        """Values of one column restricted to rows matching a filter."""
        return [row[value_col] for row in self.rows if row[filter_col] == filter_value]


@dataclass
class Scenario:
    """A ready-to-run simulated deployment."""

    sim: Simulator
    network: Network
    overlay: Overlay
    ctx: RecoveryContext
    storage: RemoteStorage
    manager: RecoveryManager
    checkpointing: CheckpointingBaseline
    constrained: bool


def build_scenario(
    num_nodes: int = 64,
    seed: int = 0,
    uplink_mbit: Optional[float] = None,
    downlink_mbit: Optional[float] = None,
    leaf_set_size: int = 24,
    placement: str = "leafset",
    cost_model: Optional[CostModel] = None,
    checkpoint_config: Optional[CheckpointConfig] = None,
    tracer: Optional[Tracer] = None,
    trace_name: Optional[str] = None,
) -> Scenario:
    """Build a deployment matching the paper's testbed shape.

    Unconstrained mode models the GbE LAN of Sec. 5.1; passing
    ``uplink_mbit=100`` (and the same downlink) reproduces the "upload
    bandwidth limited to 100 Mb/s per server" configuration of Fig. 8b.

    ``tracer`` attaches an explicit span tracer; ``trace_name`` instead
    requests one from the process-wide collector (active when tracing was
    switched on with :func:`repro.obs.enable_tracing`, e.g. by the bench
    CLI's ``--trace`` flag), so every scenario built during a traced run
    lands in the same exported artifact.
    """
    if tracer is None and trace_name is not None:
        tracer = default_tracer(trace_name)
    sim = Simulator(tracer=tracer)
    network = Network(sim)
    up = mbit_per_s(uplink_mbit) if uplink_mbit else float("inf")
    down = mbit_per_s(downlink_mbit) if downlink_mbit else float("inf")
    overlay = Overlay(sim, network, leaf_set_size=leaf_set_size, rng=random.Random(seed))
    overlay.build(
        num_nodes,
        host_factory=lambda name: network.add_host(name, up_bw=up, down_bw=down),
    )
    storage = RemoteStorage("remote-storage", up_bw=400 * MB, down_bw=400 * MB)
    network.hosts[storage.name] = storage
    ctx = RecoveryContext(sim, network, overlay, cost_model or CostModel())
    placement_impl = LeafSetPlacement() if placement == "leafset" else HashPlacement()
    constrained = uplink_mbit is not None and uplink_mbit < 1000
    manager = RecoveryManager(ctx, placement=placement_impl, bandwidth_constrained=constrained)
    checkpointing = CheckpointingBaseline(
        ctx, storage, checkpoint_config or CheckpointConfig()
    )
    return Scenario(
        sim=sim,
        network=network,
        overlay=overlay,
        ctx=ctx,
        storage=storage,
        manager=manager,
        checkpointing=checkpointing,
        constrained=constrained,
    )


def default_shard_count(state_bytes: float) -> int:
    """Shards scale with the state: one per ~8 MB, at least four."""
    return max(4, int(state_bytes // (8 * MB)))


def saved_state(
    scenario: Scenario,
    state_name: str,
    state_bytes: float,
    num_shards: Optional[int] = None,
    num_replicas: int = 2,
    owner: Optional[DhtNode] = None,
    serial: bool = True,
):
    """Register + save one synthetic state; returns (registered, SaveResult)."""
    owner = owner or scenario.overlay.nodes[0]
    shards = partition_synthetic(
        state_name,
        int(state_bytes),
        num_shards or default_shard_count(state_bytes),
        StateVersion(scenario.sim.now, 1),
    )
    registered = scenario.manager.register(owner, shards, num_replicas)
    handle = scenario.manager.save(state_name, serial=serial)
    scenario.sim.run_until_idle()
    return registered, handle.result


def saved_delta(
    scenario: Scenario,
    state_name: str,
    delta_bytes: float,
    serial: bool = True,
):
    """Append one synthetic delta round to an already-saved state.

    Splits ``delta_bytes`` evenly over the chain's shard count and ships
    it through :meth:`RecoveryManager.save_delta`; the manager falls back
    to a full save on its own when the chain cannot be extended. Returns
    ``(registered, SaveResult)`` like :func:`saved_state`.
    """
    from repro.state.shard import DeltaShard

    registered = scenario.manager.states[state_name]
    chain = registered.chain
    if chain is None or not chain.links:
        raise BenchmarkError(
            f"{state_name}: no version chain to extend — save a base first"
        )
    parent = chain.tip_version
    version = StateVersion(scenario.sim.now, parent.sequence + 1)
    num_shards = chain.num_shards
    per_shard = int(delta_bytes // num_shards)
    delta_shards = [
        DeltaShard.synthetic_delta(
            state_name,
            index,
            num_shards,
            version,
            parent,
            chain.length,
            per_shard,
        )
        for index in range(num_shards)
    ]
    handle = scenario.manager.save_delta(state_name, delta_shards, serial=serial)
    scenario.sim.run_until_idle()
    return registered, handle.result


def timed_recovery(scenario: Scenario, mechanism, state_name: str, replacement=None):
    """Fail the owner and run one recovery; returns the RecoveryResult."""
    registered = scenario.manager.states[state_name]
    if registered.owner.alive:
        scenario.overlay.fail_node(registered.owner)
    if replacement is None:
        replacement = scenario.overlay.replacement_for(registered.owner)
    handle = mechanism.start(scenario.ctx, registered.plan, replacement, state_name)
    return run_handles(scenario.sim, [handle])[0]
