"""Perf-regression baselines for the bench CLI (``BENCH_sr3.json``).

Every traced bench run yields one deterministic makespan per recovery
(virtual clock, seeded RNG), keyed ``{trace}/{mechanism}/{state}#{n}``
where ``n`` disambiguates repeated recoveries of the same state within
one trace. Committing those numbers turns any future run into a perf
gate: a recovery more than ``tolerance`` slower than its recorded
makespan is a regression — in the *model*, not the hardware, which is
exactly what a simulation baseline should catch (a cost-model edit or a
scheduling change that silently slows a mechanism down).

The artifact is plain sorted-key JSON so diffs review like code:

    {"format": "sr3-bench-1", "metrics": {"sim-0/star/st#0": 7.16, ...}}
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.errors import BenchmarkError
from repro.obs.profile import RecoveryProfile

__all__ = [
    "BASELINE_FORMAT",
    "DEFAULT_TOLERANCE",
    "INFORMATIONAL_SUFFIXES",
    "Regression",
    "BaselineComparison",
    "baseline_metrics",
    "write_baseline",
    "load_baseline",
    "compare_to_baseline",
]

BASELINE_FORMAT = "sr3-bench-1"
DEFAULT_TOLERANCE = 0.20

# Keys with these suffixes record host wall-clock measurements (the
# ``bench scale`` throughput numbers) or diagnostic model comparisons
# (``bench live``'s predicted-vs-observed gap). They are kept in the
# artifact for the record but never gated — wall time is noisy on shared
# CI runners, and the prediction error tracks a deliberately simple
# closed form, unlike the deterministic simulated-seconds makespans.
INFORMATIONAL_SUFFIXES = ("/wall_s", "/events_per_s", "/predict_error")


def baseline_metrics(profiles: Sequence[RecoveryProfile]) -> Dict[str, float]:
    """One makespan per recovery, keyed ``{trace}/{mechanism}/{state}#{n}``."""
    metrics: Dict[str, float] = {}
    seen: Dict[str, int] = {}
    for profile in profiles:
        base = f"{profile.trace}/{profile.mechanism}/{profile.state}"
        n = seen.get(base, 0)
        seen[base] = n + 1
        metrics[f"{base}#{n}"] = profile.makespan
    return metrics


@dataclass(frozen=True)
class Regression:
    """One recovery that ran slower than the committed baseline allows."""

    key: str
    baseline_s: float
    measured_s: float

    @property
    def ratio(self) -> float:
        return self.measured_s / self.baseline_s if self.baseline_s else float("inf")

    def __str__(self) -> str:
        return (
            f"{self.key}: {self.measured_s:.3f}s vs baseline "
            f"{self.baseline_s:.3f}s ({self.ratio - 1.0:+.1%})"
        )


@dataclass
class BaselineComparison:
    """Outcome of checking measured makespans against a baseline."""

    tolerance: float
    regressions: List[Regression] = field(default_factory=list)
    improvements: List[Regression] = field(default_factory=list)
    new_keys: List[str] = field(default_factory=list)
    missing_keys: List[str] = field(default_factory=list)
    compared: int = 0
    informational: int = 0

    @property
    def ok(self) -> bool:
        return not self.regressions

    def summary(self) -> str:
        lines = [
            f"baseline check: {self.compared} compared, "
            f"{len(self.regressions)} regressed, "
            f"{len(self.improvements)} improved >{self.tolerance:.0%}, "
            f"{len(self.new_keys)} new, {len(self.missing_keys)} missing, "
            f"{self.informational} informational (wall-clock, not gated)"
        ]
        for regression in self.regressions:
            lines.append(f"  REGRESSION {regression}")
        for improvement in self.improvements:
            lines.append(f"  improved   {improvement}")
        return "\n".join(lines)


def compare_to_baseline(
    baseline: Dict[str, float],
    measured: Dict[str, float],
    tolerance: float = DEFAULT_TOLERANCE,
) -> BaselineComparison:
    """Flag every measured makespan more than ``tolerance`` over baseline.

    Keys present on only one side are reported (``new_keys`` /
    ``missing_keys``) but never fail the gate — an experiment gaining or
    losing a recovery is a review question, not a perf regression.
    """
    if tolerance < 0:
        raise BenchmarkError("baseline tolerance must be non-negative")
    comparison = BaselineComparison(tolerance=tolerance)
    for key in sorted(set(baseline) | set(measured)):
        if key.endswith(INFORMATIONAL_SUFFIXES):
            comparison.informational += 1
            continue
        if key not in baseline:
            comparison.new_keys.append(key)
            continue
        if key not in measured:
            comparison.missing_keys.append(key)
            continue
        comparison.compared += 1
        record = Regression(key, baseline[key], measured[key])
        if measured[key] > baseline[key] * (1.0 + tolerance):
            comparison.regressions.append(record)
        elif measured[key] < baseline[key] * (1.0 - tolerance):
            comparison.improvements.append(record)
    return comparison


def write_baseline(path: str, metrics: Dict[str, float]) -> str:
    """Write a baseline artifact; returns the path."""
    payload = {"format": BASELINE_FORMAT, "metrics": dict(sorted(metrics.items()))}
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(json.dumps(payload, sort_keys=True, indent=2))
        fh.write("\n")
    return path


def load_baseline(path: str) -> Dict[str, float]:
    """Read a baseline artifact back into its metrics dict."""
    if not os.path.exists(path):
        raise BenchmarkError(f"baseline file not found: {path}")
    with open(path, "r", encoding="utf-8") as fh:
        payload = json.load(fh)
    if not isinstance(payload, dict) or payload.get("format") != BASELINE_FORMAT:
        raise BenchmarkError(
            f"{path}: not a {BASELINE_FORMAT} baseline artifact"
        )
    metrics = payload.get("metrics", {})
    if not isinstance(metrics, dict):
        raise BenchmarkError(f"{path}: malformed metrics table")
    return {str(k): float(v) for k, v in metrics.items()}
