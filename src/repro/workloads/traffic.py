"""Traffic monitoring over synthetic bus GPS traces.

Stand-in for the paper's Dublin Bus GPS dataset (Table 3): buses move
along fixed routes on a city grid, reporting position and schedule delay;
the monitoring operator keeps per-route sliding-window delay statistics —
the recoverable state — and raises congestion alerts when a route's
average delay exceeds a threshold.
"""

from __future__ import annotations

import random
from typing import Dict, Iterator, Optional, Tuple

from repro.errors import WorkloadError
from repro.streaming.component import OutputCollector, Spout
from repro.streaming.groupings import FieldsGrouping
from repro.streaming.stateful import StatefulBolt
from repro.streaming.topology import Topology, TopologyBuilder
from repro.streaming.tuples import StreamTuple
from repro.streaming.windows import SlidingWindow


class BusTraceGenerator:
    """Yields ``(bus_id, route, lat, lon, delay_s, timestamp)`` records.

    Each route has a base congestion level; delays random-walk around it,
    with occasional congestion spikes so alerts actually fire.
    """

    def __init__(
        self,
        num_events: int,
        num_routes: int = 12,
        buses_per_route: int = 5,
        seed: int = 0,
        spike_probability: float = 0.02,
    ) -> None:
        if num_events < 0:
            raise WorkloadError("num_events must be non-negative")
        if num_routes < 1 or buses_per_route < 1:
            raise WorkloadError("routes and buses must be positive")
        if not 0.0 <= spike_probability <= 1.0:
            raise WorkloadError("spike_probability must be within [0, 1]")
        self.num_events = num_events
        self.num_routes = num_routes
        self.buses_per_route = buses_per_route
        self.seed = seed
        self.spike_probability = spike_probability

    def __iter__(self) -> Iterator[Tuple[str, str, float, float, float, float]]:
        rng = random.Random(self.seed)
        base_delay = {
            f"route-{r}": rng.uniform(10.0, 120.0) for r in range(self.num_routes)
        }
        delays: Dict[str, float] = {}
        for i in range(self.num_events):
            route = f"route-{rng.randrange(self.num_routes)}"
            bus = f"{route}/bus-{rng.randrange(self.buses_per_route)}"
            current = delays.get(bus, base_delay[route])
            current = max(0.0, current + rng.gauss(0.0, 8.0))
            if rng.random() < self.spike_probability:
                current += rng.uniform(120.0, 600.0)
            delays[bus] = current
            lat = 53.35 + rng.uniform(-0.1, 0.1)
            lon = -6.26 + rng.uniform(-0.1, 0.1)
            yield bus, route, round(lat, 6), round(lon, 6), round(current, 1), float(i)


class BusSpout(Spout):
    """Feeds a :class:`BusTraceGenerator` into a topology."""

    def __init__(self, generator: BusTraceGenerator) -> None:
        self._generator = generator
        self._iterator: Optional[Iterator] = None

    def declare_output_fields(self):
        return ("bus_id", "route", "lat", "lon", "delay", "ts")

    def prepare(self, context) -> None:
        self._iterator = iter(self._generator)

    def next_tuple(self, collector: OutputCollector) -> bool:
        if self._iterator is None:
            raise WorkloadError("spout used before prepare()")
        try:
            record = next(self._iterator)
        except StopIteration:
            return False
        collector.emit(record, timestamp=record[-1])
        return True


class RouteDelayBolt(StatefulBolt):
    """Sliding-window average delay per route, with congestion alerts.

    State per route: ``(delay_sum, event_count)`` of the lifetime totals
    plus the live sliding window. Emits
    ``(route, window_avg_delay, lifetime_avg_delay, ts)`` whenever the
    window average crosses ``alert_threshold``.
    """

    def __init__(
        self,
        window_size: float = 200.0,
        window_slide: float = 50.0,
        alert_threshold: float = 150.0,
    ) -> None:
        super().__init__()
        if alert_threshold <= 0:
            raise WorkloadError("alert_threshold must be positive")
        self.window_size = window_size
        self.window_slide = window_slide
        self.alert_threshold = alert_threshold
        self._windows: Dict[str, SlidingWindow] = {}

    def declare_output_fields(self):
        return ("route", "window_avg", "lifetime_avg", "ts")

    def process(self, tuple_: StreamTuple, collector: OutputCollector) -> None:
        route = tuple_["route"]
        delay = tuple_["delay"]
        ts = tuple_["ts"]
        total, count = self.state.get(route, (0.0, 0))
        total += delay
        count += 1
        self.state.put(route, (total, count))
        window = self._windows.get(route)
        if window is None:
            window = SlidingWindow(self.window_size, self.window_slide)
            self._windows[route] = window
        for pane in window.add(ts, delay):
            if pane.items:
                window_avg = sum(pane.items) / len(pane.items)
                if window_avg > self.alert_threshold:
                    lifetime_avg = total / count
                    collector.emit(
                        (route, round(window_avg, 2), round(lifetime_avg, 2), ts),
                        timestamp=ts,
                    )


def build_traffic_topology(
    num_events: int = 5_000,
    seed: int = 0,
    parallelism: int = 2,
    alert_threshold: float = 150.0,
) -> Topology:
    """GPS spout -> fields-grouped RouteDelayBolt."""
    builder = TopologyBuilder("traffic-monitoring")
    builder.set_spout("gps", BusSpout(BusTraceGenerator(num_events, seed=seed)))
    builder.set_bolt(
        "monitor",
        RouteDelayBolt(alert_threshold=alert_threshold),
        [("gps", FieldsGrouping(["route"]))],
        parallelism=parallelism,
    )
    return builder.build()
