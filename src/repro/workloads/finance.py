"""The Bargain Index application over synthetic finance ticks.

Stand-in for the paper's Google Finance dataset (Table 3): a seeded
random-walk tick stream, and the classic CEP "bargain index" operator —
track the volume-weighted average price (VWAP) per symbol and flag ticks
priced below it; the deeper the discount and the larger the quoted volume,
the higher the index. The per-symbol (vwap_numerator, volume) pairs are
the operator's recoverable state.
"""

from __future__ import annotations

import random
from typing import Iterator, Optional, Sequence, Tuple

from repro.errors import WorkloadError
from repro.streaming.component import OutputCollector, Spout
from repro.streaming.groupings import FieldsGrouping
from repro.streaming.stateful import StatefulBolt
from repro.streaming.topology import Topology, TopologyBuilder
from repro.streaming.tuples import StreamTuple

DEFAULT_SYMBOLS = (
    "AAA", "BBN", "CPX", "DLT", "EMR", "FST", "GLX", "HQM",
    "INV", "JPR", "KLN", "LMD", "MNO", "NRG", "OPT", "PQR",
)


class TickGenerator:
    """A deterministic random-walk tick stream.

    Yields ``(symbol, price, volume, timestamp)`` tuples; prices follow
    independent geometric random walks per symbol.
    """

    def __init__(
        self,
        num_ticks: int,
        symbols: Sequence[str] = DEFAULT_SYMBOLS,
        seed: int = 0,
        start_price: float = 100.0,
        volatility: float = 0.01,
    ) -> None:
        if num_ticks < 0:
            raise WorkloadError("num_ticks must be non-negative")
        if not symbols:
            raise WorkloadError("at least one symbol is required")
        if volatility < 0:
            raise WorkloadError("volatility must be non-negative")
        self.num_ticks = num_ticks
        self.symbols = tuple(symbols)
        self.seed = seed
        self.start_price = start_price
        self.volatility = volatility

    def __iter__(self) -> Iterator[Tuple[str, float, int, float]]:
        rng = random.Random(self.seed)
        prices = {s: self.start_price * (0.5 + rng.random()) for s in self.symbols}
        for i in range(self.num_ticks):
            symbol = rng.choice(self.symbols)
            drift = 1.0 + rng.gauss(0.0, self.volatility)
            prices[symbol] = max(0.01, prices[symbol] * drift)
            volume = rng.randint(100, 10_000)
            yield symbol, round(prices[symbol], 4), volume, float(i)


class TickSpout(Spout):
    """Feeds a :class:`TickGenerator` into a topology."""

    def __init__(self, generator: TickGenerator) -> None:
        self._generator = generator
        self._iterator: Optional[Iterator] = None

    def declare_output_fields(self):
        return ("symbol", "price", "volume", "ts")

    def prepare(self, context) -> None:
        self._iterator = iter(self._generator)

    def next_tuple(self, collector: OutputCollector) -> bool:
        if self._iterator is None:
            raise WorkloadError("spout used before prepare()")
        try:
            symbol, price, volume, ts = next(self._iterator)
        except StopIteration:
            return False
        collector.emit((symbol, price, volume, ts), timestamp=ts)
        return True


class BargainIndexBolt(StatefulBolt):
    """VWAP tracking + bargain detection, keyed by symbol.

    State per symbol: cumulative ``price * volume`` and cumulative volume.
    Emits ``(symbol, bargain_index, ts)`` whenever a tick's price dips
    below the running VWAP.
    """

    def __init__(self, sensitivity: float = 1.0) -> None:
        super().__init__()
        if sensitivity <= 0:
            raise WorkloadError("sensitivity must be positive")
        self.sensitivity = sensitivity

    def declare_output_fields(self):
        return ("symbol", "bargain_index", "ts")

    def process(self, tuple_: StreamTuple, collector: OutputCollector) -> None:
        symbol = tuple_["symbol"]
        price = tuple_["price"]
        volume = tuple_["volume"]
        pv_sum, vol_sum = self.state.get(symbol, (0.0, 0))
        pv_sum += price * volume
        vol_sum += volume
        self.state.put(symbol, (pv_sum, vol_sum))
        vwap = pv_sum / vol_sum
        if price < vwap:
            index = (vwap - price) * volume * self.sensitivity
            collector.emit((symbol, round(index, 4), tuple_["ts"]), timestamp=tuple_["ts"])


def build_bargain_index_topology(
    num_ticks: int = 5_000,
    seed: int = 0,
    parallelism: int = 2,
) -> Topology:
    """Spout -> fields-grouped BargainIndexBolt."""
    builder = TopologyBuilder("bargain-index")
    builder.set_spout("ticks", TickSpout(TickGenerator(num_ticks, seed=seed)))
    builder.set_bolt(
        "bargain",
        BargainIndexBolt(),
        [("ticks", FieldsGrouping(["symbol"]))],
        parallelism=parallelism,
    )
    return builder.build()
