"""Workload generators and application topologies.

Synthetic, seeded equivalents of the paper's real-world datasets
(Table 3): Google Finance ticks for the Bargain Index application,
Zipf-distributed text for Word Count (Wikimedia dumps), and GPS traces for
Traffic Monitoring (Dublin Bus). Plus the three motivating applications of
Fig. 1: micro-promotion (top-k clicked products), product bundling
(co-purchase graph), and click-fraud detection (Bloom-filter state).

Each module exposes a generator (an iterator of records) and a
``build_*_topology`` factory producing a runnable
:class:`~repro.streaming.topology.Topology`.
"""

from repro.workloads.finance import (
    BargainIndexBolt,
    TickGenerator,
    build_bargain_index_topology,
)
from repro.workloads.wordcount import (
    SentenceGenerator,
    SplitSentenceBolt,
    build_wordcount_topology,
)
from repro.workloads.traffic import (
    BusTraceGenerator,
    RouteDelayBolt,
    build_traffic_topology,
)
from repro.workloads.sessions import (
    SessionAnalyticsBolt,
    build_session_analytics_topology,
)
from repro.workloads.clicks import (
    ClickGenerator,
    FraudDetectBolt,
    ProductBundlingBolt,
    TopKClicksBolt,
    build_fraud_detection_topology,
    build_micro_promotion_topology,
    build_product_bundling_topology,
)

__all__ = [
    "TickGenerator",
    "BargainIndexBolt",
    "build_bargain_index_topology",
    "SentenceGenerator",
    "SplitSentenceBolt",
    "build_wordcount_topology",
    "BusTraceGenerator",
    "RouteDelayBolt",
    "build_traffic_topology",
    "ClickGenerator",
    "TopKClicksBolt",
    "FraudDetectBolt",
    "ProductBundlingBolt",
    "build_micro_promotion_topology",
    "build_fraud_detection_topology",
    "build_product_bundling_topology",
    "SessionAnalyticsBolt",
    "build_session_analytics_topology",
]
