"""The three motivating e-commerce applications of Fig. 1.

A shared click/buy activity stream feeds:

- *micro-promotion*: group-by-aggregate product clicks and keep the top-k
  most clicked products (state: the product->clicks knowledge base);
- *product bundling*: build a co-purchase graph from buy events (state:
  weighted edges between products bought in the same session);
- *click-fraud detection*: a Bloom filter memorizing (ip, product) click
  fingerprints; repeats within the filter's horizon are flagged as
  fraudulent duplicates (state: the Bloom filter bits).
"""

from __future__ import annotations

import random
from typing import Iterator, List, Optional, Tuple

from repro.errors import WorkloadError
from repro.streaming.component import OutputCollector, Spout
from repro.streaming.groupings import FieldsGrouping, GlobalGrouping
from repro.streaming.stateful import StatefulBolt
from repro.streaming.topology import Topology, TopologyBuilder
from repro.streaming.tuples import StreamTuple
from repro.util.bloom import BloomFilter


class ClickGenerator:
    """Yields ``(event_type, user, ip, product, ts)`` activity records.

    Product popularity is skewed (top products get most clicks); a small
    fraction of users are "fraudsters" who repeat identical clicks; buys
    arrive in per-user sessions so bundling has co-purchases to find.
    """

    def __init__(
        self,
        num_events: int,
        num_products: int = 200,
        num_users: int = 500,
        seed: int = 0,
        buy_fraction: float = 0.15,
        fraud_fraction: float = 0.05,
    ) -> None:
        if num_events < 0:
            raise WorkloadError("num_events must be non-negative")
        if num_products < 2 or num_users < 1:
            raise WorkloadError("need at least two products and one user")
        if not 0 <= buy_fraction <= 1 or not 0 <= fraud_fraction <= 1:
            raise WorkloadError("fractions must be within [0, 1]")
        self.num_events = num_events
        self.num_products = num_products
        self.num_users = num_users
        self.seed = seed
        self.buy_fraction = buy_fraction
        self.fraud_fraction = fraud_fraction

    def _skewed_product(self, rng: random.Random) -> str:
        # Quadratic skew toward low product indexes.
        index = int((rng.random() ** 2) * self.num_products)
        return f"product-{min(index, self.num_products - 1)}"

    def __iter__(self) -> Iterator[Tuple[str, str, str, str, float]]:
        rng = random.Random(self.seed)
        fraudsters = {
            f"user-{i}" for i in rng.sample(
                range(self.num_users), max(1, int(self.num_users * self.fraud_fraction))
            )
        }
        last_buy = {}
        for i in range(self.num_events):
            user = f"user-{rng.randrange(self.num_users)}"
            ip = f"10.0.{rng.randrange(32)}.{rng.randrange(256)}"
            product = self._skewed_product(rng)
            if user in fraudsters and rng.random() < 0.6:
                # Fraudsters hammer the same product from the same IP.
                ip = "10.0.0.1"
                product = last_buy.get(user, product)
            if rng.random() < self.buy_fraction:
                event = "buy"
                last_buy[user] = product
            else:
                event = "click"
            yield event, user, ip, product, float(i)


class ClickSpout(Spout):
    """Feeds a :class:`ClickGenerator` into a topology."""

    def __init__(self, generator: ClickGenerator) -> None:
        self._generator = generator
        self._iterator: Optional[Iterator] = None

    def declare_output_fields(self):
        return ("event", "user", "ip", "product", "ts")

    def prepare(self, context) -> None:
        self._iterator = iter(self._generator)

    def next_tuple(self, collector: OutputCollector) -> bool:
        if self._iterator is None:
            raise WorkloadError("spout used before prepare()")
        try:
            record = next(self._iterator)
        except StopIteration:
            return False
        collector.emit(record, timestamp=record[-1])
        return True


class TopKClicksBolt(StatefulBolt):
    """Micro-promotion: count clicks per product, emit the current top-k.

    Emits ``(ranking, ts)`` where ranking is a tuple of (product, clicks)
    pairs, whenever the top-k set or order changes.
    """

    def __init__(self, k: int = 5) -> None:
        super().__init__()
        if k < 1:
            raise WorkloadError("k must be positive")
        self.k = k
        self._last_ranking: Optional[tuple] = None

    def declare_output_fields(self):
        return ("ranking", "ts")

    def process(self, tuple_: StreamTuple, collector: OutputCollector) -> None:
        if tuple_["event"] != "click":
            return
        product = tuple_["product"]
        self.state.update(product, lambda c: (c or 0) + 1)
        ranking = tuple(
            sorted(self.state.items(), key=lambda kv: (-kv[1], kv[0]))[: self.k]
        )
        if ranking != self._last_ranking:
            self._last_ranking = ranking
            collector.emit((ranking, tuple_["ts"]), timestamp=tuple_["ts"])

    def top_k(self) -> List[Tuple[str, int]]:
        return list(
            sorted(self.state.items(), key=lambda kv: (-kv[1], kv[0]))[: self.k]
        )


class ProductBundlingBolt(StatefulBolt):
    """Product bundling: weighted co-purchase graph per user session.

    State holds two kinds of keys: ``("last", user) -> product`` and
    ``("edge", a, b) -> weight`` for each co-purchase pair (a < b).
    Emits ``(product_a, product_b, weight, ts)`` on every strengthened
    edge — the "you like this, you may also like that" signal.
    """

    def declare_output_fields(self):
        return ("product_a", "product_b", "weight", "ts")

    def process(self, tuple_: StreamTuple, collector: OutputCollector) -> None:
        if tuple_["event"] != "buy":
            return
        user = tuple_["user"]
        product = tuple_["product"]
        previous = self.state.get(("last", user))
        self.state.put(("last", user), product)
        if previous is None or previous == product:
            return
        a, b = sorted((previous, product))
        weight = self.state.update(("edge", a, b), lambda w: (w or 0) + 1)
        collector.emit((a, b, weight, tuple_["ts"]), timestamp=tuple_["ts"])

    def strongest_bundles(self, limit: int = 10) -> List[Tuple[str, str, int]]:
        edges = [
            (key[1], key[2], weight)
            for key, weight in self.state.items()
            if isinstance(key, tuple) and key[0] == "edge"
        ]
        return sorted(edges, key=lambda e: (-e[2], e[0], e[1]))[:limit]


class FraudDetectBolt(StatefulBolt):
    """Click-fraud detection with a Bloom filter (Fig. 1, bottom).

    The filter memorizes (ip, product) click fingerprints; a repeat within
    the filter's horizon is flagged. The Bloom filter itself is the
    operator state: it is serialized into the store so SR3 can shard,
    replicate, and recover it.
    """

    BLOOM_KEY = "bloom-bits"

    def __init__(self, capacity: int = 50_000, error_rate: float = 0.01) -> None:
        super().__init__()
        self.capacity = capacity
        self.error_rate = error_rate
        self._bloom: Optional[BloomFilter] = None

    def declare_output_fields(self):
        return ("ip", "product", "ts")

    def _filter(self) -> BloomFilter:
        if self._bloom is None:
            stored = self.state.get(self.BLOOM_KEY)
            if stored is not None:
                self._bloom = BloomFilter.from_bytes(stored)
            else:
                self._bloom = BloomFilter(self.capacity, self.error_rate)
        return self._bloom

    def process(self, tuple_: StreamTuple, collector: OutputCollector) -> None:
        if tuple_["event"] != "click":
            return
        bloom = self._filter()
        fingerprint = f"{tuple_['ip']}|{tuple_['product']}"
        duplicate = bloom.add(fingerprint)
        # Persist the updated bits so every save round captures them.
        self.state.put(self.BLOOM_KEY, bloom.to_bytes())
        if duplicate:
            collector.emit(
                (tuple_["ip"], tuple_["product"], tuple_["ts"]),
                timestamp=tuple_["ts"],
            )

    def attach_state(self, store) -> None:
        super().attach_state(store)
        self._bloom = None  # re-hydrate from the recovered bytes


def build_micro_promotion_topology(
    num_events: int = 5_000, seed: int = 0, k: int = 5
) -> Topology:
    """clicks -> global-grouped TopKClicksBolt (a single ranking task)."""
    builder = TopologyBuilder("micro-promotion")
    builder.set_spout("activity", ClickSpout(ClickGenerator(num_events, seed=seed)))
    builder.set_bolt("topk", TopKClicksBolt(k=k), [("activity", GlobalGrouping())])
    return builder.build()


def build_product_bundling_topology(num_events: int = 5_000, seed: int = 0) -> Topology:
    """buys -> fields-grouped-by-user ProductBundlingBolt."""
    builder = TopologyBuilder("product-bundling")
    builder.set_spout("activity", ClickSpout(ClickGenerator(num_events, seed=seed)))
    builder.set_bolt(
        "bundling",
        ProductBundlingBolt(),
        [("activity", FieldsGrouping(["user"]))],
    )
    return builder.build()


def build_fraud_detection_topology(num_events: int = 5_000, seed: int = 0) -> Topology:
    """clicks -> global-grouped FraudDetectBolt (one shared Bloom filter)."""
    builder = TopologyBuilder("fraud-detection")
    builder.set_spout("activity", ClickSpout(ClickGenerator(num_events, seed=seed)))
    builder.set_bolt("fraud", FraudDetectBolt(), [("activity", GlobalGrouping())])
    return builder.build()
