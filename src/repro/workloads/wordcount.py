"""Word Count over a Zipf-distributed synthetic corpus.

Stand-in for the paper's Wikimedia-dump dataset (Table 3). Real text has a
Zipfian word-frequency distribution; the generator draws from a fixed
vocabulary with rank-``s`` Zipf weights so the counting state exhibits the
same heavy-skew key distribution the real dumps would produce.
"""

from __future__ import annotations

import bisect
import itertools
import random
from typing import Iterator, List, Optional

from repro.errors import WorkloadError
from repro.streaming.component import Bolt, OutputCollector, Spout
from repro.streaming.groupings import FieldsGrouping, ShuffleGrouping
from repro.streaming.stateful import CountingBolt
from repro.streaming.topology import Topology, TopologyBuilder
from repro.streaming.tuples import StreamTuple


def _vocabulary(size: int) -> List[str]:
    """A deterministic pseudo-word vocabulary of the given size."""
    syllables = ["ka", "ru", "mi", "to", "ze", "la", "vo", "ne", "shi", "ber"]
    words = []
    for combo in itertools.product(syllables, repeat=4):
        words.append("".join(combo))
        if len(words) == size:
            return words
    raise WorkloadError(f"vocabulary size {size} too large")


class SentenceGenerator:
    """Yields sentences of Zipf-distributed pseudo-words."""

    def __init__(
        self,
        num_sentences: int,
        words_per_sentence: int = 8,
        vocabulary_size: int = 2_000,
        zipf_s: float = 1.1,
        seed: int = 0,
    ) -> None:
        if num_sentences < 0:
            raise WorkloadError("num_sentences must be non-negative")
        if words_per_sentence < 1:
            raise WorkloadError("words_per_sentence must be positive")
        if vocabulary_size < 1:
            raise WorkloadError("vocabulary_size must be positive")
        if zipf_s <= 0:
            raise WorkloadError("zipf_s must be positive")
        self.num_sentences = num_sentences
        self.words_per_sentence = words_per_sentence
        self.vocabulary = _vocabulary(vocabulary_size)
        self.zipf_s = zipf_s
        self.seed = seed
        # Cumulative Zipf weights for O(log V) sampling.
        weights = [1.0 / (rank ** zipf_s) for rank in range(1, vocabulary_size + 1)]
        total = sum(weights)
        acc = 0.0
        self._cumulative = []
        for w in weights:
            acc += w / total
            self._cumulative.append(acc)

    def sample_word(self, rng: random.Random) -> str:
        index = bisect.bisect_left(self._cumulative, rng.random())
        return self.vocabulary[min(index, len(self.vocabulary) - 1)]

    def __iter__(self) -> Iterator[str]:
        rng = random.Random(self.seed)
        for _ in range(self.num_sentences):
            yield " ".join(
                self.sample_word(rng) for _ in range(self.words_per_sentence)
            )


class SentenceSpout(Spout):
    """Feeds sentences into the topology."""

    def __init__(self, generator: SentenceGenerator) -> None:
        self._generator = generator
        self._iterator: Optional[Iterator[str]] = None
        self._sequence = 0

    def declare_output_fields(self):
        return ("sentence",)

    def prepare(self, context) -> None:
        self._iterator = iter(self._generator)

    def next_tuple(self, collector: OutputCollector) -> bool:
        if self._iterator is None:
            raise WorkloadError("spout used before prepare()")
        try:
            sentence = next(self._iterator)
        except StopIteration:
            return False
        collector.emit((sentence,), timestamp=float(self._sequence))
        self._sequence += 1
        return True


class SplitSentenceBolt(Bolt):
    """The stateless map stage: sentence -> words."""

    def declare_output_fields(self):
        return ("word",)

    def execute(self, tuple_: StreamTuple, collector: OutputCollector) -> None:
        for word in tuple_["sentence"].split():
            collector.emit((word,), timestamp=tuple_.timestamp)


def build_wordcount_topology(
    num_sentences: int = 2_000,
    seed: int = 0,
    count_parallelism: int = 4,
    vocabulary_size: int = 2_000,
) -> Topology:
    """sentences -> split (shuffle) -> count (fields-grouped on word)."""
    builder = TopologyBuilder("word-count")
    builder.set_spout(
        "sentences",
        SentenceSpout(SentenceGenerator(num_sentences, seed=seed, vocabulary_size=vocabulary_size)),
    )
    builder.set_bolt("split", SplitSentenceBolt(), [("sentences", ShuffleGrouping())])
    builder.set_bolt(
        "count",
        CountingBolt("word"),
        [("split", FieldsGrouping(["word"]))],
        parallelism=count_parallelism,
    )
    return builder.build()
