"""User-session analytics: the session-window operator in a real topology.

The paper's benchmarks exercise "various window operators (e.g., sliding
window, tumbling window and session window)" (Sec. 5.1). This application
closes sessions after a gap of inactivity per user and keeps per-user
lifetime statistics (sessions seen, events per session) as SR3-protected
state — the same activity stream as the Fig. 1 applications.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.errors import WorkloadError
from repro.streaming.component import OutputCollector
from repro.streaming.groupings import FieldsGrouping
from repro.streaming.stateful import StatefulBolt
from repro.streaming.topology import Topology, TopologyBuilder
from repro.streaming.tuples import StreamTuple
from repro.streaming.windows import SessionWindow
from repro.workloads.clicks import ClickGenerator, ClickSpout


class SessionAnalyticsBolt(StatefulBolt):
    """Closes per-user sessions and aggregates lifetime session stats.

    State per user: ``(sessions_closed, total_events, longest_session)``.
    Emits ``(user, session_events, session_span, ts)`` whenever a session
    closes (gap exceeded). Call :meth:`finish` at end of stream to flush
    open sessions (the cluster invokes it via ``flush()``).
    """

    def __init__(self, gap: float = 50.0) -> None:
        super().__init__()
        if gap <= 0:
            raise WorkloadError("session gap must be positive")
        self.gap = gap
        self._window = SessionWindow(gap)

    def declare_output_fields(self) -> Tuple[str, ...]:
        return ("user", "session_events", "session_span", "ts")

    def process(self, tuple_: StreamTuple, collector: OutputCollector) -> None:
        user = tuple_["user"]
        ts = tuple_["ts"]
        closed = self._window.add(user, ts, tuple_["event"])
        if closed is not None:
            self._close(user, closed, ts, collector)

    def _close(self, user, pane, ts, collector: OutputCollector) -> None:
        sessions, events, longest = self.state.get(user, (0, 0, 0))
        session_events = len(pane.items)
        self.state.put(
            user,
            (sessions + 1, events + session_events, max(longest, session_events)),
        )
        collector.emit(
            (user, session_events, pane.end - pane.start, ts), timestamp=ts
        )

    def finish(self, collector: OutputCollector) -> None:
        """Flush every still-open session (end of stream)."""
        # flush() returns panes without keys; rebuild the mapping first.
        remaining: Dict[object, object] = dict(self._window._sessions)
        self._window.flush()
        for user, pane in remaining.items():
            self._close(user, pane, pane.end, collector)

    def stats_for(self, user) -> Tuple[int, int, int]:
        """(sessions_closed, total_events, longest_session) for one user."""
        return self.state.get(user, (0, 0, 0))


def build_session_analytics_topology(
    num_events: int = 5_000,
    seed: int = 0,
    gap: float = 50.0,
    parallelism: int = 2,
) -> Topology:
    """activity -> fields-grouped-by-user SessionAnalyticsBolt."""
    builder = TopologyBuilder("session-analytics")
    builder.set_spout("activity", ClickSpout(ClickGenerator(num_events, seed=seed)))
    builder.set_bolt(
        "sessions",
        SessionAnalyticsBolt(gap=gap),
        [("activity", FieldsGrouping(["user"]))],
        parallelism=parallelism,
    )
    return builder.build()
