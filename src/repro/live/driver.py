"""The live-traffic recovery harness: sustained ingest meets a mid-stream kill.

Everything else in the repo measures recovery on a quiescent network — the
driver measures it the way a user feels it. It plays a streaming topology
at a configurable events/second (any :class:`~repro.live.rates.RateCurve`),
mirrors the offered load into the network as first-class app flows so the
max-min allocator makes recovery transfers *compete* with ingest and
shuffle traffic, kills a state owner mid-stream, and keeps serving:

- tuples arriving while the pipeline is down queue up (replay lag grows);
- SR3 recovers the dead owner's state through the chosen mechanism while
  the app flows keep their fair share of every contended link;
- surviving tasks of the operator roll back to the last checkpoint
  barrier, the source rewinds to the same barrier, and the gap replays —
  a global-rollback, source-rewind protocol that keeps the counting state
  exactly-once (terminal *outputs* are at-least-once: tuples served
  before the crash are re-emitted during replay, as in upstream-backup
  systems);
- the backlog drains at the pipeline's service rate and the driver
  reports user-felt latency percentiles segmented before/during/after
  the recovery window.

The driver owns the event loop: it schedules its own ticks on the shared
simulator and never calls the re-entrant ``run_until_idle`` helpers that
the batch harness uses, so checkpoints, recoveries, and ingest all
interleave on one virtual clock.
"""

from __future__ import annotations

import itertools
import random
from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, Iterator, List, Optional, Tuple

from repro.dht.node import DhtNode
from repro.dht.overlay import Overlay
from repro.errors import LiveHarnessError
from repro.live.metrics import (
    BacklogTimeline,
    LatencyRecorder,
    LiveReport,
    PHASES,
    PhaseSummary,
    recovery_window,
)
from repro.live.rates import RateCurve
from repro.obs.tracer import Tracer, default_tracer, tracing_enabled
from repro.recovery.manager import MechanismImpl, RecoveryManager, RecoveryContext
from repro.sim.kernel import Simulator
from repro.sim.network import Flow, Host, Network
from repro.state.partitioner import partition_synthetic
from repro.state.version import StateVersion
from repro.streaming.backend import SR3StateBackend
from repro.streaming.cluster import LocalCluster
from repro.util.sizes import MB, mbit_per_s
from repro.workloads.wordcount import SentenceGenerator, build_wordcount_topology

__all__ = ["LiveCell", "build_live_cell", "LoadDriver"]

#: Backing generator length: effectively inexhaustible at bench rates.
_SOURCE_DEPTH = 10_000_000


@dataclass
class LiveCell:
    """One fully wired simulation cell the driver runs against."""

    sim: Simulator
    network: Network
    overlay: Overlay
    manager: RecoveryManager
    backend: SR3StateBackend
    cluster: LocalCluster
    tracer: Tracer
    ingest: Host
    source_id: str
    source_factory: Callable[[], Iterator[Tuple[str]]]
    link_bw: float
    seed: int


def build_live_cell(
    num_nodes: int = 32,
    seed: int = 0,
    link_mbit: float = 200.0,
    count_parallelism: int = 4,
    vocabulary_size: int = 2_000,
    zipf_s: float = 1.1,
    num_shards: int = 4,
    num_replicas: int = 2,
    trace_name: str = "live",
) -> LiveCell:
    """Wire overlay + network + wordcount topology for a live run.

    Every host gets a finite ``link_mbit`` up/down link so app flows and
    recovery transfers actually contend. The spout is built empty — the
    driver owns the event stream and injects records itself, pulling them
    from ``source_factory`` (a fresh, seed-deterministic iterator each
    call, which is what makes the post-failure source rewind exact).
    """
    # Phase segmentation needs real recovery spans even when global trace
    # collection is off, so fall back to a private tracer rather than the
    # null one.
    tracer = default_tracer(trace_name) if tracing_enabled() else Tracer(name=trace_name)
    sim = Simulator(tracer=tracer)
    network = Network(sim)
    link_bw = mbit_per_s(link_mbit)
    overlay = Overlay(sim, network, rng=random.Random(seed))
    overlay.build(
        num_nodes,
        host_factory=lambda name: network.add_host(name, up_bw=link_bw, down_bw=link_bw),
    )
    manager = RecoveryManager(RecoveryContext(sim, network, overlay))
    backend = SR3StateBackend(manager, num_shards=num_shards, num_replicas=num_replicas)
    topology = build_wordcount_topology(
        num_sentences=0,
        seed=seed,
        count_parallelism=count_parallelism,
        vocabulary_size=vocabulary_size,
    )
    cluster = LocalCluster(topology, backend=backend)
    cluster.protect_stateful_tasks()
    # The ingest frontier: one fat-uplink host fanning records out to the
    # operator hosts, so each task's *downlink* is the contended edge.
    ingest = network.add_host(
        "live/ingest",
        up_bw=link_bw * (count_parallelism + 1),
        down_bw=link_bw,
    )
    generator = SentenceGenerator(
        _SOURCE_DEPTH,
        vocabulary_size=vocabulary_size,
        zipf_s=zipf_s,
        seed=seed + 1,
    )

    def source_factory() -> Iterator[Tuple[str]]:
        return ((sentence,) for sentence in generator)

    return LiveCell(
        sim=sim,
        network=network,
        overlay=overlay,
        manager=manager,
        backend=backend,
        cluster=cluster,
        tracer=tracer,
        ingest=ingest,
        source_id="sentences",
        source_factory=source_factory,
        link_bw=link_bw,
        seed=seed,
    )


class LoadDriver:
    """Plays a rate curve against a :class:`LiveCell` and measures recovery.

    One instance drives one run. The tick loop, per tick: generate
    arrivals by integrating the rate curve (with fractional carry),
    mirror the instantaneous rate into the app-flow demands, take any due
    checkpoint, execute the scheduled kill, serve queued tuples up to the
    pipeline's service capacity, and sample the backlog.
    """

    def __init__(
        self,
        cell: LiveCell,
        rate: RateCurve,
        duration: float,
        tick: float = 0.1,
        service_rate: float = 4_000.0,
        bytes_per_event: float = 16_384.0,
        app_load: bool = True,
        shuffle_fraction: float = 0.5,
        checkpoint_at: Tuple[float, ...] = (),
        kill_at: Optional[float] = None,
        kill_task: Optional[Tuple[str, int]] = None,
        mechanism: Optional[MechanismImpl] = None,
        bulk_state_mb: float = 0.0,
        standby: bool = False,
        drain_grace: float = 120.0,
        telemetry=None,
        controller=None,
        poll_interval: float = 0.5,
    ) -> None:
        if duration <= 0:
            raise LiveHarnessError("duration must be positive")
        if tick <= 0:
            raise LiveHarnessError("tick must be positive")
        if service_rate <= 0:
            raise LiveHarnessError("service_rate must be positive")
        if bytes_per_event <= 0:
            raise LiveHarnessError("bytes_per_event must be positive")
        if not 0.0 <= shuffle_fraction <= 1.0:
            raise LiveHarnessError("shuffle_fraction must lie in [0, 1]")
        if bulk_state_mb < 0:
            raise LiveHarnessError("bulk_state_mb must be non-negative")
        if poll_interval <= 0:
            raise LiveHarnessError("poll_interval must be positive")
        self.cell = cell
        self.rate = rate
        self.duration = float(duration)
        self.tick = float(tick)
        self.service_rate = float(service_rate)
        self.bytes_per_event = float(bytes_per_event)
        self.app_load = app_load
        self.shuffle_fraction = float(shuffle_fraction)
        self.checkpoint_at = tuple(sorted(float(t) for t in checkpoint_at))
        self.kill_at = None if kill_at is None else float(kill_at)
        self.mechanism = mechanism
        self.bulk_state_mb = float(bulk_state_mb)
        #: Provision a warm standby for the kill target's states after
        #: every checkpoint barrier (incremental re-warm per barrier).
        self.standby = bool(standby)
        self.standby_syncs = 0
        # state name -> warm image bytes after its latest sync round.
        self._standby_warm: Dict[str, float] = {}
        self.drain_grace = float(drain_grace)

        self.sim = cell.sim
        self.cluster = cell.cluster
        self.backend = cell.backend
        self.manager = cell.manager
        self.network = cell.network

        # ----- telemetry / control-plane embedding
        #: A :class:`~repro.obs.timeseries.TelemetryPipeline` the driver
        #: samples once per tick (the driver owns the loop, so the
        #: pipeline's own scheduler stays off).
        self.telemetry = telemetry
        #: A :class:`~repro.control.controller.Controller` polled every
        #: ``poll_interval`` seconds; when set, the driver stops recovering
        #: on its own at the kill — the control plane must notice the fault
        #: (heartbeats, SLO burn) and begin recovery via ``poll()``.
        self.controller = controller
        self.poll_interval = float(poll_interval)
        self._next_poll = self.poll_interval
        self._served_mark = 0
        self._replayed_mark = 0
        self._latency_hist = self.sim.metrics.histogram("live.latency_s")
        if telemetry is not None:
            # Bounded raw observations feed the pipeline's windowed
            # percentile series (live.latency_s.p50 / .p99).
            self._latency_hist.keep_observations(8192)
        if controller is not None:
            controller.on_recovery_begun = self._controller_begun

        # task_id ("count[0]") -> (component_id, index) for every
        # protected task, captured while they are all still alive.
        self._task_keys: Dict[str, Tuple[str, int]] = {
            f"{cid}[{index}]": (cid, index)
            for (cid, index) in sorted(self.cluster.stateful_tasks())
        }
        if not self._task_keys:
            raise LiveHarnessError("the cell's topology has no stateful tasks")
        if kill_task is None:
            kill_task = self._task_keys[sorted(self._task_keys)[0]]
        self.kill_task = kill_task
        self._kill_tid = f"{kill_task[0]}[{kill_task[1]}]"
        if self._kill_tid not in self._task_keys:
            raise LiveHarnessError(f"kill target {self._kill_tid} is not a protected task")
        if self.kill_at is not None:
            if self.kill_at >= self.duration:
                raise LiveHarnessError("kill_at must fall inside the run duration")
            if not any(t < self.kill_at for t in self.checkpoint_at):
                raise LiveHarnessError(
                    "a checkpoint must land before kill_at: without a barrier "
                    "there is nothing consistent to roll back to"
                )

        # ----- event stream state
        self._stream: Optional[Iterator[Tuple[str]]] = None
        self._stream_index = 0  # records injected from the current stream position
        self._replay_boundary = 0  # replaying while stream_index < boundary
        self._arrivals: Deque[float] = deque()  # pending arrival timestamps
        self._carry = 0.0  # fractional arrivals between ticks
        self._credit = 0.0  # fractional service capacity between ticks
        self._gen_cursor = 0.0  # arrivals generated up to this time
        self._last_tick = 0.0
        self._arrived = 0
        self._served = 0
        self._replayed = 0
        self._injected = 0

        # ----- checkpoint barrier state
        self._cp_pointer = 0
        self._pending_barrier: Optional[dict] = None  # save round in flight
        self._barrier: Optional[dict] = None  # last fully landed round
        self._bulk_name: Optional[str] = None
        self._bulk_saved = False

        # ----- failure state
        self._killed = False
        self._stalled = False
        self._killed_at: Optional[float] = None
        self._recovered_at: Optional[float] = None
        self._recoveries_left = 0
        self._replacement: Optional[DhtNode] = None
        self._catchup_mark: Optional[Tuple[float, int]] = None
        self._catchup_rate: Optional[float] = None

        # ----- app flows
        self._ingest_flows: Dict[str, Flow] = {}
        self._shuffle_flows: List[Tuple[str, str, Flow]] = []

        # ----- run bookkeeping
        self._recorder = LatencyRecorder()
        self._backlog = BacklogTimeline()
        self._ran = False
        self._done = False
        self._end: Optional[float] = None

        if self.bulk_state_mb > 0:
            owner = self.backend.protected_tasks()[self._kill_tid].node
            shards = partition_synthetic(
                "live/bulk",
                int(self.bulk_state_mb * MB),
                max(4, self.backend.num_shards),
                StateVersion(0.0, 1),
            )
            self.manager.register(owner, shards, num_replicas=self.backend.num_replicas)
            self._bulk_name = "live/bulk"

    # ------------------------------------------------------------------ run

    def run(self) -> LiveReport:
        """Drive the whole scenario to completion and report."""
        if self._ran:
            raise LiveHarnessError("a LoadDriver instance runs exactly once")
        self._ran = True
        self._stream = iter(self.cell.source_factory())
        if self.app_load:
            self._open_app_flows()
        self.sim.schedule(self.tick, self._tick)
        self.sim.run_until_idle()
        if not self._done:
            raise LiveHarnessError("simulation went idle before the driver finalized")
        return self._build_report()

    # ----------------------------------------------------------- tick loop

    def _tick(self) -> None:
        t = self.sim.now
        self._maybe_checkpoint(t)
        self._generate_arrivals(t)
        if self.app_load:
            self._update_demands(t)
        self._serve(t)
        # Kill after serving: the crash lands between ticks, so the tuples
        # that arrived up to the kill instant were already handled and the
        # stall starts exactly at the next arrival.
        self._maybe_kill(t)
        backlog = len(self._arrivals) + max(0, self._replay_boundary - self._stream_index)
        self._backlog.sample(t, backlog)
        self.sim.metrics.series("live.backlog").record(t, float(backlog))
        self._sample_series(t)
        if (
            self._recovered_at is not None
            and self._catchup_mark is not None
            and self._catchup_rate is None
            and backlog == 0
        ):
            t0, injected0 = self._catchup_mark
            if t > t0:
                self._catchup_rate = (self._injected - injected0) / (t - t0)
        self._last_tick = t

        drained = backlog == 0 and not self._stalled
        finished_load = self._gen_cursor >= self.duration
        killed_ok = self.kill_at is None or self._recovered_at is not None
        if finished_load and drained and killed_ok and self._pending_barrier is None:
            self._finalize(t)
            return
        if t >= self.duration + self.drain_grace:
            self._finalize(t)
            return
        self.sim.schedule(self.tick, self._tick)

    def _sample_series(self, t: float) -> None:
        """Per-tick instrumentation, then the telemetry/control pump."""
        dt = t - self._last_tick
        metrics = self.sim.metrics
        if dt > 0:
            metrics.series("live.throughput").record(
                t, (self._served - self._served_mark) / dt
            )
            metrics.series("live.replay_rate").record(
                t, (self._replayed - self._replayed_mark) / dt
            )
            metrics.series("live.arrival_rate").record(
                t, self.rate.rate_at(min(t, self.duration))
            )
        self._served_mark = self._served
        self._replayed_mark = self._replayed
        if self.telemetry is not None:
            self.telemetry.sample(t)
        if self.controller is not None and t >= self._next_poll:
            self.controller.poll()
            self._next_poll = t + self.poll_interval

    def _generate_arrivals(self, t: float) -> None:
        t1 = min(t, self.duration)
        t0 = self._gen_cursor
        if t1 <= t0:
            return
        expected = self.rate.events_between(t0, t1) + self._carry
        count = int(expected)
        self._carry = expected - count
        if count > 0:
            step = (t1 - t0) / count
            for i in range(1, count + 1):
                self._arrivals.append(t0 + i * step)
            self._arrived += count
        self._gen_cursor = t1

    def _serve(self, t: float) -> None:
        if self._stalled:
            return
        self._credit += self.service_rate * (t - self._last_tick)
        while self._credit >= 1.0:
            if self._stream_index < self._replay_boundary:
                self._inject_next(t, replay=True)
            elif self._arrivals:
                self._inject_next(t, replay=False)
            else:
                break
            self._credit -= 1.0
        if not self._arrivals and self._stream_index >= self._replay_boundary:
            # Idle capacity does not bank up: a pipeline that sat idle for
            # a minute cannot process a minute of tuples instantaneously.
            self._credit = min(self._credit, 1.0)

    def _inject_next(self, t: float, replay: bool) -> None:
        assert self._stream is not None
        record = next(self._stream, None)
        if record is None:
            raise LiveHarnessError(
                "backing source exhausted; the generator must outlast the run"
            )
        self.cluster.inject(self.cell.source_id, record, timestamp=float(self._stream_index))
        self._stream_index += 1
        self._injected += 1
        if replay:
            self._replayed += 1
        else:
            arrival = self._arrivals.popleft()
            self._recorder.record(arrival, t)
            self._latency_hist.observe(t - arrival, at=t)
            self._served += 1

    # --------------------------------------------------------- checkpoints

    def _maybe_checkpoint(self, t: float) -> None:
        if self._killed or self._pending_barrier is not None:
            return
        if self._cp_pointer >= len(self.checkpoint_at):
            return
        if self.checkpoint_at[self._cp_pointer] > t:
            return
        self._cp_pointer += 1
        handles = self.backend.save_all(incremental=True)
        if self._bulk_name is not None and not self._bulk_saved:
            handles.append(self.manager.save(self._bulk_name))
            self._bulk_saved = True
        # The barrier image: every store snapshotted at the same instant
        # the save rounds read them, plus the stream position. Nothing has
        # been served between the two snapshots, so the cut is consistent.
        snaps = {
            tid: self.backend.protected_tasks()[tid].store.snapshot(t)
            for tid in sorted(self._task_keys)
        }
        pending = {"index": self._stream_index, "snaps": snaps, "left": len(handles)}
        self._pending_barrier = pending
        for handle in handles:
            handle.on_done(lambda _result, p=pending: self._save_landed(p))

    def _save_landed(self, pending: dict) -> None:
        pending["left"] -= 1
        if pending["left"] == 0 and self._pending_barrier is pending:
            self._barrier = pending
            self._pending_barrier = None
            if self.standby and not self._killed:
                self._provision_standby()

    def _provision_standby(self) -> None:
        """Warm (or re-warm) a standby for the kill target's states.

        Runs after each checkpoint barrier fully lands, so the standby
        tracks the newest save round. The sync is incremental — only the
        segments the standby is missing ride the network (tagged
        ``standby.sync``, contending with app flows like any transfer) —
        which *is* the steady-state overhead the standby tier pays.
        """
        from repro.recovery.standby import sync_standby

        owner = self.backend.protected_tasks()[self._kill_tid].node
        standby = self._predict_replacement(owner)
        if standby is None:
            return
        for name in sorted(self.manager.states):
            registered = self.manager.states[name]
            if registered.owner.node_id != owner.node_id:
                continue
            if registered.plan is None:
                continue
            sync = sync_standby(self.manager.ctx, registered, standby)
            sync.on_done(
                lambda report, n=name: self._standby_warm.__setitem__(
                    n, report.warm_bytes
                )
            )
            self.standby_syncs += 1

    @property
    def standby_warm_bytes(self) -> float:
        """Total warm image resident on the standby (steady-state memory)."""
        return float(sum(self._standby_warm.values()))

    def _predict_replacement(self, owner: DhtNode) -> Optional[DhtNode]:
        """The node that *will* replace ``owner``, computed pre-failure.

        Mirrors :meth:`Overlay.responsible_node`'s closest-node rule with
        the owner excluded, so the standby lands exactly where recovery
        will run — takeover then finds every synced segment local.
        """
        candidates = [
            n
            for n in self.cell.overlay.alive_nodes()
            if n.node_id != owner.node_id
        ]
        if not candidates:
            return None
        return min(
            candidates,
            key=lambda n: (owner.node_id.distance(n.node_id), n.node_id.value),
        )

    # -------------------------------------------------------------- failure

    def _maybe_kill(self, t: float) -> None:
        if self.kill_at is None or self._killed or t < self.kill_at:
            return
        if self._pending_barrier is not None:
            # A save round is mid-flight: killing now would leave the
            # landed image newer than the driver's barrier. Defer one tick.
            return
        if self._barrier is None:
            raise LiveHarnessError("kill due but no checkpoint barrier has landed")
        self._do_kill(t)

    def _do_kill(self, t: float) -> None:
        self._killed = True
        self._stalled = True
        self._killed_at = t
        cid, index = self.kill_task
        owner = self.backend.protected_tasks()[self._kill_tid].node
        self.cluster.kill_task(cid, index)
        # With a heartbeat detector watching, instant leaf-set repair would
        # remove the dead member before any ping could miss — the death
        # must be *detected*, not administratively erased.
        detector_watching = (
            self.controller is not None and self.controller.world.detector is not None
        )
        self.cell.overlay.fail_node(owner, repair=not detector_watching)
        replacement = self.cell.overlay.replacement_for(owner)
        self._replacement = replacement
        if self.app_load:
            self._reroute_flows(owner, replacement)
        if self.controller is not None:
            # Fault injection only: the control plane must notice the
            # death on its own (heartbeat declarations, SLO burn) and
            # begin recovery through poll(); _controller_begun chains the
            # revive/rollback/rewind onto whatever it starts.
            return
        handles = []
        for name in sorted(self.manager.states):
            registered = self.manager.states[name]
            if registered.owner.node_id == owner.node_id:
                handles.append(self.manager.recover(name, replacement, self.mechanism))
        if not handles:
            raise LiveHarnessError(f"dead owner {owner.name} held no recoverable state")
        self._recoveries_left = len(handles)
        for handle in handles:
            handle.on_done(self._recovery_landed)

    def _controller_begun(self, state_name: str, handle) -> None:
        """The controller's poll() started a recovery: chain revival to it."""
        del state_name
        self._recoveries_left += 1
        handle.on_done(self._recovery_landed)

    def _reroute_flows(self, dead: DhtNode, replacement: DhtNode) -> None:
        """Re-open app flows the host failure aborted, onto the replacement.

        The source keeps producing during the outage; its traffic now
        lands on the replacement — which is exactly the link the recovery
        mechanisms are fetching state over.
        """
        for tid, flow in list(self._ingest_flows.items()):
            if flow.aborted:
                self._ingest_flows[tid] = self.network.open_app_flow(
                    self.cell.ingest,
                    replacement.host,
                    demand=flow.demand,
                    tag=f"live/ingest/{tid}",
                )
        rerouted = []
        for src_tid, dst_tid, flow in self._shuffle_flows:
            if flow.aborted:
                src_host = self._task_host(src_tid, dead, replacement)
                dst_host = self._task_host(dst_tid, dead, replacement)
                flow = self.network.open_app_flow(
                    src_host,
                    dst_host,
                    demand=flow.demand,
                    tag=f"live/shuffle/{src_tid}->{dst_tid}",
                )
            rerouted.append((src_tid, dst_tid, flow))
        self._shuffle_flows = rerouted

    def _task_host(self, tid: str, dead: DhtNode, replacement: DhtNode) -> Host:
        node = self.backend.protected_tasks()[tid].node
        if node.node_id == dead.node_id:
            return replacement.host
        return node.host

    def _recovery_landed(self, _result) -> None:
        self._recoveries_left -= 1
        if self._recoveries_left > 0:
            return
        t = self.sim.now
        self._recovered_at = t
        barrier = self._barrier
        assert barrier is not None
        cid, index = self.kill_task
        # The dead task restarts from its SR3-recovered image (the same
        # save round the barrier captured — kills are deferred while a
        # round is in flight, so they cannot diverge).
        store = self.backend.rebuild_store(self._kill_tid)
        self.cluster.revive_task(cid, index, store=store)
        if self._replacement is not None:
            self.backend.protected_tasks()[self._kill_tid].node = self._replacement
        # Survivors roll back to the same barrier locally.
        for tid, key in sorted(self._task_keys.items()):
            if tid == self._kill_tid:
                continue
            survivor_store = self.backend.rollback_task(tid, barrier["snaps"][tid])
            self.cluster.task(*key).attach_state(survivor_store)
        # Rewind the source to the barrier and mark the replay gap: every
        # record injected between the barrier and the kill goes through
        # again, against the rolled-back stores.
        self._replay_boundary = self._stream_index
        rewind_to = barrier["index"]
        self._stream = iter(self.cell.source_factory())
        if rewind_to:
            deque(itertools.islice(self._stream, rewind_to), maxlen=0)
        self._stream_index = rewind_to
        self._stalled = False
        self._catchup_mark = (t, self._injected)
        self.sim.metrics.counter("live.recoveries").add(1)

    # ------------------------------------------------------------ app flows

    def _open_app_flows(self) -> None:
        per_task, per_shuffle = self._demands(0.0)
        tids = sorted(self._task_keys)
        for tid in tids:
            host = self.backend.protected_tasks()[tid].node.host
            self._ingest_flows[tid] = self.network.open_app_flow(
                self.cell.ingest, host, demand=per_task, tag=f"live/ingest/{tid}"
            )
        if self.shuffle_fraction > 0 and len(tids) > 1:
            for i, src_tid in enumerate(tids):
                dst_tid = tids[(i + 1) % len(tids)]
                flow = self.network.open_app_flow(
                    self.backend.protected_tasks()[src_tid].node.host,
                    self.backend.protected_tasks()[dst_tid].node.host,
                    demand=per_shuffle,
                    tag=f"live/shuffle/{src_tid}->{dst_tid}",
                )
                self._shuffle_flows.append((src_tid, dst_tid, flow))

    def _demands(self, t: float) -> Tuple[float, float]:
        total = self.rate.rate_at(t) * self.bytes_per_event
        per_task = max(1.0, total / len(self._task_keys))
        return per_task, max(1.0, per_task * self.shuffle_fraction)

    def _update_demands(self, t: float) -> None:
        per_task, per_shuffle = self._demands(t)
        for flow in self._ingest_flows.values():
            if not flow.aborted and abs(per_task - flow.demand) > 0.01 * flow.demand:
                self.network.set_flow_demand(flow, per_task)
        for _src, _dst, flow in self._shuffle_flows:
            if not flow.aborted and abs(per_shuffle - flow.demand) > 0.01 * flow.demand:
                self.network.set_flow_demand(flow, per_shuffle)

    def _close_app_flows(self) -> None:
        for flow in self._ingest_flows.values():
            if not flow.aborted:
                self.network.close_app_flow(flow)
        for _src, _dst, flow in self._shuffle_flows:
            if not flow.aborted:
                self.network.close_app_flow(flow)

    # -------------------------------------------------------------- report

    def _finalize(self, t: float) -> None:
        self._done = True
        self._end = t
        if self.app_load:
            self._close_app_flows()
        # Self-rescheduling attachments must stop or the simulator never
        # goes idle and run() never returns.
        if self.telemetry is not None and getattr(self.telemetry, "running", False):
            self.telemetry.stop()
        if self.controller is not None:
            detector = self.controller.world.detector
            if detector is not None and getattr(detector, "running", False):
                detector.stop()

    def _build_report(self) -> LiveReport:
        window = recovery_window(self.cell.tracer)
        if window is None and self._killed_at is not None:
            window = (self._killed_at, self._recovered_at or self._end or self._killed_at)
        elif window is not None and self._killed_at is not None:
            # The user feels the outage from the kill, not from the moment
            # detection fires and the first recovery span opens.
            window = (min(window[0], self._killed_at), window[1])
        split = self._recorder.split(window)
        phases: Dict[str, Optional[PhaseSummary]] = {}
        for name in PHASES:
            latencies = split.get(name, [])
            phases[name] = (
                PhaseSummary.from_latencies(name, latencies) if latencies else None
            )
        recovery_s = None
        if self._killed_at is not None and self._recovered_at is not None:
            recovery_s = self._recovered_at - self._killed_at
        drained_at = None
        drain_s = None
        if self._recovered_at is not None:
            drained_at = self._backlog.first_drain_after(self._recovered_at)
            if drained_at is not None:
                drain_s = drained_at - self._recovered_at
        lag_at_recovery = (
            self._backlog.lag_at(self._recovered_at)
            if self._recovered_at is not None
            else 0
        )
        return LiveReport(
            arrived=self._arrived,
            served=self._served,
            replayed=self._replayed,
            phases=phases,
            killed_at=self._killed_at,
            recovered_at=self._recovered_at,
            recovery_s=recovery_s,
            recovery_window=window,
            replay_lag_peak=self._backlog.peak(),
            replay_lag_at_recovery=lag_at_recovery,
            drained_at=drained_at,
            drain_s=drain_s,
            catchup_events_per_s=self._catchup_rate,
            backlog=self._backlog,
        )
