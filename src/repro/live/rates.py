"""Composable ingest-rate curves for the live-traffic driver.

A :class:`RateCurve` maps simulated time to an offered load in events per
second. The driver integrates it per tick to decide how many tuples
arrive, and mirrors it into the network's app-flow demands so the max-min
allocator sees the same load the topology does.

Curves compose: ``base + flash`` superimposes a flash crowd on a diurnal
baseline, ``curve * 2.0`` doubles it. Key skew is not a rate property —
the Zipf-hot-key behaviour comes from the workload generators' ``zipf_s``
knob; the curve only shapes *when* events arrive, not *which* keys they
touch.
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Sequence

from repro.errors import WorkloadError

__all__ = [
    "RateCurve",
    "ConstantRate",
    "DiurnalRate",
    "FlashCrowd",
    "rate_curve_from_dict",
]


class RateCurve:
    """Offered load over simulated time (events/second)."""

    def rate_at(self, t: float) -> float:
        """Instantaneous events/second at time ``t``."""
        raise NotImplementedError

    def events_between(self, t0: float, t1: float) -> float:
        """Expected event count in [t0, t1) — midpoint rule by default.

        Exact for constant and piecewise-linear segments sampled at tick
        granularity; the driver carries the fractional remainder between
        ticks so no arrival is lost to rounding.
        """
        if t1 < t0:
            raise WorkloadError("events_between needs t1 >= t0")
        return self.rate_at((t0 + t1) / 2.0) * (t1 - t0)

    def __add__(self, other: "RateCurve") -> "RateCurve":
        if not isinstance(other, RateCurve):
            return NotImplemented
        return _SumRate(self, other)

    def __mul__(self, factor: float) -> "RateCurve":
        if not isinstance(factor, (int, float)):
            return NotImplemented
        return _ScaledRate(self, float(factor))

    __rmul__ = __mul__


class ConstantRate(RateCurve):
    """A flat ``rate`` events/second."""

    def __init__(self, rate: float) -> None:
        if rate < 0:
            raise WorkloadError("rate must be non-negative")
        self.rate = float(rate)

    def rate_at(self, t: float) -> float:
        return self.rate

    def events_between(self, t0: float, t1: float) -> float:
        if t1 < t0:
            raise WorkloadError("events_between needs t1 >= t0")
        return self.rate * (t1 - t0)

    def __repr__(self) -> str:
        return f"ConstantRate({self.rate:g})"


class DiurnalRate(RateCurve):
    """A sinusoidal day/night load swing around ``base``.

    ``rate(t) = base * (1 + amplitude * sin(2*pi*(t - phase)/period))``,
    clamped at zero. ``amplitude`` in [0, 1] keeps the curve non-negative
    on its own; larger swings are allowed and simply clip at zero load.
    """

    def __init__(
        self,
        base: float,
        amplitude: float = 0.5,
        period: float = 86_400.0,
        phase: float = 0.0,
    ) -> None:
        if base < 0:
            raise WorkloadError("base rate must be non-negative")
        if amplitude < 0:
            raise WorkloadError("amplitude must be non-negative")
        if period <= 0:
            raise WorkloadError("period must be positive")
        self.base = float(base)
        self.amplitude = float(amplitude)
        self.period = float(period)
        self.phase = float(phase)

    def rate_at(self, t: float) -> float:
        swing = math.sin(2.0 * math.pi * (t - self.phase) / self.period)
        return max(0.0, self.base * (1.0 + self.amplitude * swing))

    def __repr__(self) -> str:
        return (
            f"DiurnalRate(base={self.base:g}, amplitude={self.amplitude:g}, "
            f"period={self.period:g})"
        )


class FlashCrowd(RateCurve):
    """A sudden traffic spike: linear ramp, plateau, linear decay.

    Flat at ``base`` until ``at``; climbs linearly to ``peak`` over
    ``ramp`` seconds; holds for ``hold`` seconds; decays linearly back to
    ``base`` over ``decay`` seconds. The canonical stress pattern for
    recovery-under-load: kill the owner near the plateau and the
    replacement's downlink is contended exactly when the state must move.
    """

    def __init__(
        self,
        base: float,
        peak: float,
        at: float,
        ramp: float = 5.0,
        hold: float = 10.0,
        decay: float = 10.0,
    ) -> None:
        if base < 0 or peak < 0:
            raise WorkloadError("rates must be non-negative")
        if peak < base:
            raise WorkloadError("flash-crowd peak must be >= base")
        if at < 0:
            raise WorkloadError("spike start must be non-negative")
        if ramp < 0 or hold < 0 or decay < 0:
            raise WorkloadError("ramp/hold/decay must be non-negative")
        self.base = float(base)
        self.peak = float(peak)
        self.at = float(at)
        self.ramp = float(ramp)
        self.hold = float(hold)
        self.decay = float(decay)

    def rate_at(self, t: float) -> float:
        if t < self.at:
            return self.base
        t -= self.at
        if t < self.ramp:
            return self.base + (self.peak - self.base) * (t / self.ramp)
        t -= self.ramp
        if t < self.hold:
            return self.peak
        t -= self.hold
        if t < self.decay:
            return self.peak - (self.peak - self.base) * (t / self.decay)
        return self.base

    def __repr__(self) -> str:
        return (
            f"FlashCrowd(base={self.base:g}, peak={self.peak:g}, "
            f"at={self.at:g}, ramp={self.ramp:g}, hold={self.hold:g}, "
            f"decay={self.decay:g})"
        )


class _SumRate(RateCurve):
    """Superposition of two curves."""

    def __init__(self, left: RateCurve, right: RateCurve) -> None:
        self.left = left
        self.right = right

    def rate_at(self, t: float) -> float:
        return self.left.rate_at(t) + self.right.rate_at(t)

    def events_between(self, t0: float, t1: float) -> float:
        return self.left.events_between(t0, t1) + self.right.events_between(t0, t1)

    def __repr__(self) -> str:
        return f"({self.left!r} + {self.right!r})"


class _ScaledRate(RateCurve):
    """A curve multiplied by a non-negative factor."""

    def __init__(self, inner: RateCurve, factor: float) -> None:
        if factor < 0:
            raise WorkloadError("rate scale factor must be non-negative")
        self.inner = inner
        self.factor = factor

    def rate_at(self, t: float) -> float:
        return self.inner.rate_at(t) * self.factor

    def events_between(self, t0: float, t1: float) -> float:
        return self.inner.events_between(t0, t1) * self.factor

    def __repr__(self) -> str:
        return f"({self.inner!r} * {self.factor:g})"


_CURVE_KINDS = ("constant", "diurnal", "flash", "sum", "scaled")


def rate_curve_from_dict(spec: Dict) -> RateCurve:
    """Build a curve from its declarative form (scenario files, CLI).

    ``{"kind": "constant", "rate": 200}``;
    ``{"kind": "diurnal", "base": 100, "amplitude": 0.5, "period": 60}``;
    ``{"kind": "flash", "base": 100, "peak": 1000, "at": 15, "ramp": 3,
    "hold": 6, "decay": 8}``; ``{"kind": "sum", "parts": [...]}``;
    ``{"kind": "scaled", "curve": {...}, "factor": 2.0}``.
    """
    if not isinstance(spec, dict):
        raise WorkloadError(f"rate-curve spec must be a dict, got {type(spec).__name__}")
    kind = spec.get("kind")
    if kind == "constant":
        return ConstantRate(_num(spec, "rate"))
    if kind == "diurnal":
        return DiurnalRate(
            _num(spec, "base"),
            amplitude=_num(spec, "amplitude", 0.5),
            period=_num(spec, "period", 86_400.0),
            phase=_num(spec, "phase", 0.0),
        )
    if kind == "flash":
        return FlashCrowd(
            _num(spec, "base"),
            _num(spec, "peak"),
            _num(spec, "at"),
            ramp=_num(spec, "ramp", 5.0),
            hold=_num(spec, "hold", 10.0),
            decay=_num(spec, "decay", 10.0),
        )
    if kind == "sum":
        parts: Sequence = spec.get("parts", ())
        if not parts:
            raise WorkloadError("sum curve needs a non-empty 'parts' list")
        curve = rate_curve_from_dict(parts[0])
        for part in parts[1:]:
            curve = curve + rate_curve_from_dict(part)
        return curve
    if kind == "scaled":
        if "curve" not in spec:
            raise WorkloadError("scaled curve needs an inner 'curve'")
        return rate_curve_from_dict(spec["curve"]) * _num(spec, "factor", 1.0)
    raise WorkloadError(
        f"unknown rate-curve kind {kind!r}; known: {_CURVE_KINDS}"
    )


def _num(spec: Dict, key: str, default: Optional[float] = None) -> float:
    value = spec.get(key, default)
    if value is None:
        raise WorkloadError(f"rate-curve spec missing required key {key!r}")
    if not isinstance(value, (int, float)):
        raise WorkloadError(f"rate-curve key {key!r} must be a number")
    return float(value)
