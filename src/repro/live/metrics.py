"""User-felt metrics for recovery under live traffic.

The numbers the fault-recovery benchmarking literature (Vogel et al.,
arXiv 2404.06203 / 2405.07917) argues actually matter in production:
per-tuple end-to-end latency percentiles segmented around the recovery
window, how far the source reader fell behind (replay lag), how fast the
pipeline caught back up, and how long until the backlog drained.

Phases are keyed off the recovery spans the mechanisms emit into
``repro.obs`` — "during" is the union window of every root recovery span,
and a tuple belongs to the phase its *arrival* falls in (a user who
clicked during the outage experienced the outage, whenever their click
finally got served).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.obs.critical_path import recovery_roots
from repro.util.stats import percentiles

__all__ = [
    "LATENCY_PERCENTILES",
    "PhaseSummary",
    "LatencyRecorder",
    "BacklogTimeline",
    "LiveReport",
    "recovery_window",
]

#: The latency points every phase summary reports.
LATENCY_PERCENTILES = (50.0, 95.0, 99.0, 99.9)

#: Phase names in report order.
PHASES = ("before", "during", "after")


@dataclass(frozen=True)
class PhaseSummary:
    """Latency percentiles of the tuples arriving in one phase."""

    phase: str
    count: int
    p50: float
    p95: float
    p99: float
    p999: float
    mean: float
    maximum: float

    @classmethod
    def from_latencies(cls, phase: str, latencies: List[float]) -> "PhaseSummary":
        if not latencies:
            raise ValueError(f"no samples in phase {phase!r}")
        points = percentiles(latencies, LATENCY_PERCENTILES)
        return cls(
            phase=phase,
            count=len(latencies),
            p50=points[50.0],
            p95=points[95.0],
            p99=points[99.0],
            p999=points[99.9],
            mean=sum(latencies) / len(latencies),
            maximum=max(latencies),
        )

    def as_dict(self) -> Dict[str, float]:
        return {
            "count": float(self.count),
            "p50_s": self.p50,
            "p95_s": self.p95,
            "p99_s": self.p99,
            "p999_s": self.p999,
            "mean_s": self.mean,
            "max_s": self.maximum,
        }


class LatencyRecorder:
    """Per-tuple (arrival, completion) pairs, split into phases at report time."""

    def __init__(self) -> None:
        self._events: List[Tuple[float, float]] = []

    def record(self, arrival: float, completion: float) -> None:
        self._events.append((arrival, completion))

    def __len__(self) -> int:
        return len(self._events)

    def split(
        self, window: Optional[Tuple[float, float]]
    ) -> Dict[str, List[float]]:
        """Latencies per phase, keyed by the tuple's *arrival* time.

        ``window`` is the (start, end) of the recovery on the simulated
        clock; with no window (no failure happened) every tuple is
        "before".
        """
        phases: Dict[str, List[float]] = {name: [] for name in PHASES}
        if window is None:
            phases["before"] = [done - ts for ts, done in self._events]
            return phases
        start, end = window
        for ts, done in self._events:
            if ts < start:
                phase = "before"
            elif ts <= end:
                phase = "during"
            else:
                phase = "after"
            phases[phase].append(done - ts)
        return phases


class BacklogTimeline:
    """Sampled source backlog (unserved + unreplayed events) over time."""

    def __init__(self) -> None:
        self._samples: List[Tuple[float, int]] = []

    def sample(self, t: float, backlog: int) -> None:
        self._samples.append((t, backlog))

    @property
    def samples(self) -> List[Tuple[float, int]]:
        return list(self._samples)

    def peak(self) -> int:
        """Largest observed backlog (the replay-lag high-water mark)."""
        return max((lag for _, lag in self._samples), default=0)

    def lag_at(self, t: float) -> int:
        """Backlog at the last sample taken at or before ``t``."""
        lag = 0
        for ts, value in self._samples:
            if ts > t:
                break
            lag = value
        return lag

    def first_drain_after(self, t: float) -> Optional[float]:
        """First sample time >= ``t`` where the backlog hit zero."""
        for ts, value in self._samples:
            if ts >= t and value == 0:
                return ts
        return None


def recovery_window(tracer) -> Optional[Tuple[float, float]]:
    """The union (start, end) window of all root recovery spans.

    With concurrent recoveries (the operator's state plus co-located bulk
    state on the same dead owner) the window covers the first start to the
    last finish — the pipeline cannot resume before everything is back.
    """
    roots = recovery_roots(tracer)
    if not roots:
        return None
    start = min(span.start for span in roots)
    end = max(span.effective_end for span in roots)
    return (start, end)


@dataclass
class LiveReport:
    """Everything one live run measured."""

    arrived: int
    served: int
    replayed: int
    phases: Dict[str, Optional[PhaseSummary]]
    killed_at: Optional[float]
    recovered_at: Optional[float]
    recovery_s: Optional[float]
    recovery_window: Optional[Tuple[float, float]]
    replay_lag_peak: int
    replay_lag_at_recovery: int
    drained_at: Optional[float]
    drain_s: Optional[float]
    catchup_events_per_s: Optional[float]
    backlog: BacklogTimeline = field(repr=False, default_factory=BacklogTimeline)

    def phase(self, name: str) -> PhaseSummary:
        summary = self.phases.get(name)
        if summary is None:
            raise KeyError(f"phase {name!r} has no samples")
        return summary

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "arrived": self.arrived,
            "served": self.served,
            "replayed": self.replayed,
            "killed_at_s": self.killed_at,
            "recovered_at_s": self.recovered_at,
            "recovery_s": self.recovery_s,
            "replay_lag_peak": self.replay_lag_peak,
            "replay_lag_at_recovery": self.replay_lag_at_recovery,
            "drain_s": self.drain_s,
            "catchup_events_per_s": self.catchup_events_per_s,
            "phases": {
                name: (summary.as_dict() if summary is not None else None)
                for name, summary in self.phases.items()
            },
        }
        return out

    def format(self) -> str:
        """A terminal-friendly phase table (the example script's output)."""
        lines = [
            f"arrived={self.arrived} served={self.served} "
            f"replayed={self.replayed} "
            f"replay_lag_peak={self.replay_lag_peak}"
        ]
        if self.recovery_s is not None:
            lines.append(
                f"recovery {self.recovery_s:.3f}s"
                + (
                    f", drain {self.drain_s:.3f}s"
                    if self.drain_s is not None and not math.isinf(self.drain_s)
                    else ", backlog never drained"
                )
            )
        header = f"{'phase':8s} {'count':>7s} {'p50':>9s} {'p95':>9s} {'p99':>9s} {'p99.9':>9s}"
        lines.append(header)
        for name in PHASES:
            summary = self.phases.get(name)
            if summary is None:
                continue
            lines.append(
                f"{name:8s} {summary.count:7d} "
                f"{summary.p50 * 1e3:8.1f}ms {summary.p95 * 1e3:8.1f}ms "
                f"{summary.p99 * 1e3:8.1f}ms {summary.p999 * 1e3:8.1f}ms"
            )
        return "\n".join(lines)
