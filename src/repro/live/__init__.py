"""Live-traffic recovery harness: sustained ingest, interference, user-felt metrics.

``repro.live`` measures what a *user* of the streaming application feels
when a state owner dies mid-stream: the load driver plays a rate curve
against a topology, mirrors the offered load into the network's max-min
allocator as first-class app flows, kills an owner, and reports latency
percentiles segmented around the recovery window, replay lag, catch-up
throughput, and time-to-drain.
"""

from repro.live.driver import LiveCell, LoadDriver, build_live_cell
from repro.live.metrics import (
    LATENCY_PERCENTILES,
    BacklogTimeline,
    LatencyRecorder,
    LiveReport,
    PhaseSummary,
    recovery_window,
)
from repro.live.rates import (
    ConstantRate,
    DiurnalRate,
    FlashCrowd,
    RateCurve,
    rate_curve_from_dict,
)

__all__ = [
    "LiveCell",
    "LoadDriver",
    "build_live_cell",
    "LATENCY_PERCENTILES",
    "BacklogTimeline",
    "LatencyRecorder",
    "LiveReport",
    "PhaseSummary",
    "recovery_window",
    "ConstantRate",
    "DiurnalRate",
    "FlashCrowd",
    "RateCurve",
    "rate_curve_from_dict",
]
