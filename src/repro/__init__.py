"""SR3: Customizable Recovery for Stateful Stream Processing Systems.

A faithful, fully self-contained Python reproduction of the Middleware '20
paper by Xu, Liu, Cruz-Diaz, Da Silva and Hu. The package contains:

- ``repro.sim`` — a deterministic discrete-event cluster simulator with a
  max-min fair flow-level network (replaces the paper's 50-VM testbed);
- ``repro.dht`` — a Pastry-style DHT overlay (routing tables, leaf sets,
  O(log N) routing, self-repair);
- ``repro.multicast`` — Scribe-style topic trees;
- ``repro.state`` — hashtable state stores, shards, replication,
  placement, and version control;
- ``repro.recovery`` — the star-, line- and tree-structured recovery
  mechanisms, the Fig. 7 selection heuristic, and the baselines
  (checkpointing, replication, DStream lineage, FP4S erasure coding with
  a real GF(2^8) Reed-Solomon code);
- ``repro.streaming`` — a Storm-like topology engine with stateful bolts
  and the SR3 state backend;
- ``repro.workloads`` — seeded synthetic equivalents of the paper's
  datasets and the Fig. 1 applications;
- ``repro.bench`` — the experiment harness regenerating every table and
  figure of the evaluation;
- ``repro.obs`` — deterministic span tracing and the metrics registry
  behind every layer above;
- ``repro.control`` — the closed-loop auto-remediation control plane
  (diagnose → plan → act → verify over a live deployment);
- ``repro.live`` — the live-traffic recovery harness: sustained ingest,
  app-flow interference, and user-felt latency metrics around failures.

Quick start: :class:`repro.SR3` (see ``examples/quickstart.py``).
"""

from repro.api import SR3, SelectionResult, SplitResult
from repro.control import (
    ControlConfig,
    Controller,
    ControlPlane,
    Diagnosis,
    PolicyRule,
    PolicyTable,
    RemediationRecord,
    default_policy,
    shard_granular_policy,
)
from repro.errors import ReproError
from repro.live import LiveCell, LiveReport, LoadDriver, build_live_cell

__version__ = "1.0.0"

__all__ = [
    "SR3",
    "SelectionResult",
    "SplitResult",
    "ReproError",
    "ControlConfig",
    "ControlPlane",
    "Controller",
    "Diagnosis",
    "PolicyRule",
    "PolicyTable",
    "RemediationRecord",
    "default_policy",
    "shard_granular_policy",
    "LiveCell",
    "LiveReport",
    "LoadDriver",
    "build_live_cell",
    "__version__",
]
