"""The SR3 state-save pipeline.

Periodically each node's state is divided into ``m`` shards, each shard is
replicated ``n`` times, and the replicas are written to peer nodes chosen
by the placement strategy (Sec. 3.3 Layer 2). The paper's Fig. 8c writes
replicas to the leaf set *serially* "to enable a fair comparison with the
checkpointing recovery"; parallel writes are also supported.

The save cost = partition CPU + (replicate + transfer + per-replica write
overhead) over the network, all executed as simulation events.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from repro.dht.node import DhtNode
from repro.errors import RecoveryError, StateError
from repro.recovery.model import RecoveryContext
from repro.state.placement import PlacementPlan
from repro.state.shard import Shard, ShardReplica


@dataclass
class SaveResult:
    """Outcome of one completed save round."""

    state_name: str
    state_bytes: float
    started_at: float
    finished_at: float
    replicas_written: int
    bytes_transferred: float
    plan: PlacementPlan
    # "full" for a base rewrite, "delta" for an incremental round.
    mode: str = "full"
    # Bytes shipped as delta payload this round (0 for full saves).
    delta_bytes: float = 0.0
    # Chain length after this round landed (1 for a fresh base).
    chain_len: int = 1

    @property
    def duration(self) -> float:
        return self.finished_at - self.started_at


class SaveHandle:
    """A save round in flight; resolves to :class:`SaveResult`.

    Mirrors :class:`~repro.recovery.model.RecoveryHandle` semantics:
    late ``on_done`` registrations fire immediately, resolving twice is an
    error, and a failed save surfaces its exception from ``result``.
    """

    def __init__(self, state_name: str) -> None:
        self.state_name = state_name
        self._result: Optional[SaveResult] = None
        self._error: Optional[Exception] = None
        self._callbacks: List[Callable[[SaveResult], None]] = []

    @property
    def done(self) -> bool:
        return self._result is not None or self._error is not None

    @property
    def result(self) -> SaveResult:
        if self._error is not None:
            raise self._error
        if self._result is None:
            raise RecoveryError(f"save of {self.state_name!r} has not finished")
        return self._result

    def on_done(self, callback: Callable[[SaveResult], None]) -> None:
        if self._result is not None:
            callback(self._result)
        else:
            self._callbacks.append(callback)

    def _resolve(self, result: SaveResult) -> None:
        if self.done:
            raise RecoveryError(f"save handle for {self.state_name!r} resolved twice")
        self._result = result
        for callback in self._callbacks:
            callback(result)

    def _fail(self, error: Exception) -> None:
        if self.done:
            raise RecoveryError(f"save handle for {self.state_name!r} resolved twice")
        self._error = error


def sr3_save(
    ctx: RecoveryContext,
    owner: DhtNode,
    shards: Sequence[Shard],
    num_replicas: int,
    placement,
    serial: bool = True,
    mode: str = "full",
    chain_len: int = 1,
) -> SaveHandle:
    """Start one save round; returns a handle resolving when all writes land.

    ``placement`` is a strategy object (``LeafSetPlacement`` or
    ``HashPlacement``). The pipeline:

    1. partition CPU on the owner (``state_bytes / partition_rate``),
    2. per replica: one network flow of the shard's bytes plus a fixed
       per-replica write overhead, serial or parallel,
    3. each arrival installs the replica into the target's shard store.

    ``mode`` is ``"full"`` for a base round or ``"delta"`` for an
    incremental round (shards are then :class:`DeltaShard` objects and
    ``state_bytes`` is only the changed-key payload); ``chain_len`` is the
    resulting chain length, carried through to the span and result so the
    profiler can attribute save amplification.
    """
    if not shards:
        raise StateError("cannot save zero shards")
    if mode not in ("full", "delta"):
        raise StateError(f"unknown save mode {mode!r}; expected 'full' or 'delta'")
    from repro.state.partitioner import replicate

    cost = ctx.cost_model
    sim = ctx.sim
    state_name = shards[0].state_name
    state_bytes = float(sum(s.size_bytes for s in shards))
    replicas = replicate(list(shards), num_replicas)
    plan = placement.place(owner, replicas, ctx.overlay)
    handle = SaveHandle(state_name)
    started_at = sim.now
    tracer = sim.tracer
    delta_bytes = state_bytes if mode == "delta" else 0.0
    root_span = tracer.start(
        "recovery/save",
        category="recovery",
        state=state_name,
        owner=owner.name,
        bytes=state_bytes,
        num_replicas=num_replicas,
        serial=serial,
        mode=mode,
        delta_bytes=delta_bytes,
        chain_len=chain_len,
    )

    partition_time = cost.partition_time(state_bytes)
    tracer.record(
        "partition",
        started_at,
        started_at + partition_time,
        category="recovery.partition",
        parent=root_span,
        bytes=state_bytes,
        node=owner.name,
    )
    ctx.charge_cpu(owner, started_at, partition_time, cost.merge_cpu_fraction)
    ctx.charge_memory(owner, started_at, partition_time, state_bytes * 0.5)

    pending = list(plan.placements)
    total = len(pending)
    progress = {"written": 0, "acked": 0, "bytes": 0.0}

    def finish() -> None:
        if handle.done:
            return
        root_span.finish(bytes=progress["bytes"], replicas=progress["written"])
        sim.metrics.counter("save.completed").add(1)
        sim.metrics.histogram("save.duration").observe(sim.now - started_at)
        handle._resolve(
            SaveResult(
                state_name=state_name,
                state_bytes=state_bytes,
                started_at=started_at,
                finished_at=sim.now,
                replicas_written=progress["written"],
                bytes_transferred=progress["bytes"],
                plan=plan,
                mode=mode,
                delta_bytes=delta_bytes,
                chain_len=chain_len,
            )
        )

    def write_one(placed, then: Optional[Callable[[], None]]) -> None:
        replica: ShardReplica = placed.replica
        target = placed.node
        write_span = root_span.child(
            f"write {replica.key} to {target.name}",
            category="recovery.write",
            bytes=float(replica.size_bytes),
            target=target.name,
        )

        def arrived(_flow) -> None:
            target.store_shard(replica.key, replica)
            progress["written"] += 1
            progress["bytes"] += replica.size_bytes
            ctx.charge_cpu(
                target, sim.now, cost.replica_write_overhead, cost.transfer_cpu_fraction
            )
            sim.schedule(cost.replica_write_overhead, ack)

        def ack() -> None:
            write_span.finish()
            progress["acked"] += 1
            if then is not None:
                then()
            elif progress["acked"] == total:
                finish()

        ctx.network.transfer(
            owner.host,
            target.host,
            replica.size_bytes,
            on_complete=arrived,
            parent_span=write_span,
        )

    def after_partition() -> None:
        if serial:
            def chain(index: int) -> None:
                if index >= total:
                    finish()
                    return
                write_one(pending[index], then=lambda: chain(index + 1))

            chain(0)
        else:
            for placed in pending:
                write_one(placed, then=None)

    sim.schedule(partition_time, after_partition)
    return handle
