"""The star-structured recovery mechanism (Sec. 3.4).

Non-overlapping providers from the failed node's leaf set upload one
replica of each shard directly to the replacing node, which merges them
into the recovered state. Fast for small state — depth is always one, so
latency only depends on state size and transmission speed (Fig. 9a) — but
for large state the replacing node does all downloading and reconstruction
work, a centralized bottleneck under constrained bandwidth (Fig. 8b).

The *star fan-out bit* ``b`` caps the number of concurrent shard uploads
at ``2**b``; additional shards queue behind the window.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.dht.node import DhtNode
from repro.errors import InsufficientShardsError
from repro.recovery.model import (
    RecoveryContext,
    RecoveryHandle,
    RecoveryResult,
    RetryPolicy,
    replacement_died,
)
from repro.state.placement import PlacedShard, PlacementPlan


class StarRecovery:
    """Leaf-set parallel fan-in recovery."""

    name = "star"

    def __init__(self, fanout_bits: int = 2, retry_policy: RetryPolicy = RetryPolicy()) -> None:
        if fanout_bits < 0:
            raise ValueError("fanout_bits must be non-negative")
        self.fanout_bits = fanout_bits
        self.retry_policy = retry_policy

    @property
    def window(self) -> int:
        return 1 << self.fanout_bits

    def start(
        self,
        ctx: RecoveryContext,
        plan: PlacementPlan,
        replacement: DhtNode,
        state_name: Optional[str] = None,
        parent_span=None,
    ) -> RecoveryHandle:
        """Begin recovering the state described by ``plan`` onto ``replacement``."""
        sim = ctx.sim
        cost = ctx.cost_model
        name = state_name or self._state_name_of(plan)
        handle = RecoveryHandle(self.name, name)
        started_at = sim.now
        tracer = sim.tracer
        root_span = tracer.start(
            "recovery/star",
            category="recovery",
            parent=parent_span,
            state=name,
            replacement=replacement.name,
            fanout_bits=self.fanout_bits,
        )

        # Pick one alive provider per shard, spreading load across distinct
        # providers; detect shards whose primary replica was lost (those pay
        # a DHT lookup to locate an alternate replica — Fig. 10).
        assignments: List[Dict] = []
        used_nodes: Set[object] = set()
        involved: Set[str] = {replacement.name}
        for index in plan.shard_indexes():
            providers = plan.providers_for(index)
            if not providers:
                root_span.finish(error="insufficient_shards", shard=index)
                handle._fail(
                    InsufficientShardsError(
                        f"{name}: no surviving replica of shard {index}"
                    )
                )
                return handle
            num_replicas = providers[0].replica.num_replicas
            fresh = [p for p in providers if p.node.node_id not in used_nodes]
            chosen: PlacedShard = (fresh or providers)[0]
            used_nodes.add(chosen.node.node_id)
            involved.add(chosen.node.name)
            assignments.append(
                {
                    "index": index,
                    "placed": chosen,
                    "penalty": cost.lookup_penalty(num_replicas, len(providers)),
                }
            )

        total_bytes = float(sum(a["placed"].replica.size_bytes for a in assignments))
        # Chain-aware plans expose how many version links the segments span
        # and how many of the fetched bytes are delta payload to replay.
        chain_len = int(getattr(plan, "chain_length", 1))
        delta_bytes = float(getattr(plan, "delta_bytes", 0.0))
        root_span.annotate(
            state_bytes=total_bytes,
            shards=len(assignments),
            window=self.window,
            chain_len=chain_len,
            delta_bytes=delta_bytes,
        )
        progress = {"next": 0, "arrived": 0, "bytes": 0.0}
        policy = self.retry_policy

        def fetch_next() -> None:
            if progress["next"] >= len(assignments):
                return
            assignment = assignments[progress["next"]]
            progress["next"] += 1
            sim.schedule(assignment["penalty"], start_fetch, assignment)

        def start_fetch(assignment: Dict) -> None:
            if handle.done:
                return
            if not replacement.alive:
                fail(replacement_died(self.name, name, replacement))
                return
            placed: PlacedShard = assignment["placed"]
            if not ctx.network.reachable(placed.node.host, replacement.host):
                # The chosen provider died (or was cut off) before this
                # fetch started — e.g. during the detection window; take
                # the retry path to find an alternate replica.
                retry(assignment)
                return
            size = placed.replica.size_bytes
            involved.add(placed.node.name)
            fetch_span = root_span.child(
                f"fetch shard {assignment['index']} from {placed.node.name}",
                category="recovery.transfer",
                bytes=float(size),
                shard=assignment["index"],
                provider=placed.node.name,
                attempt=assignment.get("retries", 0),
            )
            ctx.network.transfer(
                placed.node.host,
                replacement.host,
                size,
                on_complete=lambda flow: arrived(assignment, fetch_span),
                on_abort=lambda flow: fetch_failed(assignment, fetch_span),
                parent_span=fetch_span,
            )

        def arrived(assignment: Dict, fetch_span) -> None:
            if handle.done:
                return
            fetch_span.finish()
            progress["bytes"] += assignment["placed"].replica.size_bytes
            progress["arrived"] += 1
            if progress["arrived"] == len(assignments):
                start_merge()
            else:
                fetch_next()

        def fetch_failed(assignment: Dict, fetch_span) -> None:
            """The provider died (or a partition cut it off) mid-transfer."""
            fetch_span.finish(aborted=True)
            if handle.done:
                return
            if not replacement.alive:
                fail(replacement_died(self.name, name, replacement))
                return
            retry(assignment)

        def retry(assignment: Dict) -> None:
            index = assignment["index"]
            attempt = assignment.get("retries", 0)
            if attempt >= policy.max_retries:
                fail(
                    InsufficientShardsError(
                        f"{name}: shard {index} could not be fetched after "
                        f"{attempt} retries (providers kept dying or stayed "
                        f"unreachable)"
                    )
                )
                return
            assignment["retries"] = attempt + 1
            sim.metrics.counter("recovery.retries").add(1, label=self.name)
            tracer.instant(
                f"retry shard {index}",
                category="recovery.retry",
                shard=index,
                attempt=attempt + 1,
            )
            sim.schedule(policy.delay(attempt), reassign, assignment)

        def reassign(assignment: Dict) -> None:
            if handle.done:
                return
            index = assignment["index"]
            providers = plan.providers_for(index)
            if not providers:
                fail(
                    InsufficientShardsError(
                        f"{name}: every replica of shard {index} was lost "
                        f"during recovery"
                    )
                )
                return
            usable = [
                p
                for p in providers
                if ctx.network.reachable(p.node.host, replacement.host)
            ]
            if not usable:
                # Providers survive but sit across a partition: back off
                # again and hope the cut heals within the retry budget.
                retry(assignment)
                return
            assignment["placed"] = usable[0]
            start_fetch(assignment)

        def fail(error: Exception) -> None:
            if handle.done:
                return
            root_span.finish(error=str(error))
            sim.metrics.counter("recovery.failed").add(1, label=self.name)
            handle._fail(error)

        def start_merge() -> None:
            # The centralized reconstruction: the replacing node "needs to
            # do all the downloading and reconstructing work" (Sec. 3.5's
            # critique of star). The full hash-table rebuild runs on its
            # CPU only after the last shard lands, then the recovered
            # state is installed.
            # Per-shard merge setup applies to the base shards only: delta
            # segments are replayed, and their per-round setup is the
            # ``chain_link_setup`` term inside ``replay_time``.
            merge = cost.merge_time(total_bytes - delta_bytes) + cost.shard_setup * (
                len(assignments) // chain_len
            )
            replay = cost.replay_time(delta_bytes, chain_len - 1)
            install = cost.install_time(total_bytes - delta_bytes)
            tracer.record(
                "merge",
                sim.now,
                sim.now + merge,
                category="recovery.merge",
                parent=root_span,
                bytes=total_bytes - delta_bytes,
                node=replacement.name,
            )
            if replay > 0:
                # Base-then-deltas: replay every delta link in version
                # order on top of the merged base (upserts + tombstones).
                tracer.record(
                    "replay deltas",
                    sim.now + merge,
                    sim.now + merge + replay,
                    category="recovery.replay",
                    parent=root_span,
                    bytes=delta_bytes,
                    links=chain_len - 1,
                    node=replacement.name,
                )
            tracer.record(
                "install",
                sim.now + merge + replay,
                sim.now + merge + replay + install,
                category="recovery.install",
                parent=root_span,
                bytes=total_bytes,
                node=replacement.name,
            )
            busy = merge + replay + install
            ctx.charge_cpu(replacement, sim.now, busy, cost.merge_cpu_fraction)
            ctx.charge_memory(
                replacement,
                sim.now,
                busy,
                total_bytes * cost.buffer_memory_factor,
            )
            sim.schedule(busy, finish)

        def finish() -> None:
            if handle.done:
                return
            root_span.finish(bytes=progress["bytes"])
            sim.metrics.counter("recovery.completed").add(1, label=self.name)
            sim.metrics.histogram("recovery.duration").observe(sim.now - started_at)
            handle._resolve(
                RecoveryResult(
                    mechanism=self.name,
                    state_name=name,
                    state_bytes=total_bytes,
                    started_at=started_at,
                    finished_at=sim.now,
                    bytes_transferred=progress["bytes"],
                    nodes_involved=len(involved),
                    shards_recovered=len(assignments),
                    replacement=replacement.name,
                    detail={"fanout_bits": float(self.fanout_bits)},
                )
            )

        def launch() -> None:
            detect_span.finish()
            for _ in range(min(self.window, len(assignments))):
                fetch_next()

        detect_span = root_span.child(
            "detect", category="recovery.detect", delay=cost.detection_delay
        )
        progress["cpu_free_at"] = started_at + cost.detection_delay
        sim.schedule(cost.detection_delay, launch)
        return handle

    @staticmethod
    def _state_name_of(plan: PlacementPlan) -> str:
        if not plan.placements:
            raise InsufficientShardsError("empty placement plan")
        return plan.placements[0].replica.shard.state_name
