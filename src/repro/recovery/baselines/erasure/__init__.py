"""Reed-Solomon erasure coding over GF(2^8) for the FP4S baseline."""

from repro.recovery.baselines.erasure.gf256 import GF256
from repro.recovery.baselines.erasure.reed_solomon import (
    CodedBlock,
    ReedSolomonCode,
)

__all__ = ["GF256", "CodedBlock", "ReedSolomonCode"]
