"""Arithmetic in the Galois field GF(2^8).

The field underlying the (n, m) Reed-Solomon code FP4S uses (Sec. 2.3).
Elements are bytes; addition is XOR; multiplication uses log/antilog
tables built from the AES-standard primitive polynomial
``x^8 + x^4 + x^3 + x^2 + 1`` (0x11D).
"""

from __future__ import annotations

from typing import List

from repro.errors import ErasureCodingError

_PRIMITIVE_POLY = 0x11D
_FIELD_SIZE = 256


def _build_tables() -> tuple:
    exp = [0] * (_FIELD_SIZE * 2)
    log = [0] * _FIELD_SIZE
    value = 1
    for power in range(_FIELD_SIZE - 1):
        exp[power] = value
        log[value] = power
        value <<= 1
        if value & 0x100:
            value ^= _PRIMITIVE_POLY
    # Duplicate the exp table so products of logs never need a modulo.
    for power in range(_FIELD_SIZE - 1, _FIELD_SIZE * 2):
        exp[power] = exp[power - (_FIELD_SIZE - 1)]
    return tuple(exp), tuple(log)


_EXP, _LOG = _build_tables()


class GF256:
    """Stateless GF(2^8) arithmetic helpers."""

    ORDER = _FIELD_SIZE

    @staticmethod
    def add(a: int, b: int) -> int:
        return a ^ b

    @staticmethod
    def sub(a: int, b: int) -> int:
        # Characteristic 2: subtraction equals addition.
        return a ^ b

    @staticmethod
    def mul(a: int, b: int) -> int:
        if a == 0 or b == 0:
            return 0
        return _EXP[_LOG[a] + _LOG[b]]

    @staticmethod
    def div(a: int, b: int) -> int:
        if b == 0:
            raise ErasureCodingError("division by zero in GF(256)")
        if a == 0:
            return 0
        return _EXP[_LOG[a] - _LOG[b] + (_FIELD_SIZE - 1)]

    @staticmethod
    def pow(a: int, exponent: int) -> int:
        if exponent == 0:
            return 1
        if a == 0:
            return 0
        return _EXP[(_LOG[a] * exponent) % (_FIELD_SIZE - 1)]

    @staticmethod
    def inverse(a: int) -> int:
        if a == 0:
            raise ErasureCodingError("zero has no inverse in GF(256)")
        return _EXP[(_FIELD_SIZE - 1) - _LOG[a]]


def mat_vec_mul(matrix: List[List[int]], vector: List[int]) -> List[int]:
    """Matrix-vector product over GF(256)."""
    result = []
    for row in matrix:
        if len(row) != len(vector):
            raise ErasureCodingError("matrix/vector shape mismatch")
        acc = 0
        for coeff, value in zip(row, vector):
            acc ^= GF256.mul(coeff, value)
        result.append(acc)
    return result


def mat_mul(a: List[List[int]], b: List[List[int]]) -> List[List[int]]:
    """Matrix product over GF(256)."""
    if not a or not b or len(a[0]) != len(b):
        raise ErasureCodingError("matrix shape mismatch")
    cols = len(b[0])
    return [
        [
            _dot(row, [b[k][j] for k in range(len(b))])
            for j in range(cols)
        ]
        for row in a
    ]


def _dot(xs: List[int], ys: List[int]) -> int:
    acc = 0
    for x, y in zip(xs, ys):
        acc ^= GF256.mul(x, y)
    return acc


def mat_invert(matrix: List[List[int]]) -> List[List[int]]:
    """Invert a square matrix over GF(256) by Gauss-Jordan elimination.

    Raises :class:`ErasureCodingError` when the matrix is singular (i.e.
    the chosen blocks cannot reconstruct the data).
    """
    n = len(matrix)
    if any(len(row) != n for row in matrix):
        raise ErasureCodingError("matrix must be square")
    work = [list(row) + [1 if i == j else 0 for j in range(n)] for i, row in enumerate(matrix)]
    for col in range(n):
        pivot_row = next((r for r in range(col, n) if work[r][col] != 0), None)
        if pivot_row is None:
            raise ErasureCodingError("singular matrix: blocks are not independent")
        work[col], work[pivot_row] = work[pivot_row], work[col]
        pivot_inv = GF256.inverse(work[col][col])
        work[col] = [GF256.mul(v, pivot_inv) for v in work[col]]
        for row in range(n):
            if row != col and work[row][col] != 0:
                factor = work[row][col]
                work[row] = [
                    v ^ GF256.mul(factor, pv)
                    for v, pv in zip(work[row], work[col])
                ]
    return [row[n:] for row in work]


def vandermonde(rows: int, cols: int) -> List[List[int]]:
    """A ``rows x cols`` Vandermonde matrix over GF(256).

    Row ``i`` is ``[i+1 ** 0, (i+1) ** 1, ...]``; any ``cols`` distinct
    rows are linearly independent, the property Reed-Solomon relies on.
    """
    if rows <= 0 or cols <= 0:
        raise ErasureCodingError("matrix dimensions must be positive")
    if rows >= GF256.ORDER:
        raise ErasureCodingError("too many rows for GF(256) Vandermonde")
    return [[GF256.pow(i + 1, j) for j in range(cols)] for i in range(rows)]
