"""An (n, m) Reed-Solomon erasure code.

FP4S (Sec. 2.3) "divides a data object into m blocks and transforms these
blocks into n coded blocks, guaranteeing that any m out of the n coded
blocks are sufficient to reconstruct the original data object", tolerating
``n - m`` simultaneous losses.

This is a non-systematic Vandermonde construction: every coded block is a
GF(256) linear combination of the data blocks; decoding gathers any ``m``
blocks, inverts the corresponding sub-matrix, and re-multiplies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.errors import ErasureCodingError
from repro.recovery.baselines.erasure.gf256 import (
    GF256,
    mat_invert,
    mat_vec_mul,
    vandermonde,
)


@dataclass(frozen=True)
class CodedBlock:
    """One coded block: its row index in the code matrix plus payload."""

    index: int
    payload: bytes


class ReedSolomonCode:
    """An (n, m) maximum-distance-separable erasure code over GF(256)."""

    def __init__(self, num_data: int, num_coded: int) -> None:
        if num_data <= 0:
            raise ErasureCodingError("num_data must be positive")
        if num_coded < num_data:
            raise ErasureCodingError("num_coded must be >= num_data")
        if num_coded >= GF256.ORDER:
            raise ErasureCodingError("num_coded must be < 256 for GF(256)")
        self.num_data = num_data
        self.num_coded = num_coded
        self._matrix = vandermonde(num_coded, num_data)

    @property
    def storage_overhead(self) -> float:
        """Extra storage fraction, e.g. 0.625 for a (26, 16) code."""
        return self.num_coded / self.num_data - 1.0

    @property
    def max_losses(self) -> int:
        """Simultaneous block losses the code tolerates."""
        return self.num_coded - self.num_data

    # ------------------------------------------------------------------ split

    def split(self, data: bytes) -> List[bytes]:
        """Pad and split ``data`` into ``num_data`` equal-length blocks.

        The first 4 bytes of the padded stream record the original length
        so :meth:`join` can strip the padding.
        """
        framed = len(data).to_bytes(4, "big") + data
        block_len = -(-len(framed) // self.num_data)  # ceil division
        padded = framed.ljust(block_len * self.num_data, b"\0")
        return [
            padded[i * block_len : (i + 1) * block_len]
            for i in range(self.num_data)
        ]

    @staticmethod
    def join(blocks: Sequence[bytes]) -> bytes:
        """Inverse of :meth:`split`."""
        stream = b"".join(blocks)
        if len(stream) < 4:
            raise ErasureCodingError("joined stream too short for length frame")
        length = int.from_bytes(stream[:4], "big")
        if length > len(stream) - 4:
            raise ErasureCodingError("corrupt length frame in joined stream")
        return stream[4 : 4 + length]

    # ----------------------------------------------------------------- encode

    def encode(self, data: bytes) -> List[CodedBlock]:
        """Encode ``data`` into ``num_coded`` blocks."""
        data_blocks = self.split(data)
        block_len = len(data_blocks[0])
        coded_payloads = [bytearray(block_len) for _ in range(self.num_coded)]
        for offset in range(block_len):
            column = [block[offset] for block in data_blocks]
            for row_index, row in enumerate(self._matrix):
                acc = 0
                for coeff, value in zip(row, column):
                    acc ^= GF256.mul(coeff, value)
                coded_payloads[row_index][offset] = acc
        return [
            CodedBlock(index, bytes(payload))
            for index, payload in enumerate(coded_payloads)
        ]

    # ----------------------------------------------------------------- decode

    def decode(self, blocks: Sequence[CodedBlock]) -> bytes:
        """Reconstruct the original data from any ``num_data`` blocks."""
        unique = {b.index: b for b in blocks}
        if len(unique) < self.num_data:
            raise ErasureCodingError(
                f"need {self.num_data} distinct blocks, got {len(unique)}"
            )
        chosen = sorted(unique.values(), key=lambda b: b.index)[: self.num_data]
        lengths = {len(b.payload) for b in chosen}
        if len(lengths) != 1:
            raise ErasureCodingError("coded blocks have inconsistent lengths")
        for block in chosen:
            if not 0 <= block.index < self.num_coded:
                raise ErasureCodingError(f"block index {block.index} out of range")
        sub_matrix = [self._matrix[b.index] for b in chosen]
        inverse = mat_invert(sub_matrix)
        block_len = lengths.pop()
        data_blocks = [bytearray(block_len) for _ in range(self.num_data)]
        for offset in range(block_len):
            column = [b.payload[offset] for b in chosen]
            recovered = mat_vec_mul(inverse, column)
            for i, value in enumerate(recovered):
                data_blocks[i][offset] = value
        return self.join([bytes(b) for b in data_blocks])
