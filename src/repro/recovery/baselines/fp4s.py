"""FP4S: the authors' prior fragment-based erasure-coded recovery.

Sec. 2.3 describes FP4S and quantifies the limitations that motivated SR3:
a (26, 16)-style code stores ``n/m`` times the state (62.5% extra for
16+10), and encode/decode computation adds seconds of latency that grow
with state size (about +10 s at 128 MB). This baseline implements the full
mechanism — real Reed-Solomon coding for materialized payloads, a
calibrated cost model for synthetic sizes — so the ablation benchmarks can
reproduce both numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.dht.node import DhtNode
from repro.errors import InsufficientShardsError, RecoveryError
from repro.recovery.baselines.erasure.reed_solomon import CodedBlock, ReedSolomonCode
from repro.recovery.model import RecoveryContext, RecoveryHandle, RecoveryResult
from repro.recovery.save import SaveHandle, SaveResult
from repro.state.placement import PlacementPlan
from repro.util.sizes import MB


@dataclass(frozen=True)
class Fp4sConfig:
    """FP4S parameters: the (n, m) code plus coding throughputs."""

    num_data: int = 16  # m raw fragments
    num_coded: int = 26  # n coded fragments (62.5% storage increment)
    encode_rate: float = 25.0 * MB  # bytes/s of state encoded
    decode_rate: float = 12.8 * MB  # bytes/s of state decoded (+10 s at 128 MB)

    def __post_init__(self) -> None:
        if self.num_coded < self.num_data:
            raise ValueError("num_coded must be >= num_data")
        if self.encode_rate <= 0 or self.decode_rate <= 0:
            raise ValueError("coding rates must be positive")

    @property
    def storage_overhead(self) -> float:
        return self.num_coded / self.num_data - 1.0


class Fp4sBaseline:
    """Erasure-coded save and parallel fragment recovery."""

    name = "fp4s"

    def __init__(self, ctx: RecoveryContext, config: Fp4sConfig = Fp4sConfig()) -> None:
        self.ctx = ctx
        self.config = config
        self.code = ReedSolomonCode(config.num_data, config.num_coded)

    # -------------------------------------------------------------- real data

    def encode_payload(self, payload: bytes) -> List[CodedBlock]:
        """Erasure-code a real state payload into ``n`` fragments."""
        return self.code.encode(payload)

    def decode_payload(self, fragments: List[CodedBlock]) -> bytes:
        """Reconstruct a real payload from any ``m`` fragments."""
        return self.code.decode(fragments)

    # -------------------------------------------------------------- simulated

    def save(self, owner: DhtNode, targets: List[DhtNode], state_bytes: float) -> SaveHandle:
        """Encode and scatter ``n`` coded fragments to ``targets``.

        Total bytes written = ``state_bytes * n / m`` — the storage
        increment Sec. 2.3 criticizes.
        """
        cfg = self.config
        if len(targets) < cfg.num_coded:
            raise RecoveryError(
                f"need {cfg.num_coded} target nodes, got {len(targets)}"
            )
        sim = self.ctx.sim
        handle = SaveHandle(f"fp4s/{owner.name}")
        started_at = sim.now
        fragment_bytes = state_bytes / cfg.num_data
        encode_time = state_bytes / cfg.encode_rate
        self.ctx.charge_cpu(owner, started_at, encode_time, self.ctx.cost_model.merge_cpu_fraction)
        self.ctx.charge_memory(
            owner, started_at, encode_time, state_bytes * (1 + cfg.storage_overhead)
        )
        remaining = {"count": cfg.num_coded, "bytes": 0.0}

        def after_encode() -> None:
            for target in targets[: cfg.num_coded]:
                self.ctx.network.transfer(
                    owner.host, target.host, fragment_bytes, on_complete=one_written
                )

        def one_written(flow) -> None:
            remaining["count"] -= 1
            remaining["bytes"] += flow.size
            if remaining["count"] == 0:
                handle._resolve(
                    SaveResult(
                        state_name=handle.state_name,
                        state_bytes=state_bytes,
                        started_at=started_at,
                        finished_at=sim.now,
                        replicas_written=cfg.num_coded,
                        bytes_transferred=remaining["bytes"],
                        plan=PlacementPlan(owner=owner),
                    )
                )

        sim.schedule(encode_time, after_encode)
        return handle

    def recover(
        self,
        providers: List[DhtNode],
        replacement: DhtNode,
        state_bytes: float,
        state_name: str = "fp4s-state",
    ) -> RecoveryHandle:
        """Fetch any ``m`` fragments in parallel, then decode and install."""
        cfg = self.config
        cost = self.ctx.cost_model
        alive = [n for n in providers if n.alive]
        if len(alive) < cfg.num_data:
            raise InsufficientShardsError(
                f"only {len(alive)} fragment providers survive; need {cfg.num_data}"
            )
        sim = self.ctx.sim
        handle = RecoveryHandle(self.name, state_name)
        started_at = sim.now
        fragment_bytes = state_bytes / cfg.num_data
        remaining = {"count": cfg.num_data, "bytes": 0.0}
        tracer = sim.tracer
        root_span = tracer.start(
            "baseline/fp4s-recover",
            category="recovery",
            state=state_name,
            replacement=replacement.name,
            bytes=state_bytes,
        )

        def launch() -> None:
            for provider in alive[: cfg.num_data]:
                fetch_span = root_span.child(
                    f"fetch fragment from {provider.name}",
                    category="recovery.transfer",
                    bytes=fragment_bytes,
                    provider=provider.name,
                )
                self.ctx.network.transfer(
                    provider.host,
                    replacement.host,
                    fragment_bytes,
                    on_complete=lambda flow, s=fetch_span: one_fetched(flow, s),
                    parent_span=fetch_span,
                )

        def one_fetched(flow, fetch_span) -> None:
            fetch_span.finish()
            remaining["count"] -= 1
            remaining["bytes"] += flow.size
            if remaining["count"] == 0:
                # Reconstruction = the usual hash-table merge PLUS the
                # erasure-decode computation — the "extra overhead in the
                # erasure code computation, which takes an additional 10s
                # in recovering 128MB state" (Sec. 2.3).
                decode_time = state_bytes / cfg.decode_rate
                rebuild_time = cost.merge_time(state_bytes) + decode_time
                tracer.record(
                    "decode+merge",
                    sim.now,
                    sim.now + rebuild_time,
                    category="recovery.merge",
                    parent=root_span,
                    bytes=state_bytes,
                    node=replacement.name,
                )
                self.ctx.charge_cpu(
                    replacement, sim.now, rebuild_time, cost.merge_cpu_fraction
                )
                self.ctx.charge_memory(
                    replacement,
                    sim.now,
                    rebuild_time,
                    state_bytes * (1 + cfg.storage_overhead),
                )
                sim.schedule(rebuild_time + cost.install_time(state_bytes), finish)

        def finish() -> None:
            root_span.finish(bytes=remaining["bytes"])
            sim.metrics.counter("recovery.completed").add(1, label=self.name)
            sim.metrics.histogram("recovery.duration").observe(sim.now - started_at)
            handle._resolve(
                RecoveryResult(
                    mechanism=self.name,
                    state_name=state_name,
                    state_bytes=state_bytes,
                    started_at=started_at,
                    finished_at=sim.now,
                    bytes_transferred=remaining["bytes"],
                    nodes_involved=cfg.num_data + 1,
                    shards_recovered=cfg.num_data,
                    replacement=replacement.name,
                    detail={"storage_overhead": cfg.storage_overhead},
                )
            )

        sim.schedule(cost.detection_delay, launch)
        return handle
