"""Replication recovery (Flux, Borealis).

"The system maintains a completely separate set of hot failover nodes,
which processes the same stream in parallel with the primary set ... the
failover is fast and it can handle multiple failures. However, the
replication recovery scheme doubles the hardware requirement" (Sec. 2.2).

Recovery is a near-instant switchover; the cost shows up as hardware:
every protected operator permanently occupies a standby node, and every
input record is delivered twice (continuous network duplication).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.dht.node import DhtNode
from repro.errors import RecoveryError
from repro.recovery.model import RecoveryContext, RecoveryHandle, RecoveryResult


@dataclass(frozen=True)
class ReplicationConfig:
    """Constants of the hot-standby scheme."""

    # Heartbeat miss detection plus the switchover handshake.
    failover_delay: float = 0.8
    # Hardware multiplier relative to an unreplicated deployment.
    hardware_factor: float = 2.0


class ReplicationBaseline:
    """Hot-standby replication: fast failover, 2x hardware."""

    name = "replication"

    def __init__(self, ctx: RecoveryContext, config: ReplicationConfig = ReplicationConfig()) -> None:
        self.ctx = ctx
        self.config = config
        self._standbys: Dict[str, DhtNode] = {}
        self.duplicated_bytes = 0.0

    def protect(self, primary: DhtNode, standby: DhtNode) -> None:
        """Dedicate ``standby`` as the hot failover of ``primary``."""
        if primary.node_id == standby.node_id:
            raise RecoveryError("standby must be a distinct node")
        self._standbys[primary.name] = standby

    def standby_count(self) -> int:
        """Extra nodes permanently consumed (the 2x hardware cost)."""
        return len(self._standbys)

    def duplicate_input(self, primary: DhtNode, nbytes: float) -> None:
        """Account the second copy of every input record.

        The standby consumes the same stream; this is continuous overhead
        paid even when nothing ever fails.
        """
        standby = self._standbys.get(primary.name)
        if standby is None:
            raise RecoveryError(f"{primary.name} has no standby registered")
        self.ctx.network.send_control(primary.host, standby.host, nbytes)
        self.duplicated_bytes += nbytes

    def recover(
        self,
        primary: DhtNode,
        state_bytes: float,
        state_name: str = "replicated-state",
    ) -> RecoveryHandle:
        """Fail over to the standby: no state movement, tiny fixed delay."""
        standby = self._standbys.get(primary.name)
        if standby is None:
            raise RecoveryError(f"{primary.name} has no standby registered")
        if not standby.alive:
            raise RecoveryError(
                f"standby {standby.name} of {primary.name} has also failed"
            )
        sim = self.ctx.sim
        handle = RecoveryHandle(self.name, state_name)
        started_at = sim.now
        root_span = sim.tracer.start(
            "baseline/replication-failover",
            category="recovery",
            state=state_name,
            primary=primary.name,
            standby=standby.name,
        )

        def finish() -> None:
            root_span.finish()
            sim.metrics.counter("recovery.completed").add(1, label=self.name)
            sim.metrics.histogram("recovery.duration").observe(sim.now - started_at)
            handle._resolve(
                RecoveryResult(
                    mechanism=self.name,
                    state_name=state_name,
                    state_bytes=state_bytes,
                    started_at=started_at,
                    finished_at=sim.now,
                    bytes_transferred=0.0,
                    nodes_involved=1,
                    shards_recovered=1,
                    replacement=standby.name,
                    detail={"hardware_factor": self.config.hardware_factor},
                )
            )

        sim.schedule(self.config.failover_delay, finish)
        return handle
