"""DStream-based lineage recovery (Spark Streaming).

"When nodes fail ... DStream re-runs the lost tasks in parallel on other
reliable nodes in the cluster using the lineage graph. However, the entire
recovery processing is linear ... the lost tasks need to be executed
strictly in line with the original lineage graph. As such, it may not work
well for multiple failures" (Sec. 2.2).

Model: the lost state is the output of a lineage of ``lineage_depth``
deterministic stages. Recovery re-executes every stage in order; within a
stage, ``parallelism`` workers recompute partitions concurrently. Each
simultaneous failure invalidates additional partitions that must flow
through the same serial lineage, so recovery time grows with both lineage
depth and failure count.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dht.node import DhtNode
from repro.errors import RecoveryError
from repro.recovery.model import RecoveryContext, RecoveryHandle, RecoveryResult
from repro.util.sizes import MB


@dataclass(frozen=True)
class LineageConfig:
    """Constants of the lineage re-execution model."""

    # Stages in the lineage graph between the last checkpoint/source and
    # the lost state ("slow when the lineage graph is long").
    lineage_depth: int = 8
    # Workers recomputing partitions of one stage concurrently.
    parallelism: int = 4
    # Recompute throughput per worker (bytes of stage output per second).
    recompute_rate: float = 20.0 * MB
    # Scheduling/dispatch overhead per stage.
    stage_overhead: float = 0.25

    def __post_init__(self) -> None:
        if self.lineage_depth < 1:
            raise ValueError("lineage_depth must be at least 1")
        if self.parallelism < 1:
            raise ValueError("parallelism must be at least 1")
        if self.recompute_rate <= 0:
            raise ValueError("recompute_rate must be positive")


class LineageBaseline:
    """Serial lineage re-execution recovery."""

    name = "lineage"

    def __init__(self, ctx: RecoveryContext, config: LineageConfig = LineageConfig()) -> None:
        self.ctx = ctx
        self.config = config

    def recovery_time(self, state_bytes: float, simultaneous_failures: int = 1) -> float:
        """Closed-form recovery latency (used for validation in tests)."""
        cfg = self.config
        per_stage = state_bytes / (cfg.recompute_rate * cfg.parallelism)
        failure_scaling = max(1, simultaneous_failures)
        return (
            self.ctx.cost_model.detection_delay
            + cfg.lineage_depth * (cfg.stage_overhead + per_stage * failure_scaling)
        )

    def recover(
        self,
        workers: DhtNode,
        state_bytes: float,
        simultaneous_failures: int = 1,
        state_name: str = "lineage-state",
    ) -> RecoveryHandle:
        """Re-run the lineage for the lost state on ``workers``' cluster.

        ``simultaneous_failures`` scales the partition volume forced
        through the serial lineage (every failed node's partitions join
        the same ordered re-execution).
        """
        if state_bytes < 0:
            raise RecoveryError("state size must be non-negative")
        if simultaneous_failures < 1:
            raise RecoveryError("at least one failure must have occurred")
        sim = self.ctx.sim
        cfg = self.config
        handle = RecoveryHandle(self.name, state_name)
        started_at = sim.now
        per_stage = (
            cfg.stage_overhead
            + state_bytes * simultaneous_failures / (cfg.recompute_rate * cfg.parallelism)
        )
        tracer = sim.tracer
        root_span = tracer.start(
            "baseline/lineage-recover",
            category="recovery",
            state=state_name,
            lineage_depth=cfg.lineage_depth,
            bytes=state_bytes,
        )

        def run_stage(stage: int) -> None:
            if stage >= cfg.lineage_depth:
                root_span.finish()
                sim.metrics.counter("recovery.completed").add(1, label=self.name)
                sim.metrics.histogram("recovery.duration").observe(
                    sim.now - started_at
                )
                handle._resolve(
                    RecoveryResult(
                        mechanism=self.name,
                        state_name=state_name,
                        state_bytes=state_bytes,
                        started_at=started_at,
                        finished_at=sim.now,
                        bytes_transferred=state_bytes * cfg.lineage_depth,
                        nodes_involved=cfg.parallelism,
                        shards_recovered=simultaneous_failures,
                        replacement=workers.name,
                        detail={"lineage_depth": float(cfg.lineage_depth)},
                    )
                )
                return
            tracer.record(
                f"lineage stage {stage}",
                sim.now,
                sim.now + per_stage,
                category="recovery.replay",
                parent=root_span,
                stage=stage,
            )
            self.ctx.charge_cpu(
                workers, sim.now, per_stage, self.ctx.cost_model.merge_cpu_fraction
            )
            sim.schedule(per_stage, run_stage, stage + 1)

        sim.schedule(self.ctx.cost_model.detection_delay, run_stage, 0)
        return handle
