"""Checkpointing recovery: the paper's primary comparison baseline.

"All nodes periodically checkpoint their states to remote storage such as
HDFS or GFS ... When a primary node fails, a standby node retrieves the
latest checkpoint from the persistent storage, and its upstream node
essentially replays the backup records serially to this failover node to
recreate the lost state" (Sec. 2.2). Used by TimeStream, Storm, Trident,
Drizzle, Flink.

Costs modelled:
- save: coordination (ZooKeeper round), then the full state streamed to
  remote storage in chunks, each chunk paying the storage's per-request
  overhead (the 1-5k req/s KV-store limit of Sec. 2.1);
- recovery: failure detection, standby allocation, checkpoint fetch from
  storage, then serial replay of the buffered records (``replay_factor``
  bytes of raw records per byte of state) through the upstream node's
  uplink while the standby re-applies them.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dht.node import DhtNode
from repro.errors import RecoveryError
from repro.recovery.model import RecoveryContext, RecoveryHandle, RecoveryResult
from repro.recovery.save import SaveHandle, SaveResult
from repro.sim.network import RemoteStorage
from repro.state.placement import PlacementPlan
from repro.util.sizes import MB


@dataclass(frozen=True)
class CheckpointConfig:
    """Calibrated constants of the checkpointing baseline."""

    # Per-client streaming rate of the remote store (bytes/second).
    storage_rate: float = 6.0 * MB
    # Chunked I/O: each chunk pays the storage's request overhead.
    chunk_bytes: float = 4.0 * MB
    # Coordination with the cluster coordinator (standby allocation,
    # ZooKeeper session work) before data moves.
    save_coordination: float = 2.0
    recover_coordination: float = 5.0
    # Raw buffered records replayed per byte of reconstructed state.
    replay_factor: float = 3.0
    # CPU rate at which the standby re-applies replayed records.
    replay_rate: float = 40.0 * MB
    # Memory held by the coordinator (ZooKeeper-style) session on every
    # participating node for the whole recovery window (Fig. 12b):
    # "checkpointing recovery involves a coordination service such as
    # Zookeeper that needs to continuously maintain connections with all
    # other nodes while SR3 avoids it" (Sec. 5.4).
    coordination_memory: float = 400.0 * MB
    # Extra CPU the coordination session burns on every node (Fig. 12a).
    coordination_cpu: float = 0.12

    def __post_init__(self) -> None:
        if self.storage_rate <= 0 or self.replay_rate <= 0:
            raise ValueError("rates must be positive")
        if self.chunk_bytes <= 0:
            raise ValueError("chunk_bytes must be positive")
        if self.replay_factor < 0:
            raise ValueError("replay_factor must be non-negative")


class CheckpointingBaseline:
    """Checkpoint-to-remote-storage save and recovery."""

    name = "checkpointing"

    def __init__(self, ctx: RecoveryContext, storage: RemoteStorage, config: CheckpointConfig = CheckpointConfig()) -> None:
        self.ctx = ctx
        self.storage = storage
        self.config = config

    def _chunk_overhead(self, state_bytes: float) -> float:
        chunks = max(1, int(-(-state_bytes // self.config.chunk_bytes)))
        return sum(self.storage.charge_request() for _ in range(chunks))

    # ------------------------------------------------------------------- save

    def save(self, owner: DhtNode, state_bytes: float) -> SaveHandle:
        """Checkpoint ``state_bytes`` of state from ``owner`` to storage."""
        if state_bytes < 0:
            raise RecoveryError("state size must be non-negative")
        sim = self.ctx.sim
        cfg = self.config
        handle = SaveHandle(f"checkpoint/{owner.name}")
        started_at = sim.now
        overhead = self._chunk_overhead(state_bytes)
        stream_time = state_bytes / min(cfg.storage_rate, owner.host.up_bw)
        duration = cfg.save_coordination + overhead + stream_time
        save_span = sim.tracer.start(
            "baseline/checkpoint-save",
            category="baseline",
            owner=owner.name,
            bytes=state_bytes,
        )
        self.ctx.charge_cpu(owner, started_at, duration, self.ctx.cost_model.transfer_cpu_fraction)
        self.ctx.charge_memory(owner, started_at, duration, state_bytes)
        self.storage.bytes_received += state_bytes

        def finish() -> None:
            save_span.finish()
            handle._resolve(
                SaveResult(
                    state_name=handle.state_name,
                    state_bytes=state_bytes,
                    started_at=started_at,
                    finished_at=sim.now,
                    replicas_written=1,
                    bytes_transferred=state_bytes,
                    plan=PlacementPlan(owner=owner),
                )
            )

        sim.schedule(duration, finish)
        return handle

    # --------------------------------------------------------------- recovery

    def recover(
        self,
        upstream: DhtNode,
        replacement: DhtNode,
        state_bytes: float,
        state_name: str = "checkpointed-state",
    ) -> RecoveryHandle:
        """Recover ``state_bytes`` onto ``replacement``.

        Pipeline: detection -> standby coordination -> checkpoint fetch
        from storage (chunked flow) -> serial replay of buffered records
        from ``upstream`` racing with replay CPU on the replacement.
        """
        sim = self.ctx.sim
        cfg = self.config
        cost = self.ctx.cost_model
        handle = RecoveryHandle(self.name, state_name)
        started_at = sim.now
        progress = {"bytes": 0.0}
        tracer = sim.tracer
        root_span = tracer.start(
            "baseline/checkpoint-recover",
            category="recovery",
            state=state_name,
            replacement=replacement.name,
            bytes=state_bytes,
        )

        def start_fetch() -> None:
            overhead = self._chunk_overhead(state_bytes)
            fetch_rate = min(cfg.storage_rate, replacement.host.down_bw)
            fetch_time = overhead + state_bytes / fetch_rate
            tracer.record(
                "fetch checkpoint",
                sim.now,
                sim.now + fetch_time,
                category="recovery.transfer",
                parent=root_span,
                bytes=state_bytes,
                node=replacement.name,
            )
            self.ctx.charge_cpu(
                replacement, sim.now, fetch_time, cost.transfer_cpu_fraction
            )
            self.ctx.charge_memory(replacement, sim.now, fetch_time, state_bytes)
            progress["bytes"] += state_bytes
            sim.schedule(fetch_time, start_replay)

        def start_replay() -> None:
            replay_bytes = state_bytes * cfg.replay_factor
            if replay_bytes <= 0:
                finish()
                return
            replay_span = root_span.child(
                "replay", category="recovery.replay", bytes=replay_bytes
            )
            replay_cpu = replay_bytes / cfg.replay_rate
            self.ctx.charge_cpu(replacement, sim.now, replay_cpu, cost.merge_cpu_fraction)
            self.ctx.charge_cpu(
                upstream, sim.now, replay_cpu, cost.transfer_cpu_fraction
            )
            self.ctx.charge_memory(
                replacement,
                sim.now,
                replay_cpu,
                state_bytes * cost.buffer_memory_factor,
            )
            progress["bytes"] += replay_bytes
            done = {"flow": False, "cpu": False}

            def flow_done(_flow) -> None:
                done["flow"] = True
                if done["cpu"]:
                    replay_span.finish()
                    finish()

            def cpu_done() -> None:
                done["cpu"] = True
                if done["flow"]:
                    replay_span.finish()
                    finish()

            self.ctx.network.transfer(
                upstream.host,
                replacement.host,
                replay_bytes,
                on_complete=flow_done,
                parent_span=replay_span,
            )
            sim.schedule(replay_cpu, cpu_done)

        def finish() -> None:
            root_span.finish(bytes=progress["bytes"])
            sim.metrics.counter("recovery.completed").add(1, label=self.name)
            sim.metrics.histogram("recovery.duration").observe(sim.now - started_at)
            # Retroactively account the coordinator session held by both
            # participating nodes for the whole recovery window.
            for node in (upstream, replacement):
                self.ctx.charge_memory(
                    node, started_at, sim.now - started_at, cfg.coordination_memory
                )
                self.ctx.charge_cpu(
                    node, started_at, sim.now - started_at, cfg.coordination_cpu
                )
            handle._resolve(
                RecoveryResult(
                    mechanism=self.name,
                    state_name=state_name,
                    state_bytes=state_bytes,
                    started_at=started_at,
                    finished_at=sim.now,
                    bytes_transferred=progress["bytes"],
                    nodes_involved=3,  # storage, upstream, replacement
                    shards_recovered=1,
                    replacement=replacement.name,
                    detail={"replay_factor": cfg.replay_factor},
                )
            )

        sim.schedule(cost.detection_delay + cfg.recover_coordination, start_fetch)
        return handle
