"""Baseline recovery approaches SR3 is evaluated against (Sec. 2.2, 2.3).

- :mod:`checkpointing` — periodic checkpoints to remote storage plus
  serial upstream replay (Storm/TimeStream/Trident style); the paper's
  primary comparison baseline.
- :mod:`replication` — hot-standby replication (Flux/Borealis): instant
  failover at 2x hardware cost.
- :mod:`lineage` — DStream lineage recovery (Spark Streaming): re-run
  lost tasks along the lineage graph; slow for long lineages and poorly
  suited to simultaneous failures.
- :mod:`fp4s` — the authors' prior erasure-coded mechanism, built on a
  real Reed-Solomon code over GF(2^8) (:mod:`erasure`).
"""

from repro.recovery.baselines.checkpointing import (
    CheckpointConfig,
    CheckpointingBaseline,
)
from repro.recovery.baselines.replication import ReplicationBaseline
from repro.recovery.baselines.lineage import LineageBaseline, LineageConfig
from repro.recovery.baselines.fp4s import Fp4sBaseline, Fp4sConfig

__all__ = [
    "CheckpointConfig",
    "CheckpointingBaseline",
    "ReplicationBaseline",
    "LineageBaseline",
    "LineageConfig",
    "Fp4sBaseline",
    "Fp4sConfig",
]
