"""SR3 recovery mechanisms and the mechanism-selection heuristic.

Layer 3 of the SR3 design: three customizable recovery mechanisms —

- :class:`~repro.recovery.star.StarRecovery` (Sec. 3.4): leaf-set
  providers upload shards directly to the replacing node in parallel;
  fastest for small state, centralized bottleneck for large state.
- :class:`~repro.recovery.line.LineRecovery` (Sec. 3.5): shards are merged
  along a pipelined chain of providers, balancing download and compute
  load; latency grows with path length.
- :class:`~repro.recovery.tree.TreeRecovery` (Sec. 3.6): shards split into
  sub-shards and aggregated up Scribe-style spanning trees in parallel;
  best for very large state and many simultaneous failures.

plus the runtime heuristic of Sec. 3.7 that picks one per application.
"""

from repro.recovery.model import (
    CostModel,
    RecoveryContext,
    RecoveryHandle,
    RecoveryResult,
)
from repro.recovery.save import SaveResult, sr3_save
from repro.recovery.star import StarRecovery
from repro.recovery.line import LineRecovery
from repro.recovery.tree import TreeRecovery
from repro.recovery.standby import (
    StandbyRecovery,
    StandbySyncReport,
    standby_coverage,
    standby_node_of,
    sync_standby,
)
from repro.recovery.online import OnlineSelector, ShardDecision, ShardProfile
from repro.recovery.selection import (
    Mechanism,
    SelectionExplanation,
    SelectionInputs,
    explain_selection,
    predict_recovery_seconds,
    select_mechanism,
)
from repro.recovery.speculation import SpeculationConfig, SpeculativeStarRecovery
from repro.recovery.manager import RecoveryManager

__all__ = [
    "CostModel",
    "RecoveryContext",
    "RecoveryHandle",
    "RecoveryResult",
    "SaveResult",
    "sr3_save",
    "StarRecovery",
    "LineRecovery",
    "TreeRecovery",
    "StandbyRecovery",
    "StandbySyncReport",
    "standby_coverage",
    "standby_node_of",
    "sync_standby",
    "OnlineSelector",
    "ShardDecision",
    "ShardProfile",
    "Mechanism",
    "SelectionExplanation",
    "SelectionInputs",
    "explain_selection",
    "predict_recovery_seconds",
    "select_mechanism",
    "SpeculationConfig",
    "SpeculativeStarRecovery",
    "RecoveryManager",
]
