"""The mechanism-selection heuristic (Sec. 3.7, Fig. 7).

SR3 adapts the recovery mechanism to (1) state size, (2) application QoS
requirements, (3) network environment, and (4) computation model:

- stateless operators: no recovery needed — just restart the pipeline;
- small state: star-structured recovery in priority;
- large state, abundant bandwidth: line-structured recovery, adjusting the
  recovery path length to the state size and latency requirement;
- large state, constrained bandwidth, latency-insensitive: still line;
- large state, constrained bandwidth, latency-sensitive: tree-structured
  recovery, tuning fan-out, depth, and replicas at runtime.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Optional, Union

from repro.errors import SelectionError
from repro.recovery.line import LineRecovery
from repro.recovery.star import StarRecovery
from repro.recovery.tree import TreeRecovery
from repro.util.sizes import MB


class Mechanism(enum.Enum):
    """The recovery mechanism chosen for an application."""

    NONE = "none"  # stateless operator: resume the pipeline
    STAR = "star"
    LINE = "line"
    TREE = "tree"


class ComputationModel(enum.Enum):
    """Streaming execution models (Sec. 3.1)."""

    ASYNC_STREAM = "async_stream"  # Storm-style record-at-a-time
    MICRO_BATCH = "micro_batch"  # Spark-style synchronous mini-batches
    HYBRID = "hybrid"  # Naiad-style mixed


@dataclass(frozen=True)
class SelectionInputs:
    """Everything the heuristic looks at for one application."""

    state_bytes: float
    stateful: bool = True
    latency_sensitive: bool = True
    bandwidth_constrained: bool = False
    computation_model: ComputationModel = ComputationModel.ASYNC_STREAM
    # The size above which a state counts as "large" (the paper's examples
    # put the star/line crossover between 32 and 64 MB).
    large_state_threshold: float = 32.0 * MB

    def __post_init__(self) -> None:
        if self.state_bytes < 0:
            raise SelectionError("state size must be non-negative")
        if self.large_state_threshold <= 0:
            raise SelectionError("large_state_threshold must be positive")


def select_mechanism(inputs: SelectionInputs) -> Mechanism:
    """The decision diagram of Fig. 7, as a pure function."""
    if not inputs.stateful:
        return Mechanism.NONE
    if inputs.state_bytes <= inputs.large_state_threshold:
        return Mechanism.STAR
    if not inputs.bandwidth_constrained:
        return Mechanism.LINE
    if not inputs.latency_sensitive:
        return Mechanism.LINE
    return Mechanism.TREE


def recommended_path_length(state_bytes: float, latency_sensitive: bool = True) -> int:
    """Line path length: longer paths distribute larger states.

    "If it needs low latency, choose a short path; when the state is too
    large to be finished within one or two stages, we need a longer path"
    (Sec. 3.7 / Fig. 7).
    """
    if state_bytes < 0:
        raise SelectionError("state size must be non-negative")
    stages = max(2, int(math.ceil(state_bytes / (16.0 * MB))))
    if latency_sensitive:
        stages = min(stages, 8)
    return min(stages, 64)


def recommended_tree_fanout_bits(state_bytes: float, expected_failures: int = 1) -> int:
    """Tree fan-out bit: larger fan-outs for low latency and more failures.

    "Larger fan-out trees can tolerate more concurrent node failures or
    shard loss" and involve fewer layers (Fig. 9d).
    """
    if expected_failures < 0:
        raise SelectionError("expected_failures must be non-negative")
    bits = 1
    if state_bytes > 64 * MB:
        bits = 2
    if expected_failures > 4:
        bits += 1
    return min(bits, 4)


def build_mechanism(
    inputs: SelectionInputs,
    expected_failures: int = 1,
) -> Optional[Union[StarRecovery, LineRecovery, TreeRecovery]]:
    """Instantiate the selected mechanism with tuned runtime parameters.

    Returns None for stateless operators (nothing to recover).
    """
    choice = select_mechanism(inputs)
    if choice is Mechanism.NONE:
        return None
    if choice is Mechanism.STAR:
        return StarRecovery(fanout_bits=2)
    if choice is Mechanism.LINE:
        return LineRecovery(
            path_length=recommended_path_length(
                inputs.state_bytes, inputs.latency_sensitive
            )
        )
    return TreeRecovery(
        fanout_bits=recommended_tree_fanout_bits(inputs.state_bytes, expected_failures),
        sub_shards=8,
    )
