"""The mechanism-selection heuristic (Sec. 3.7, Fig. 7).

SR3 adapts the recovery mechanism to (1) state size, (2) application QoS
requirements, (3) network environment, and (4) computation model:

- stateless operators: no recovery needed — just restart the pipeline;
- small state: star-structured recovery in priority;
- large state, abundant bandwidth: line-structured recovery, adjusting the
  recovery path length to the state size and latency requirement;
- large state, constrained bandwidth, latency-insensitive: still line;
- large state, constrained bandwidth, latency-sensitive: tree-structured
  recovery, tuning fan-out, depth, and replicas at runtime.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Dict, Optional, Union

from repro.errors import SelectionError
from repro.recovery.line import LineRecovery
from repro.recovery.model import CostModel
from repro.recovery.standby import StandbyRecovery
from repro.recovery.star import StarRecovery
from repro.recovery.tree import TreeRecovery
from repro.util.sizes import MB


class Mechanism(enum.Enum):
    """The recovery mechanism chosen for an application."""

    NONE = "none"  # stateless operator: resume the pipeline
    STAR = "star"
    LINE = "line"
    TREE = "tree"
    STANDBY = "standby"  # hot standby: pre-moved state, flip + tail replay

    def __hash__(self) -> int:
        # Value-based, so SelectionResult (which compares equal to both a
        # member and its string value) can satisfy the equal-implies-
        # equal-hash contract against either key shape.
        return hash(self.value)


class ComputationModel(enum.Enum):
    """Streaming execution models (Sec. 3.1)."""

    ASYNC_STREAM = "async_stream"  # Storm-style record-at-a-time
    MICRO_BATCH = "micro_batch"  # Spark-style synchronous mini-batches
    HYBRID = "hybrid"  # Naiad-style mixed


@dataclass(frozen=True)
class SelectionInputs:
    """Everything the heuristic looks at for one application."""

    state_bytes: float
    stateful: bool = True
    latency_sensitive: bool = True
    bandwidth_constrained: bool = False
    computation_model: ComputationModel = ComputationModel.ASYNC_STREAM
    # The size above which a state counts as "large" (the paper's examples
    # put the star/line crossover between 32 and 64 MB).
    large_state_threshold: float = 32.0 * MB
    # Version-chain shape of the saved state: how many links the recovery
    # must fetch (1 = flat base) and how many of ``state_bytes`` are delta
    # payload to replay after the base merge. Defaults describe a chain-free
    # save, leaving every pre-chain prediction unchanged.
    chain_links: int = 1
    delta_bytes: float = 0.0
    # Fraction of link bandwidth the live workload's ingest/shuffle traffic
    # is consuming while the recovery runs, in [0, 1). The closed-form
    # predictions discount their transfer bandwidth by it: recovery flows
    # only get the fair share the application leaves behind. 0.0 (the
    # default) is the quiescent network every pre-live prediction assumed.
    background_load: float = 0.0
    # Hot-standby tier (repro.recovery.standby). ``standby_provisioned``
    # states have a warm replica already folded on a standby node, so
    # takeover is an ownership flip plus tail replay; the steady-state
    # price — sync traffic sharing links with the application, and the
    # warm image's resident footprint — is surfaced here so selection can
    # weigh it. Defaults describe the standby-free world every pre-standby
    # prediction assumed.
    standby_provisioned: bool = False
    standby_refresh_bytes_per_s: float = 0.0
    standby_memory_bytes: float = 0.0

    def __post_init__(self) -> None:
        if self.state_bytes < 0:
            raise SelectionError("state size must be non-negative")
        if self.large_state_threshold <= 0:
            raise SelectionError("large_state_threshold must be positive")
        if self.chain_links < 1:
            raise SelectionError("chain_links must be at least 1")
        if not 0 <= self.delta_bytes <= max(self.state_bytes, 0):
            raise SelectionError(
                "delta_bytes must lie between 0 and state_bytes"
            )
        if not 0.0 <= self.background_load < 1.0:
            raise SelectionError(
                "background_load must be a fraction in [0, 1); a fully "
                "saturated link leaves no bandwidth to predict with"
            )
        if self.standby_refresh_bytes_per_s < 0:
            raise SelectionError(
                "standby_refresh_bytes_per_s must be non-negative"
            )
        if self.standby_memory_bytes < 0:
            raise SelectionError("standby_memory_bytes must be non-negative")


def select_mechanism(inputs: SelectionInputs) -> Mechanism:
    """The decision diagram of Fig. 7, as a pure function.

    One extension over the paper: a state with a provisioned warm standby
    short-circuits the diagram — its steady-state cost is already sunk, so
    the flip-plus-tail-replay takeover dominates every move-after-failure
    tier. Nothing changes for the default (standby-free) inputs.
    """
    if not inputs.stateful:
        return Mechanism.NONE
    if inputs.standby_provisioned:
        return Mechanism.STANDBY
    if inputs.state_bytes <= inputs.large_state_threshold:
        return Mechanism.STAR
    if not inputs.bandwidth_constrained:
        return Mechanism.LINE
    if not inputs.latency_sensitive:
        return Mechanism.LINE
    return Mechanism.TREE


def recommended_path_length(state_bytes: float, latency_sensitive: bool = True) -> int:
    """Line path length: longer paths distribute larger states.

    "If it needs low latency, choose a short path; when the state is too
    large to be finished within one or two stages, we need a longer path"
    (Sec. 3.7 / Fig. 7).
    """
    if state_bytes < 0:
        raise SelectionError("state size must be non-negative")
    stages = max(2, int(math.ceil(state_bytes / (16.0 * MB))))
    if latency_sensitive:
        stages = min(stages, 8)
    return min(stages, 64)


def recommended_tree_fanout_bits(state_bytes: float, expected_failures: int = 1) -> int:
    """Tree fan-out bit: larger fan-outs for low latency and more failures.

    "Larger fan-out trees can tolerate more concurrent node failures or
    shard loss" and involve fewer layers (Fig. 9d).
    """
    if expected_failures < 0:
        raise SelectionError("expected_failures must be non-negative")
    bits = 1
    if state_bytes > 64 * MB:
        bits = 2
    if expected_failures > 4:
        bits += 1
    return min(bits, 4)


def build_mechanism(
    inputs: SelectionInputs,
    expected_failures: int = 1,
) -> Optional[Union[StarRecovery, LineRecovery, TreeRecovery, StandbyRecovery]]:
    """Instantiate the selected mechanism with tuned runtime parameters.

    Returns None for stateless operators (nothing to recover).
    """
    choice = select_mechanism(inputs)
    if choice is Mechanism.NONE:
        return None
    if choice is Mechanism.STANDBY:
        return StandbyRecovery()
    if choice is Mechanism.STAR:
        return StarRecovery(fanout_bits=2)
    if choice is Mechanism.LINE:
        return LineRecovery(
            path_length=recommended_path_length(
                inputs.state_bytes, inputs.latency_sensitive
            )
        )
    return TreeRecovery(
        fanout_bits=recommended_tree_fanout_bits(inputs.state_bytes, expected_failures),
        sub_shards=8,
    )


# -------------------------------------------------------- predicted vs observed
#
# The heuristic of Fig. 7 is a decision diagram, not a cost model — but its
# branches imply cost predictions, and the profiler can measure how wrong
# they are. ``explain_selection`` turns one set of inputs into closed-form
# predicted recovery times per mechanism; the profiler feeds measured
# makespans back via :meth:`SelectionExplanation.observe`, and the relative
# model error per mechanism becomes part of the profile artifact.

# Link speed assumed by predictions when no measured bandwidth is supplied:
# GbE payload rate, matching the unconstrained benchmark configuration.
DEFAULT_PREDICTION_BANDWIDTH = 125.0 * MB

# Default sub-shards per tree (mirrors TreeRecovery's default).
_TREE_SUB_SHARDS = 8


def _predicted_shards(state_bytes: float) -> int:
    """Shard count implied by the benchmark sizing: 8 MB shards, at least 4."""
    return max(4, int(state_bytes // (8.0 * MB)))


def predict_recovery_seconds(
    mechanism: Union[Mechanism, str],
    inputs: SelectionInputs,
    cost_model: Optional[CostModel] = None,
    bandwidth: Optional[float] = None,
) -> float:
    """Closed-form predicted recovery time for one mechanism.

    Deliberately simple — serial transfer at ``bandwidth`` plus the
    CostModel's CPU terms — so the *gap* between prediction and measurement
    is meaningful: it is exactly the queueing/contention behaviour the
    closed forms ignore and the simulation captures.
    """
    cost = cost_model if cost_model is not None else CostModel()
    bw = bandwidth if bandwidth is not None else DEFAULT_PREDICTION_BANDWIDTH
    if inputs.background_load > 0.0:
        # Sustained ingest/shuffle traffic holds its share of every link;
        # recovery transfers run on what the application leaves behind.
        bw *= 1.0 - inputs.background_load
    mech = mechanism if isinstance(mechanism, Mechanism) else Mechanism(mechanism)
    size = inputs.state_bytes
    if mech is Mechanism.NONE or size <= 0:
        return 0.0
    if mech is Mechanism.STANDBY:
        # The state was moved before the failure: a dedicated heartbeat
        # detects in a fraction of the DHT-wide delay, then the takeover
        # is an ownership flip plus replay of the unfolded delta tail.
        # Bandwidth never appears — that is the whole point of the tier.
        return cost.detection_delay * cost.standby_detection_factor + (
            cost.standby_takeover_time(
                min(inputs.delta_bytes, size), max(1, inputs.chain_links)
            )
        )
    # Chain-fetch + replay terms: ``size`` covers every fetched segment
    # (base + deltas); the base alone is hash-merged and installed, the
    # delta payload replays on top, and per-segment setup multiplies by
    # the number of links. All terms collapse to the flat-plan forms when
    # chain_links == 1 and delta_bytes == 0.
    delta = min(inputs.delta_bytes, size)
    links = max(1, inputs.chain_links)
    base = size - delta
    replay = cost.replay_time(delta, links - 1)
    transfer = size / bw
    install = cost.install_time(base)
    if mech is Mechanism.STAR:
        # Merge setup covers base shards only; per-link setup for the
        # delta rounds lives inside ``replay``.
        shards = _predicted_shards(base)
        return (
            cost.detection_delay
            + transfer
            + cost.merge_time(base)
            + cost.shard_setup * shards
            + replay
            + install
        )
    if mech is Mechanism.LINE:
        length = recommended_path_length(size, inputs.latency_sensitive)
        # The pipelined chain races the stream into the replacement against
        # the sequential per-stage CPU work (merge of each stage's portion
        # plus the redundant prefix recomputation of Sec. 5.2).
        cpu = (
            length * cost.stage_setup
            + cost.merge_time(size)
            + cost.line_redundant_factor * cost.merge_time(size * (length + 1) / 2.0)
        )
        return cost.detection_delay + max(transfer, cpu) + replay + install
    # TREE: build the per-shard aggregation trees, pay one handoff per
    # level, aggregate (range concatenation at the install rate), deliver.
    bits = recommended_tree_fanout_bits(size)
    height = max(1, int(math.ceil(math.log(_TREE_SUB_SHARDS, 1 << max(1, bits)))))
    build = cost.tree_build_base + cost.tree_build_per_member * _TREE_SUB_SHARDS
    return (
        cost.detection_delay
        + build
        + height * cost.level_setup
        + transfer
        + cost.install_time(size)  # interior range-concat merges
        + cost.install_time(size)  # per-segment installs on the replacement
        + replay
    )


@dataclass
class SelectionExplanation:
    """The heuristic's choice plus predicted vs observed cost per mechanism.

    ``predicted_seconds`` always carries star/line/tree (plus standby when
    the inputs say one is provisioned); ``observed_seconds``
    fills in as the profiler measures actual recoveries. ``model_error`` is
    the signed relative error — positive means the mechanism ran slower
    than the closed form predicted.
    """

    inputs: SelectionInputs
    chosen: Mechanism
    predicted_seconds: Dict[str, float]
    observed_seconds: Dict[str, float] = field(default_factory=dict)

    @staticmethod
    def _key(mechanism: Union[Mechanism, str]) -> str:
        return mechanism.value if isinstance(mechanism, Mechanism) else str(mechanism)

    def observe(self, mechanism: Union[Mechanism, str], seconds: float) -> None:
        """Record a measured recovery makespan for one mechanism."""
        self.observed_seconds[self._key(mechanism)] = float(seconds)

    def model_error(self, mechanism: Union[Mechanism, str]) -> Optional[float]:
        """(observed - predicted) / predicted, or None if either is missing."""
        key = self._key(mechanism)
        predicted = self.predicted_seconds.get(key)
        observed = self.observed_seconds.get(key)
        if predicted is None or observed is None or predicted <= 0:
            return None
        return (observed - predicted) / predicted

    def to_dict(self) -> Dict[str, object]:
        errors = {}
        for key in sorted(self.observed_seconds):
            error = self.model_error(key)
            if error is not None:
                errors[key] = error
        return {
            "chosen": self.chosen.value,
            "state_bytes": self.inputs.state_bytes,
            "inputs": {
                "state_bytes": self.inputs.state_bytes,
                "stateful": self.inputs.stateful,
                "latency_sensitive": self.inputs.latency_sensitive,
                "bandwidth_constrained": self.inputs.bandwidth_constrained,
                "computation_model": self.inputs.computation_model.value,
                "large_state_threshold": self.inputs.large_state_threshold,
                "chain_links": self.inputs.chain_links,
                "delta_bytes": self.inputs.delta_bytes,
                "background_load": self.inputs.background_load,
                "standby_provisioned": self.inputs.standby_provisioned,
                "standby_refresh_bytes_per_s": self.inputs.standby_refresh_bytes_per_s,
                "standby_memory_bytes": self.inputs.standby_memory_bytes,
            },
            "predicted_seconds": dict(sorted(self.predicted_seconds.items())),
            "observed_seconds": dict(sorted(self.observed_seconds.items())),
            "model_error": errors,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "SelectionExplanation":
        """Rebuild an explanation from :meth:`to_dict` output.

        Round-trips exactly (``from_dict(e.to_dict()) == e``), so
        calibration state survives bench ``--metrics-out`` serialization.
        Payloads from before the ``inputs`` sub-dict existed (which only
        carried ``state_bytes``) still load, with defaults elsewhere.
        """
        raw = dict(payload.get("inputs") or {})
        raw.setdefault("state_bytes", payload.get("state_bytes", 0.0))
        if "computation_model" in raw:
            raw["computation_model"] = ComputationModel(raw["computation_model"])
        inputs = SelectionInputs(**raw)
        return cls(
            inputs=inputs,
            chosen=Mechanism(payload["chosen"]),
            predicted_seconds={
                str(k): float(v)
                for k, v in dict(payload.get("predicted_seconds") or {}).items()
            },
            observed_seconds={
                str(k): float(v)
                for k, v in dict(payload.get("observed_seconds") or {}).items()
            },
        )


def explain_selection(
    inputs: SelectionInputs,
    cost_model: Optional[CostModel] = None,
    bandwidth: Optional[float] = None,
) -> SelectionExplanation:
    """Run the heuristic and predict every mechanism's cost for comparison.

    The standby tier only appears among the predictions when the inputs
    say a standby is provisioned — predicting a flip-takeover that has no
    warm image to flip to would just be noise.
    """
    tiers = [Mechanism.STAR, Mechanism.LINE, Mechanism.TREE]
    if inputs.standby_provisioned:
        tiers.append(Mechanism.STANDBY)
    return SelectionExplanation(
        inputs=inputs,
        chosen=select_mechanism(inputs),
        predicted_seconds={
            mech.value: predict_recovery_seconds(mech, inputs, cost_model, bandwidth)
            for mech in tiers
        },
    )
