"""The tree-structured recovery mechanism (Sec. 3.6).

Each shard is divided into sub-shards; the sub-shards of every shard are
aggregated up a Scribe-style spanning tree covering the providing nodes,
and the reconstructed shards converge on the replacing node (Figs. 5, 6).
All shard trees run in parallel, every providing node uploads only the
sub-shards it holds, and merge work is spread across the interior of each
tree — no centralized bottleneck, and the per-provider upload volume
respects bandwidth asymmetry.

Tunables mirror the paper's knobs: ``fanout_bits`` sets the per-node
fan-out to ``2**bits`` (Fig. 9d — larger fan-out, shallower tree, lower
latency); ``branch_depth`` forces deeper, narrower trees (Fig. 9c — deeper
means more sequential stages and higher latency).

Because sub-shards are disjoint key ranges, interior merges are range
concatenations and run at the (fast) install rate; the mechanism's costs
are dominated by tree construction, per-level handoffs, and the network.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.dht.node import DhtNode
from repro.errors import InsufficientShardsError
from repro.multicast.tree import build_tree, build_tree_with_depth
from repro.recovery.model import (
    RecoveryContext,
    RecoveryHandle,
    RecoveryResult,
    RetryPolicy,
    replacement_died,
)
from repro.state.placement import PlacedShard, PlacementPlan


class TreeRecovery:
    """Scribe-tree parallel aggregation recovery."""

    name = "tree"

    def __init__(
        self,
        fanout_bits: int = 1,
        branch_depth: Optional[int] = None,
        sub_shards: int = 8,
        scribe=None,
        retry_policy: RetryPolicy = RetryPolicy(),
    ) -> None:
        """``scribe`` optionally supplies a
        :class:`~repro.multicast.scribe.ScribeSystem`: each shard then
        aggregates over a real Scribe topic tree (the route-union tree of
        its providers), matching the prototype's implementation "on top of
        Scribe's topic-based publish/subscribe trees" (Sec. 4). Without
        it, a balanced tree with the configured fan-out/depth is built
        directly — same asymptotics, full control over the knobs.
        """
        if fanout_bits < 0:
            raise ValueError("fanout_bits must be non-negative")
        if branch_depth is not None and branch_depth < 1:
            raise ValueError("branch_depth must be at least 1")
        if sub_shards < 1:
            raise ValueError("sub_shards must be at least 1")
        self.fanout_bits = fanout_bits
        self.branch_depth = branch_depth
        self.sub_shards = sub_shards
        self.scribe = scribe
        self.retry_policy = retry_policy

    def start(
        self,
        ctx: RecoveryContext,
        plan: PlacementPlan,
        replacement: DhtNode,
        state_name: Optional[str] = None,
        parent_span=None,
    ) -> RecoveryHandle:
        sim = ctx.sim
        cost = ctx.cost_model
        name = state_name or plan.placements[0].replica.shard.state_name
        handle = RecoveryHandle(self.name, name)
        started_at = sim.now
        tracer = sim.tracer
        root_span = tracer.start(
            "recovery/tree",
            category="recovery",
            parent=parent_span,
            state=name,
            replacement=replacement.name,
            fanout_bits=self.fanout_bits,
            sub_shards=self.sub_shards,
        )

        shard_indexes = plan.shard_indexes()
        trees: List[Dict] = []
        total_bytes = 0.0
        involved = {replacement.name}
        for index in shard_indexes:
            providers = plan.providers_for(index)
            if not providers:
                root_span.finish(error="insufficient_shards", shard=index)
                handle._fail(
                    InsufficientShardsError(
                        f"{name}: no surviving replica of shard {index}"
                    )
                )
                return handle
            shard_bytes = providers[0].replica.size_bytes
            total_bytes += shard_bytes
            members = self._tree_members(ctx, providers, replacement)
            involved.update(node.name for node in members)
            # Members that are not replica holders fetch their sub-shard
            # from the surviving providers first; each provider serves its
            # share of those requests serially, so losing replicas
            # concentrates the request load (the slight growth of Fig. 10).
            provider_ids = {p.node.node_id for p in providers}
            holders = sum(1 for m in members if m.node_id in provider_ids)
            fetchers = len(members) - holders
            fetch_overhead = cost.shard_setup * -(-fetchers // max(1, holders))
            trees.append(
                {
                    "index": index,
                    "bytes": float(shard_bytes),
                    "members": members,
                    "penalty": cost.lookup_penalty(
                        providers[0].replica.num_replicas, len(providers)
                    )
                    + fetch_overhead,
                    "epoch": 0,
                    "retries": 0,
                }
            )

        # Version-chain shape of the plan (1 link / 0 bytes for flat plans).
        chain_len = int(getattr(plan, "chain_length", 1))
        delta_bytes = float(getattr(plan, "delta_bytes", 0.0))
        root_span.annotate(
            state_bytes=float(total_bytes),
            shards=len(trees),
            chain_len=chain_len,
            delta_bytes=delta_bytes,
        )
        progress = {
            "bytes": 0.0,
            "delivered": 0,
            "cpu_free_at": started_at + cost.detection_delay,
        }
        policy = self.retry_policy

        def fail(error: Exception) -> None:
            if handle.done:
                return
            root_span.finish(error=str(error))
            sim.metrics.counter("recovery.failed").add(1, label=self.name)
            handle._fail(error)

        def restart_shard(tree_info: Dict) -> None:
            """A tree member died (or was cut off) mid-aggregation.

            One node death aborts every flow touching it, so several abort
            callbacks may fire for the same tree; bumping the epoch here
            invalidates the stale ones (they check the epoch they captured
            and no-op). The shard tree is then rebuilt from the surviving
            replica holders after a backoff.
            """
            if handle.done:
                return
            if not replacement.alive:
                fail(replacement_died(self.name, name, replacement))
                return
            tree_info["epoch"] += 1
            tree_info["retries"] += 1
            attempt = tree_info["retries"]
            if attempt > policy.max_retries:
                fail(
                    InsufficientShardsError(
                        f"{name}: shard {tree_info['index']} aggregation "
                        f"kept failing after {policy.max_retries} retries "
                        f"(tree members kept dying or stayed unreachable)"
                    )
                )
                return
            sim.metrics.counter("recovery.retries").add(1, label=self.name)
            tracer.instant(
                f"retry shard {tree_info['index']}",
                category="recovery.retry",
                shard=tree_info["index"],
                attempt=attempt,
            )
            sim.schedule(policy.delay(attempt - 1), rebuild, tree_info)

        def rebuild(tree_info: Dict) -> None:
            if handle.done:
                return
            index = tree_info["index"]
            providers = plan.providers_for(index)
            if not providers:
                fail(
                    InsufficientShardsError(
                        f"{name}: every replica of shard {index} was lost "
                        f"during recovery"
                    )
                )
                return
            try:
                members = self._tree_members(ctx, providers, replacement)
            except InsufficientShardsError as exc:
                fail(exc)
                return
            involved.update(node.name for node in members)
            tree_info["members"] = members
            build_time = (
                cost.tree_build_base + cost.tree_build_per_member * len(members)
            )
            tracer.record(
                f"rebuild tree {index}",
                sim.now,
                sim.now + build_time,
                category="recovery.tree_build",
                parent=root_span,
                members=len(members),
            )
            sim.schedule(build_time, run_tree, tree_info)

        def finish() -> None:
            if handle.done:
                return
            tree_height = max(t["tree"].height() for t in trees) if trees else 0
            root_span.finish(bytes=progress["bytes"], tree_height=tree_height)
            sim.metrics.counter("recovery.completed").add(1, label=self.name)
            sim.metrics.histogram("recovery.duration").observe(sim.now - started_at)
            handle._resolve(
                RecoveryResult(
                    mechanism=self.name,
                    state_name=name,
                    state_bytes=total_bytes,
                    started_at=started_at,
                    finished_at=sim.now,
                    bytes_transferred=progress["bytes"],
                    nodes_involved=len(involved),
                    shards_recovered=len(trees),
                    replacement=replacement.name,
                    detail={
                        "fanout_bits": float(self.fanout_bits),
                        "tree_height": float(tree_height),
                    },
                )
            )

        def deliver_shard(tree_info: Dict) -> None:
            """Root finished aggregating: ship the shard to the replacement."""
            tree_info["span"].finish()
            epoch = tree_info["epoch"]
            root: DhtNode = tree_info["tree"].root
            if not ctx.network.reachable(root.host, replacement.host):
                # The root (or the replacement) died while the last merge
                # was still in flight; rebuild from surviving providers.
                restart_shard(tree_info)
                return
            deliver_span = root_span.child(
                f"deliver shard {tree_info['index']} from {root.name}",
                category="recovery.transfer",
                bytes=tree_info["bytes"],
                shard=tree_info["index"],
                provider=root.name,
            )

            def arrived(_flow) -> None:
                if handle.done or tree_info["epoch"] != epoch:
                    return
                deliver_span.finish()
                progress["bytes"] += tree_info["bytes"]
                install_start = max(sim.now, progress["cpu_free_at"])
                duration = cost.install_time(tree_info["bytes"])
                progress["cpu_free_at"] = install_start + duration
                tracer.record(
                    f"install shard {tree_info['index']}",
                    install_start,
                    install_start + duration,
                    category="recovery.install",
                    parent=root_span,
                    bytes=tree_info["bytes"],
                    node=replacement.name,
                )
                ctx.charge_cpu(
                    replacement, install_start, duration, cost.merge_cpu_fraction
                )
                sim.schedule_at(progress["cpu_free_at"], installed)

            def installed() -> None:
                if handle.done:
                    return
                progress["delivered"] += 1
                if progress["delivered"] == len(trees):
                    replay = cost.replay_time(delta_bytes, chain_len - 1)
                    if replay > 0:
                        # All segments landed: replay delta links in
                        # version order before declaring the state live.
                        tracer.record(
                            "replay deltas",
                            sim.now,
                            sim.now + replay,
                            category="recovery.replay",
                            parent=root_span,
                            bytes=delta_bytes,
                            links=chain_len - 1,
                            node=replacement.name,
                        )
                        ctx.charge_cpu(
                            replacement, sim.now, replay, cost.merge_cpu_fraction
                        )
                        sim.schedule(replay, finish)
                    else:
                        finish()

            def aborted(_flow) -> None:
                deliver_span.finish(aborted=True)
                if handle.done or tree_info["epoch"] != epoch:
                    return
                restart_shard(tree_info)

            ctx.network.transfer(
                root.host,
                replacement.host,
                tree_info["bytes"],
                on_complete=arrived,
                on_abort=aborted,
                parent_span=deliver_span,
            )

        def run_tree(tree_info: Dict) -> None:
            if handle.done:
                return
            epoch = tree_info["epoch"]
            members: List[DhtNode] = tree_info["members"]
            root = members[0]
            tree_info["span"] = root_span.child(
                f"aggregate shard {tree_info['index']}",
                category="recovery.aggregate",
                bytes=tree_info["bytes"],
                shard=tree_info["index"],
                members=len(members),
                attempt=tree_info["retries"],
            )
            if self.scribe is not None:
                # The prototype's path: one Scribe topic per shard; the
                # aggregation tree is the route-union tree of the members.
                # Restarted aggregations get a fresh topic per epoch.
                topic_name = f"sr3/{name}/shard-{tree_info['index']}"
                if epoch:
                    topic_name += f"/retry-{epoch}"
                self.scribe.create_topic(topic_name)
                self.scribe.subscribe_many(topic_name, members)
                tree = self.scribe.topics[topic_name].tree
            elif self.branch_depth is not None:
                tree = build_tree_with_depth(root, members[1:], self.branch_depth)
            else:
                tree = build_tree(root, members[1:], 1 << self.fanout_bits)
            tree_info["tree"] = tree
            sub_bytes = tree_info["bytes"] / len(members)
            contributors = {node.node_id for node in members}
            # Aggregate bottom-up: a node sends its accumulated range to its
            # parent once all of its children have delivered. Scribe trees
            # may contain pure forwarders, which contribute no sub-shard.
            waiting = {node: tree.child_count(node) for node in tree.members()}
            aggregate = {
                node: (sub_bytes if node.node_id in contributors else 0.0)
                for node in tree.members()
            }

            def node_ready(node: DhtNode) -> None:
                if handle.done or tree_info["epoch"] != epoch:
                    return
                if node is tree.root:
                    deliver_shard(tree_info)
                    return
                parent = tree.parent(node)
                payload = aggregate[node]
                if not ctx.network.reachable(node.host, parent.host):
                    # A member died (or was cut off) between tree build and
                    # this hop starting; no flow exists to abort, so take
                    # the restart path directly.
                    tree_info["span"].finish(aborted=True)
                    restart_shard(tree_info)
                    return
                hop_span = tree_info["span"].child(
                    f"sub-shard {node.name}->{parent.name}",
                    category="recovery.transfer",
                    bytes=payload,
                    shard=tree_info["index"],
                    level=tree.depth_of(node),
                    provider=node.name,
                )

                def hop_aborted(_flow, span=hop_span) -> None:
                    span.finish(aborted=True)
                    if handle.done or tree_info["epoch"] != epoch:
                        return
                    tree_info["span"].finish(aborted=True)
                    restart_shard(tree_info)

                def arrived(_flow, n=node, p=parent, size=payload, span=hop_span) -> None:
                    if handle.done or tree_info["epoch"] != epoch:
                        return
                    span.finish()
                    progress["bytes"] += size
                    # Range concatenation at the parent + level handoff.
                    duration = cost.level_setup + size / cost.install_rate
                    tracer.record(
                        f"merge at {p.name}",
                        sim.now,
                        sim.now + duration,
                        category="recovery.merge",
                        parent=tree_info["span"],
                        bytes=size,
                        node=p.name,
                    )
                    ctx.charge_cpu(p, sim.now, duration, cost.merge_cpu_fraction)
                    ctx.charge_memory(
                        p, sim.now, duration, size * cost.buffer_memory_factor
                    )

                    def merged() -> None:
                        if handle.done or tree_info["epoch"] != epoch:
                            return
                        aggregate[p] += size
                        waiting[p] -= 1
                        if waiting[p] == 0:
                            node_ready(p)

                    sim.schedule(duration, merged)

                ctx.network.transfer(
                    node.host,
                    parent.host,
                    payload,
                    on_complete=arrived,
                    on_abort=hop_aborted,
                    parent_span=hop_span,
                )

            for leaf in tree.leaves():
                if leaf is tree.root:
                    deliver_shard(tree_info)
                else:
                    node_ready(leaf)

        def launch() -> None:
            detect_span.finish()
            for tree_info in trees:
                build_time = (
                    cost.tree_build_base
                    + cost.tree_build_per_member * len(tree_info["members"])
                    + tree_info["penalty"]
                )
                tracer.record(
                    f"build tree {tree_info['index']}",
                    sim.now,
                    sim.now + build_time,
                    category="recovery.tree_build",
                    parent=root_span,
                    members=len(tree_info["members"]),
                )
                sim.schedule(build_time, run_tree, tree_info)

        detect_span = root_span.child(
            "detect", category="recovery.detect", delay=cost.detection_delay
        )
        sim.schedule(cost.detection_delay, launch)
        return handle

    def _tree_members(
        self,
        ctx: RecoveryContext,
        providers: List[PlacedShard],
        replacement: DhtNode,
    ) -> List[DhtNode]:
        """Pick the nodes contributing one sub-shard each to a shard tree.

        Providers holding the shard come first (the root is a provider);
        if the tree needs more members than there are distinct providers,
        peer nodes from the overlay serve the remaining sub-shards (they
        fetch them from providers as part of tree construction — covered
        by the per-member build cost).
        """
        target = (
            max(self.sub_shards, self.branch_depth)
            if self.branch_depth is not None
            else self.sub_shards
        )
        members: List[DhtNode] = []
        seen = set()
        for placed in providers:
            if placed.node.node_id not in seen and placed.node.alive:
                members.append(placed.node)
                seen.add(placed.node.node_id)
            if len(members) == target:
                return members
        extra_needed = target - len(members)
        if extra_needed > 0:
            exclude = members + [replacement]
            pool_size = ctx.overlay.alive_count() - len(exclude)
            extra = ctx.overlay.sample_nodes(min(extra_needed, max(0, pool_size)), exclude)
            members.extend(extra)
        if not members:
            raise InsufficientShardsError("no tree members available")
        return members
