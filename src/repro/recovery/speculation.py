"""Speculative straggler mitigation (the paper's future work, Sec. 6).

"Stragglers are slow nodes ... We plan to explore speculation approach to
address this challenge, in which speculative backup copies of slow tasks
could be run in DHT's leaf set nodes."

:class:`SpeculativeStarRecovery` extends star-structured recovery with
per-shard watchdogs: when a provider has not delivered its shard within
``straggler_factor`` times the expected transfer time, a backup fetch of
the same shard starts from an alternate replica holder. Whichever copy
arrives first wins; the loser's flow is aborted. A straggling provider
therefore delays recovery by at most the watchdog margin instead of its
full (possibly unbounded) slowdown.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.dht.node import DhtNode
from repro.errors import InsufficientShardsError
from repro.recovery.model import (
    RecoveryContext,
    RecoveryHandle,
    RecoveryResult,
    replacement_died,
)
from repro.state.placement import PlacedShard, PlacementPlan


@dataclass(frozen=True)
class SpeculationConfig:
    """Watchdog parameters.

    ``straggler_factor`` scales the expected shard transfer time into the
    watchdog deadline; ``min_wait`` bounds it from below so tiny shards do
    not speculate on scheduling noise; ``reference_bandwidth`` is the
    healthy-provider throughput used to compute the expectation.
    """

    straggler_factor: float = 2.5
    min_wait: float = 0.5
    reference_bandwidth: float = 12.5e6

    def __post_init__(self) -> None:
        if self.straggler_factor <= 1.0:
            raise ValueError("straggler_factor must exceed 1.0")
        if self.min_wait < 0:
            raise ValueError("min_wait must be non-negative")
        if self.reference_bandwidth <= 0:
            raise ValueError("reference_bandwidth must be positive")

    def deadline(self, shard_bytes: float) -> float:
        expected = shard_bytes / self.reference_bandwidth
        return max(self.min_wait, expected * self.straggler_factor)


class SpeculativeStarRecovery:
    """Star recovery with speculative backup fetches for slow providers."""

    name = "star+speculation"

    def __init__(
        self,
        fanout_bits: int = 2,
        config: SpeculationConfig = SpeculationConfig(),
    ) -> None:
        if fanout_bits < 0:
            raise ValueError("fanout_bits must be non-negative")
        self.fanout_bits = fanout_bits
        self.config = config

    def start(
        self,
        ctx: RecoveryContext,
        plan: PlacementPlan,
        replacement: DhtNode,
        state_name: Optional[str] = None,
        parent_span=None,
    ) -> RecoveryHandle:
        sim = ctx.sim
        cost = ctx.cost_model
        name = state_name or plan.placements[0].replica.shard.state_name
        handle = RecoveryHandle(self.name, name)
        started_at = sim.now
        tracer = sim.tracer
        root_span = tracer.start(
            "recovery/star+speculation",
            category="recovery",
            parent=parent_span,
            state=name,
            replacement=replacement.name,
            fanout_bits=self.fanout_bits,
        )

        shard_indexes = plan.shard_indexes()
        providers: Dict[int, List[PlacedShard]] = {}
        for index in shard_indexes:
            available = plan.providers_for(index)
            if not available:
                root_span.finish(error="insufficient_shards", shard=index)
                handle._fail(
                    InsufficientShardsError(
                        f"{name}: no surviving replica of shard {index}"
                    )
                )
                return handle
            providers[index] = available

        total_bytes = float(
            sum(providers[i][0].replica.size_bytes for i in shard_indexes)
        )
        # Version-chain shape of the plan (1 link / 0 bytes for flat plans).
        chain_len = int(getattr(plan, "chain_length", 1))
        delta_bytes = float(getattr(plan, "delta_bytes", 0.0))
        root_span.annotate(
            state_bytes=total_bytes,
            shards=len(shard_indexes),
            window=1 << self.fanout_bits,
            chain_len=chain_len,
            delta_bytes=delta_bytes,
        )
        state = {
            "arrived": set(),  # shard indices already merged
            "bytes": 0.0,
            "speculations": 0,
            "flows": {},  # index -> list of live flows
            "next_attempt": {},  # index -> next untried replica position
            "in_flight": {},  # index -> live fetch count
        }
        involved = {replacement.name}

        def fail(error: Exception) -> None:
            if handle.done:
                return
            root_span.finish(error=str(error))
            sim.metrics.counter("recovery.failed").add(1, label=self.name)
            handle._fail(error)

        def spawn_next(index: int) -> bool:
            """Start a fetch from the next untried replica, if one is left.

            The watchdog and the abort path share the ``next_attempt``
            counter so a straggler timeout racing a provider crash never
            launches two fetches against the same replica.
            """
            pool = providers[index]
            nxt = state["next_attempt"].get(index, 0)
            if nxt >= len(pool):
                return False
            fetch(index, nxt)
            return True

        def fetch(index: int, attempt: int) -> None:
            if handle.done:
                return
            if not replacement.alive:
                fail(replacement_died(self.name, name, replacement))
                return
            pool = providers[index]
            # Providers may have died since the pool was snapshot (e.g. a
            # rack failure killing the owner and replica holders together);
            # skip ahead to the first replica that can still serve.
            while attempt < len(pool) and not ctx.network.reachable(
                pool[attempt].node.host, replacement.host
            ):
                attempt += 1
            if attempt >= len(pool):
                # No replica left to try; fail unless copies are in flight.
                if (
                    index not in state["arrived"]
                    and state["in_flight"].get(index, 0) == 0
                ):
                    fail(
                        InsufficientShardsError(
                            f"{name}: every replica of shard {index} failed "
                            f"or became unreachable during recovery"
                        )
                    )
                return
            state["next_attempt"][index] = attempt + 1
            state["in_flight"][index] = state["in_flight"].get(index, 0) + 1
            placed = pool[attempt]
            involved.add(placed.node.name)
            size = placed.replica.size_bytes
            fetch_span = root_span.child(
                f"fetch shard {index} from {placed.node.name}"
                + (" (speculative)" if attempt else ""),
                category="recovery.transfer",
                bytes=float(size),
                shard=index,
                provider=placed.node.name,
                attempt=attempt,
            )

            def arrived(flow) -> None:
                state["in_flight"][index] -= 1
                if handle.done or index in state["arrived"]:
                    fetch_span.finish(lost_race=True)
                    return  # a racing copy won; ignore
                fetch_span.finish()
                state["arrived"].add(index)
                state["bytes"] += size
                for other, other_span in state["flows"].get(index, []):
                    if other is not flow and not other.done:
                        ctx.network.abort_flow(other)
                        other_span.finish(lost_race=True)
                if len(state["arrived"]) == len(shard_indexes):
                    start_merge()

            def aborted(flow) -> None:
                state["in_flight"][index] -= 1
                if handle.done or index in state["arrived"]:
                    return  # cancelled loser of a won race; nothing to do
                fetch_span.finish(aborted=True)
                if not replacement.alive:
                    fail(replacement_died(self.name, name, replacement))
                    return
                # The provider died (or a partition cut it off): treat it
                # exactly like a straggler and promote the next replica.
                if spawn_next(index):
                    return
                if state["in_flight"].get(index, 0) == 0:
                    fail(
                        InsufficientShardsError(
                            f"{name}: every replica of shard {index} failed "
                            f"or became unreachable during recovery"
                        )
                    )

            flow = ctx.network.transfer(
                placed.node.host,
                replacement.host,
                size,
                on_complete=arrived,
                on_abort=aborted,
                parent_span=fetch_span,
            )
            state["flows"].setdefault(index, []).append((flow, fetch_span))

            def watchdog() -> None:
                if handle.done or index in state["arrived"]:
                    return
                if state["next_attempt"].get(index, 0) < len(pool):
                    state["speculations"] += 1
                    tracer.instant(
                        f"speculate shard {index}",
                        category="recovery.speculation",
                        shard=index,
                        attempt=state["next_attempt"].get(index, 0),
                    )
                    sim.metrics.counter("recovery.speculations").add(1)
                    spawn_next(index)

            sim.schedule(self.config.deadline(size), watchdog)

        def start_merge() -> None:
            if handle.done:
                return
            # Merge setup is per base shard; delta rounds pay their setup
            # in ``replay_time``'s chain_link_setup term instead.
            merge = cost.merge_time(total_bytes - delta_bytes) + cost.shard_setup * (
                len(shard_indexes) // chain_len
            )
            replay = cost.replay_time(delta_bytes, chain_len - 1)
            install = cost.install_time(total_bytes - delta_bytes)
            tracer.record(
                "merge",
                sim.now,
                sim.now + merge,
                category="recovery.merge",
                parent=root_span,
                bytes=total_bytes - delta_bytes,
                node=replacement.name,
            )
            if replay > 0:
                # Base-then-deltas replay before install, as in plain star.
                tracer.record(
                    "replay deltas",
                    sim.now + merge,
                    sim.now + merge + replay,
                    category="recovery.replay",
                    parent=root_span,
                    bytes=delta_bytes,
                    links=chain_len - 1,
                    node=replacement.name,
                )
            tracer.record(
                "install",
                sim.now + merge + replay,
                sim.now + merge + replay + install,
                category="recovery.install",
                parent=root_span,
                bytes=total_bytes,
                node=replacement.name,
            )
            ctx.charge_cpu(
                replacement, sim.now, merge + replay + install, cost.merge_cpu_fraction
            )
            sim.schedule(merge + replay + install, finish)

        def finish() -> None:
            if handle.done:
                return
            root_span.finish(bytes=state["bytes"], speculations=state["speculations"])
            sim.metrics.counter("recovery.completed").add(1, label=self.name)
            sim.metrics.histogram("recovery.duration").observe(sim.now - started_at)
            handle._resolve(
                RecoveryResult(
                    mechanism=self.name,
                    state_name=name,
                    state_bytes=total_bytes,
                    started_at=started_at,
                    finished_at=sim.now,
                    bytes_transferred=state["bytes"],
                    nodes_involved=len(involved),
                    shards_recovered=len(shard_indexes),
                    replacement=replacement.name,
                    detail={"speculations": float(state["speculations"])},
                )
            )

        def launch() -> None:
            detect_span.finish()
            for index in shard_indexes:
                fetch(index, 0)

        detect_span = root_span.child(
            "detect", category="recovery.detect", delay=cost.detection_delay
        )
        sim.schedule(cost.detection_delay, launch)
        return handle
