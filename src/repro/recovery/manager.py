"""The recovery manager: tracks saved states and orchestrates recoveries.

This is the runtime face of SR3: applications register their states, the
manager runs save rounds against the overlay, watches for node failures,
selects a mechanism per application (Sec. 3.7), and drives the recovery of
every state lost in a failure — including multiple simultaneous failures,
where independent recoveries proceed in parallel on disjoint provider
sets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

from repro.dht.node import DhtNode
from repro.errors import OverlayError, RecoveryError, StateError
from repro.recovery.line import LineRecovery
from repro.recovery.model import (
    RecoveryContext,
    RecoveryHandle,
    RecoveryResult,
    run_handles,
)
from repro.recovery.save import SaveHandle, sr3_save
from repro.recovery.selection import (
    SelectionInputs,
    build_mechanism,
)
from repro.recovery.star import StarRecovery
from repro.recovery.tree import TreeRecovery
from repro.state.placement import LeafSetPlacement, PlacementPlan
from repro.state.shard import Shard

MechanismImpl = Union[StarRecovery, LineRecovery, TreeRecovery]


@dataclass
class RegisteredState:
    """One application state under SR3 protection."""

    state_name: str
    owner: DhtNode
    shards: List[Shard]
    num_replicas: int
    latency_sensitive: bool = True
    plan: Optional[PlacementPlan] = None
    last_save_duration: Optional[float] = None

    @property
    def state_bytes(self) -> float:
        return float(sum(s.size_bytes for s in self.shards))


@dataclass
class RecoveryManager:
    """Registry + orchestration for save and recovery."""

    ctx: RecoveryContext
    placement: object = field(default_factory=LeafSetPlacement)
    bandwidth_constrained: bool = False
    states: Dict[str, RegisteredState] = field(default_factory=dict)

    # ------------------------------------------------------------- register

    def register(
        self,
        owner: DhtNode,
        shards: Sequence[Shard],
        num_replicas: int = 2,
        latency_sensitive: bool = True,
    ) -> RegisteredState:
        """Put one state under SR3 protection (not yet saved)."""
        if not shards:
            raise StateError("cannot register a state with zero shards")
        name = shards[0].state_name
        if name in self.states:
            raise StateError(f"state {name!r} is already registered")
        registered = RegisteredState(
            state_name=name,
            owner=owner,
            shards=list(shards),
            num_replicas=num_replicas,
            latency_sensitive=latency_sensitive,
        )
        self.states[name] = registered
        return registered

    def refresh_shards(self, state_name: str, shards: Sequence[Shard]) -> None:
        """Replace a registered state's shards ahead of the next save round.

        Long-running operators keep mutating their state; every periodic
        save re-partitions the current snapshot and refreshes the registry
        before writing.
        """
        if not shards:
            raise StateError("cannot refresh with zero shards")
        registered = self._get(state_name)
        if shards[0].state_name != state_name:
            raise StateError(
                f"shards belong to {shards[0].state_name!r}, not {state_name!r}"
            )
        registered.shards = list(shards)

    # ----------------------------------------------------------------- save

    def save(self, state_name: str, serial: bool = True) -> SaveHandle:
        """Start a save round for one registered state."""
        registered = self._get(state_name)
        handle = sr3_save(
            self.ctx,
            registered.owner,
            registered.shards,
            registered.num_replicas,
            self.placement,
            serial=serial,
        )

        def record(result) -> None:
            registered.plan = result.plan
            registered.last_save_duration = result.duration

        handle.on_done(record)
        return handle

    def save_all(self, serial: bool = True) -> List[SaveHandle]:
        return [self.save(name, serial=serial) for name in sorted(self.states)]

    # ------------------------------------------------------------- recovery

    def mechanism_for(self, state_name: str) -> MechanismImpl:
        """Select and configure the mechanism for one state (Fig. 7)."""
        registered = self._get(state_name)
        mechanism = build_mechanism(
            SelectionInputs(
                state_bytes=registered.state_bytes,
                latency_sensitive=registered.latency_sensitive,
                bandwidth_constrained=self.bandwidth_constrained,
            )
        )
        if mechanism is None:
            raise RecoveryError(f"state {state_name!r} resolved as stateless")
        return mechanism

    def recover(
        self,
        state_name: str,
        replacement: Optional[DhtNode] = None,
        mechanism: Optional[MechanismImpl] = None,
        parent_span=None,
    ) -> RecoveryHandle:
        """Start recovering one state onto a replacement node."""
        registered = self._get(state_name)
        if registered.plan is None:
            raise RecoveryError(f"state {state_name!r} was never saved")
        if replacement is None:
            if registered.owner.alive:
                raise RecoveryError(
                    f"owner of {state_name!r} is alive; pass a replacement explicitly"
                )
            try:
                replacement = self.ctx.overlay.replacement_for(registered.owner)
            except OverlayError as exc:
                raise RecoveryError(
                    f"state {state_name!r}: owner {registered.owner.name} is dead "
                    f"and no replacement node is available (no alive nodes left "
                    f"in the overlay); add a spare node or pass a replacement "
                    f"explicitly"
                ) from exc
        chosen = mechanism or self.mechanism_for(state_name)
        self.ctx.sim.tracer.instant(
            f"recover {state_name} via {chosen.name}",
            category="recovery.request",
            state=state_name,
            mechanism=chosen.name,
            replacement=replacement.name,
        )
        self.ctx.sim.metrics.counter("recovery.started").add(1, label=chosen.name)
        return chosen.start(
            self.ctx, registered.plan, replacement, state_name, parent_span=parent_span
        )

    def on_failures(self, failed: Sequence[DhtNode]) -> List[RecoveryHandle]:
        """React to (possibly simultaneous) node failures.

        Every registered state owned by a failed node is recovered onto
        the node that takes over its key range; recoveries run in parallel
        inside the simulation.
        """
        failed_ids = {node.node_id for node in failed}
        handles: List[RecoveryHandle] = []
        for name in sorted(self.states):
            registered = self.states[name]
            if registered.owner.node_id in failed_ids:
                handles.append(self.recover(name))
        return handles

    def run(self, handles: List[RecoveryHandle]) -> List[RecoveryResult]:
        """Drive the simulation until the given recoveries complete."""
        return run_handles(self.ctx.sim, handles)

    def _get(self, state_name: str) -> RegisteredState:
        try:
            return self.states[state_name]
        except KeyError:
            raise StateError(f"unknown state {state_name!r}") from None
