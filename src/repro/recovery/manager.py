"""The recovery manager: tracks saved states and orchestrates recoveries.

This is the runtime face of SR3: applications register their states, the
manager runs save rounds against the overlay, watches for node failures,
selects a mechanism per application (Sec. 3.7), and drives the recovery of
every state lost in a failure — including multiple simultaneous failures,
where independent recoveries proceed in parallel on disjoint provider
sets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

from repro.dht.node import DhtNode
from repro.errors import OverlayError, RecoveryError, StateError
from repro.recovery.line import LineRecovery
from repro.state.chain import ChainPlan, CompactionPolicy, VersionChain, reconstruct_chain
from repro.state.partitioner import merge_shards
from repro.state.store import StateSnapshot
from repro.recovery.model import (
    RecoveryContext,
    RecoveryHandle,
    RecoveryResult,
    run_handles,
)
from repro.recovery.save import SaveHandle, sr3_save
from repro.recovery.selection import (
    SelectionInputs,
    build_mechanism,
)
from repro.recovery.standby import StandbyRecovery
from repro.recovery.star import StarRecovery
from repro.recovery.tree import TreeRecovery
from repro.state.placement import LeafSetPlacement, PlacementPlan
from repro.state.shard import Shard

MechanismImpl = Union[StarRecovery, LineRecovery, TreeRecovery, StandbyRecovery]


@dataclass
class RegisteredState:
    """One application state under SR3 protection."""

    state_name: str
    owner: DhtNode
    shards: List[Shard]
    num_replicas: int
    latency_sensitive: bool = True
    plan: Optional[PlacementPlan] = None
    last_save_duration: Optional[float] = None
    # Version chain behind the plan: set by the first full save, extended
    # by delta rounds, reset whenever a full save lands.
    chain: Optional[VersionChain] = None

    @property
    def state_bytes(self) -> float:
        return float(sum(s.size_bytes for s in self.shards))


@dataclass
class RecoveryManager:
    """Registry + orchestration for save and recovery."""

    ctx: RecoveryContext
    placement: object = field(default_factory=LeafSetPlacement)
    bandwidth_constrained: bool = False
    compaction: CompactionPolicy = field(default_factory=CompactionPolicy)
    states: Dict[str, RegisteredState] = field(default_factory=dict)
    # Last recovery handle per state; a save round must not overlap an
    # in-flight recovery of the same state (the plan it would replace is
    # the one the mechanism is reading).
    active_recoveries: Dict[str, RecoveryHandle] = field(default_factory=dict)

    # ------------------------------------------------------------- register

    def register(
        self,
        owner: DhtNode,
        shards: Sequence[Shard],
        num_replicas: int = 2,
        latency_sensitive: bool = True,
    ) -> RegisteredState:
        """Put one state under SR3 protection (not yet saved)."""
        if not shards:
            raise StateError("cannot register a state with zero shards")
        name = shards[0].state_name
        if name in self.states:
            raise StateError(f"state {name!r} is already registered")
        registered = RegisteredState(
            state_name=name,
            owner=owner,
            shards=list(shards),
            num_replicas=num_replicas,
            latency_sensitive=latency_sensitive,
        )
        self.states[name] = registered
        return registered

    def refresh_shards(self, state_name: str, shards: Sequence[Shard]) -> None:
        """Replace a registered state's shards ahead of the next save round.

        Long-running operators keep mutating their state; every periodic
        save re-partitions the current snapshot and refreshes the registry
        before writing.
        """
        if not shards:
            raise StateError("cannot refresh with zero shards")
        registered = self._get(state_name)
        if shards[0].state_name != state_name:
            raise StateError(
                f"shards belong to {shards[0].state_name!r}, not {state_name!r}"
            )
        registered.shards = list(shards)

    # ----------------------------------------------------------------- save

    def _check_no_active_recovery(self, state_name: str) -> None:
        handle = self.active_recoveries.get(state_name)
        if handle is not None and not handle.done:
            raise RecoveryError(
                f"cannot save {state_name!r}: a {handle.mechanism} recovery of "
                f"that state is still in flight"
            )

    def save(self, state_name: str, serial: bool = True) -> SaveHandle:
        """Start a full save round for one registered state.

        Resets the state's version chain to a fresh base and garbage
        collects replicas of the superseded chain that the new placement
        no longer covers.
        """
        registered = self._get(state_name)
        self._check_no_active_recovery(state_name)
        # Snapshot the superseded chain's placements now: the chain object
        # itself is reset in-place once the new base lands.
        stale = []
        if registered.chain is not None:
            stale = [
                (placed.node, placed.replica.key)
                for link in registered.chain.links
                for placed in link.plan.placements
            ]
        handle = sr3_save(
            self.ctx,
            registered.owner,
            registered.shards,
            registered.num_replicas,
            self.placement,
            serial=serial,
        )

        def record(result) -> None:
            registered.plan = result.plan
            registered.last_save_duration = result.duration
            chain = registered.chain or VersionChain(state_name)
            chain.reset(registered.shards, result.plan)
            registered.chain = chain
            self._collect_stale_replicas(stale, result.plan)

        handle.on_done(record)
        return handle

    def save_delta(
        self, state_name: str, delta_shards: Sequence[Shard], serial: bool = True
    ) -> SaveHandle:
        """Start an incremental save round, or fall back to a full one.

        Ships only ``delta_shards`` (the changed keys since the chain tip)
        when the chain can safely grow; otherwise — no chain yet, the
        compaction policy would be violated, the owner moved since the
        base was placed, or any chain replica was lost — the round is
        promoted to a full save (``registered.shards`` must already hold
        the current full partition) and the chain resets.
        """
        registered = self._get(state_name)
        self._check_no_active_recovery(state_name)
        delta_bytes = sum(s.size_bytes for s in delta_shards)
        if not self._can_extend_chain(registered, delta_bytes):
            return self.save(state_name, serial=serial)
        chain = registered.chain
        handle = sr3_save(
            self.ctx,
            registered.owner,
            delta_shards,
            registered.num_replicas,
            self.placement,
            serial=serial,
            mode="delta",
            chain_len=chain.length + 1,
        )

        def record(result) -> None:
            chain.append_delta(delta_shards, result.plan)
            registered.plan = ChainPlan(chain)
            registered.last_save_duration = result.duration

        handle.on_done(record)
        return handle

    def _can_extend_chain(self, registered: RegisteredState, delta_bytes: float) -> bool:
        chain = registered.chain
        if chain is None or not chain.links:
            return False
        if chain.needs_compaction(self.compaction, extra_delta_bytes=int(delta_bytes)):
            return False
        base_owner = chain.links[0].plan.owner
        if base_owner is None or base_owner.node_id != registered.owner.node_id:
            return False  # placement changed: the chain belongs to another owner
        # Replica loss anywhere in the chain degrades redundancy below the
        # configured factor — rewrite a full base rather than stack more
        # deltas on a weakened foundation.
        for link in chain.links:
            for index in link.plan.shard_indexes():
                if len(link.plan.providers_for(index)) < registered.num_replicas:
                    return False
        return True

    def _collect_stale_replicas(self, stale, new_plan) -> None:
        """Drop superseded-chain replicas that the new plan reuses nowhere.

        ``stale`` is a list of ``(node, key)`` pairs captured before the
        save was issued. Pairs the new placement re-wrote (same node, same
        key) are kept — ``store_shard`` already replaced their payload.
        """
        kept = {
            (placed.node.node_id, placed.replica.key)
            for placed in new_plan.placements
        }
        for node, key in stale:
            if (node.node_id, key) not in kept:
                node.drop_shard(key)

    def save_all(self, serial: bool = True) -> List[SaveHandle]:
        return [self.save(name, serial=serial) for name in sorted(self.states)]

    # ------------------------------------------------------------- recovery

    def mechanism_for(self, state_name: str) -> MechanismImpl:
        """Select and configure the mechanism for one state (Fig. 7)."""
        registered = self._get(state_name)
        mechanism = build_mechanism(
            SelectionInputs(
                state_bytes=registered.state_bytes,
                latency_sensitive=registered.latency_sensitive,
                bandwidth_constrained=self.bandwidth_constrained,
            )
        )
        if mechanism is None:
            raise RecoveryError(f"state {state_name!r} resolved as stateless")
        return mechanism

    def recover(
        self,
        state_name: str,
        replacement: Optional[DhtNode] = None,
        mechanism: Optional[MechanismImpl] = None,
        parent_span=None,
    ) -> RecoveryHandle:
        """Start recovering one state onto a replacement node."""
        registered = self._get(state_name)
        if registered.plan is None:
            raise RecoveryError(f"state {state_name!r} was never saved")
        if replacement is None:
            if registered.owner.alive:
                raise RecoveryError(
                    f"owner of {state_name!r} is alive; pass a replacement explicitly"
                )
            try:
                replacement = self.ctx.overlay.replacement_for(registered.owner)
            except OverlayError as exc:
                raise RecoveryError(
                    f"state {state_name!r}: owner {registered.owner.name} is dead "
                    f"and no replacement node is available (no alive nodes left "
                    f"in the overlay); add a spare node or pass a replacement "
                    f"explicitly"
                ) from exc
        chosen = mechanism or self.mechanism_for(state_name)
        self.ctx.sim.tracer.instant(
            f"recover {state_name} via {chosen.name}",
            category="recovery.request",
            state=state_name,
            mechanism=chosen.name,
            replacement=replacement.name,
        )
        self.ctx.sim.metrics.counter("recovery.started").add(1, label=chosen.name)
        handle = chosen.start(
            self.ctx, registered.plan, replacement, state_name, parent_span=parent_span
        )
        self.active_recoveries[state_name] = handle
        return handle

    def on_failures(self, failed: Sequence[DhtNode]) -> List[RecoveryHandle]:
        """React to (possibly simultaneous) node failures.

        Every registered state owned by a failed node is recovered onto
        the node that takes over its key range; recoveries run in parallel
        inside the simulation.
        """
        failed_ids = {node.node_id for node in failed}
        handles: List[RecoveryHandle] = []
        for name in sorted(self.states):
            registered = self.states[name]
            if registered.owner.node_id in failed_ids:
                handles.append(self.recover(name))
        return handles

    def run(self, handles: List[RecoveryHandle]) -> List[RecoveryResult]:
        """Drive the simulation until the given recoveries complete."""
        return run_handles(self.ctx.sim, handles)

    def recovered_snapshot(self, state_name: str) -> StateSnapshot:
        """Rebuild the state image from whatever replicas survive.

        Chain-aware: when the plan spans delta links, surviving segments
        are replayed base-then-deltas in version order; a flat (single
        base) plan merges exactly as before.
        """
        registered = self._get(state_name)
        if registered.plan is None:
            raise RecoveryError(f"state {state_name!r} was never saved")
        shards = registered.plan.available_shards()
        if any(s.chain_link for s in shards):
            return reconstruct_chain(shards)
        return merge_shards(shards)

    def _get(self, state_name: str) -> RegisteredState:
        try:
            return self.states[state_name]
        except KeyError:
            raise StateError(f"unknown state {state_name!r}") from None
